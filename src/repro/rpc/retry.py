"""Retry policy and client-side instrumentation for the RPC client.

The paper's RPC semantics — "the call either executes or raises" — are
only achievable over a faulty network with retransmission, and
retransmission is only *safe* with the server-side reply cache
(:class:`repro.rpc.server.ReplyCache`).  This module holds the client
half of that bargain: how many times to resend, how long to wait between
attempts (exponential backoff with full jitter, so a burst of clients
recovering from the same fault does not stampede), and an overall
deadline after which the client stops and reports what it knows.

All timing flows through an injected :class:`~repro.sim.clock.Clock` and
an injected random source, so tests sweep retry schedules in zero real
time and fully deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retransmits a call.

    ``max_attempts`` counts the first send: 1 means never retry.
    Backoff before attempt *n* (n ≥ 2) is drawn uniformly from
    ``[0, min(max_delay, base_delay · 2^(n-2))]`` — "full jitter".
    ``deadline_seconds`` bounds the whole call including backoff sleeps;
    ``None`` means attempts alone bound it.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.01
    max_delay_seconds: float = 1.0
    deadline_seconds: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts counts the first send; minimum 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline must be positive (or None)")

    def backoff_delay(self, prior_attempts: int, rng: random.Random) -> float:
        """Jittered delay before the next attempt given attempts so far."""
        ceiling = min(
            self.max_delay_seconds,
            self.base_delay_seconds * (2 ** max(0, prior_attempts - 1)),
        )
        return rng.uniform(0.0, ceiling)


#: Retransmission disabled: the seed behaviour, one send per call.
NO_RETRY = RetryPolicy(max_attempts=1, deadline_seconds=None)


@dataclass
class RpcClientStats:
    """Counters for one client, surfaced like ``DatabaseStats``.

    ``attempts`` counts every transport send including retransmissions, so
    failed sends are visible (the seed's ``calls_made`` counted only
    successes).  ``backoff_seconds`` is total time spent sleeping between
    attempts, on whatever clock the client runs.
    """

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    transport_failures: int = 0
    failures: int = 0
    maybe_executed: int = 0
    deadline_expirations: int = 0
    backoff_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_call(self) -> None:
        with self._lock:
            self.calls += 1

    def record_attempt(self) -> None:
        with self._lock:
            self.attempts += 1

    def record_transport_failure(self) -> None:
        with self._lock:
            self.transport_failures += 1

    def record_backoff(self, seconds: float) -> None:
        with self._lock:
            self.retries += 1
            self.backoff_seconds += seconds

    def record_failure(
        self, *, maybe_executed: bool = False, deadline: bool = False
    ) -> None:
        """The call as a whole failed (all attempts exhausted)."""
        with self._lock:
            self.failures += 1
            if maybe_executed:
                self.maybe_executed += 1
            if deadline:
                self.deadline_expirations += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "calls": self.calls,
                "attempts": self.attempts,
                "retries": self.retries,
                "transport_failures": self.transport_failures,
                "failures": self.failures,
                "maybe_executed": self.maybe_executed,
                "deadline_expirations": self.deadline_expirations,
                "backoff_seconds": self.backoff_seconds,
            }
