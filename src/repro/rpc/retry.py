"""Retry policy and client-side instrumentation for the RPC client.

The paper's RPC semantics — "the call either executes or raises" — are
only achievable over a faulty network with retransmission, and
retransmission is only *safe* with the server-side reply cache
(:class:`repro.rpc.server.ReplyCache`).  This module holds the client
half of that bargain: how many times to resend, how long to wait between
attempts (exponential backoff with full jitter, so a burst of clients
recovering from the same fault does not stampede), and an overall
deadline after which the client stops and reports what it knows.

All timing flows through an injected :class:`~repro.sim.clock.Clock` and
an injected random source, so tests sweep retry schedules in zero real
time and fully deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retransmits a call.

    ``max_attempts`` counts the first send: 1 means never retry.
    Backoff before attempt *n* (n ≥ 2) is drawn uniformly from
    ``[0, min(max_delay, base_delay · 2^(n-2))]`` — "full jitter".
    ``deadline_seconds`` bounds the whole call including backoff sleeps;
    ``None`` means attempts alone bound it.
    """

    max_attempts: int = 4
    base_delay_seconds: float = 0.01
    max_delay_seconds: float = 1.0
    deadline_seconds: float | None = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts counts the first send; minimum 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline must be positive (or None)")

    def backoff_delay(self, prior_attempts: int, rng: random.Random) -> float:
        """Jittered delay before the next attempt given attempts so far."""
        ceiling = min(
            self.max_delay_seconds,
            self.base_delay_seconds * (2 ** max(0, prior_attempts - 1)),
        )
        return rng.uniform(0.0, ceiling)


#: Retransmission disabled: the seed behaviour, one send per call.
NO_RETRY = RetryPolicy(max_attempts=1, deadline_seconds=None)


class RpcClientStats:
    """Counters for one client, surfaced like ``DatabaseStats``.

    ``attempts`` counts every transport send including retransmissions, so
    failed sends are visible (the seed's ``calls_made`` counted only
    successes).  ``backoff_seconds`` is total time spent sleeping between
    attempts, on whatever clock the client runs.

    Like ``DatabaseStats``, this is a view over a
    :class:`~repro.obs.metrics.MetricsRegistry` (one is created when not
    supplied): the attributes read the registry series that the
    Prometheus/JSON exporters publish, so nothing is counted twice.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        r = self.registry
        self._calls = r.counter(
            "rpc_client_calls_total", "RPC calls issued (unique seq numbers)."
        )
        self._attempts = r.counter(
            "rpc_client_attempts_total",
            "Transport sends, including retransmissions.",
        )
        self._retries = r.counter(
            "rpc_client_retries_total", "Retransmissions after a failed attempt."
        )
        self._transport_failures = r.counter(
            "rpc_client_transport_failures_total",
            "Individual attempts that died in the transport.",
        )
        self._failures = r.counter(
            "rpc_client_failures_total", "Calls that failed after all attempts."
        )
        self._maybe_executed = r.counter(
            "rpc_client_maybe_executed_total",
            "Failed calls whose execution state is unknown.",
        )
        self._deadline_expirations = r.counter(
            "rpc_client_deadline_expirations_total",
            "Calls abandoned at the retry deadline.",
        )
        self._backoff_seconds = r.counter(
            "rpc_client_backoff_seconds_total",
            "Total time spent sleeping between attempts.",
        )

    @property
    def calls(self) -> int:
        return int(self._calls.value)

    @property
    def attempts(self) -> int:
        return int(self._attempts.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def transport_failures(self) -> int:
        return int(self._transport_failures.value)

    @property
    def failures(self) -> int:
        return int(self._failures.value)

    @property
    def maybe_executed(self) -> int:
        return int(self._maybe_executed.value)

    @property
    def deadline_expirations(self) -> int:
        return int(self._deadline_expirations.value)

    @property
    def backoff_seconds(self) -> float:
        return self._backoff_seconds.value

    def record_call(self) -> None:
        self._calls.inc()

    def record_attempt(self) -> None:
        self._attempts.inc()

    def record_transport_failure(self) -> None:
        self._transport_failures.inc()

    def record_backoff(self, seconds: float) -> None:
        with self._lock:
            self._retries.inc()
            self._backoff_seconds.inc(seconds)

    def record_failure(
        self, *, maybe_executed: bool = False, deadline: bool = False
    ) -> None:
        """The call as a whole failed (all attempts exhausted)."""
        with self._lock:
            self._failures.inc()
            if maybe_executed:
                self._maybe_executed.inc()
            if deadline:
                self._deadline_expirations.inc()

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "calls": self.calls,
                "attempts": self.attempts,
                "retries": self.retries,
                "transport_failures": self.transport_failures,
                "failures": self.failures,
                "maybe_executed": self.maybe_executed,
                "deadline_expirations": self.deadline_expirations,
                "backoff_seconds": self.backoff_seconds,
            }
