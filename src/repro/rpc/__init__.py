"""RPC: remote procedure calls with generated stubs and static marshalling.

The paper's clients "interact with our name server through a general
purpose remote procedure call mechanism, well integrated into our
programming language", with automatically generated marshalling for
statically typed values.  This package reproduces that: declare an
:class:`Interface`, export an implementation through :class:`RpcServer`,
and :func:`connect` hands back a generated proxy.

The paper further leans on RPC *semantics* — the call either executes or
raises — which this package provides over a faulty network: clients
number their calls and retransmit with jittered backoff
(:class:`~repro.rpc.retry.RetryPolicy`), the server answers recognised
duplicates from a per-client :class:`~repro.rpc.server.ReplyCache`
instead of re-executing (at-most-once), and the one irreducible
ambiguity is surfaced honestly as :class:`CallMaybeExecuted`.  The
:mod:`~repro.rpc.faults` module makes every network failure mode
deterministically reachable for the sweep in :mod:`repro.sim.netsweep`.

>>> from repro.rpc import Interface, Int, RpcServer, LoopbackTransport, connect
>>> calc = Interface("Calculator")
>>> _ = calc.method("add", params=[("a", Int), ("b", Int)], returns=Int)
>>> class Impl:
...     def add(self, a, b):
...         return a + b
>>> server = RpcServer()
>>> server.export(calc, Impl())
>>> proxy = connect(calc, LoopbackTransport(server))
>>> proxy.add(2, 3)
5
"""

from repro.rpc.client import Proxy, RpcClient, connect
from repro.rpc.eventloop import EventLoopServer
from repro.rpc.errors import (
    BadRequest,
    CallMaybeExecuted,
    DeadlineExpired,
    MarshalError,
    RemoteError,
    RpcError,
    StaleCall,
    TransportClosed,
    TransportError,
    UnknownInterface,
    UnknownMethod,
)
from repro.rpc.faults import (
    FaultyTransport,
    NetworkFault,
    NetworkFaultInjector,
    NullNetworkInjector,
)
from repro.rpc.interface import CallHeader, Interface, MethodSpec
from repro.rpc.marshal import (
    Bool,
    Bytes,
    DictOf,
    Float,
    Int,
    ListOf,
    OptionalOf,
    Pickled,
    RecordOf,
    Str,
    TupleOf,
    TypeExpr,
    Void,
)
from repro.rpc.retry import NO_RETRY, RetryPolicy, RpcClientStats
from repro.rpc.server import ReplyCache, RpcServer
from repro.rpc.transport import (
    LAN_1987,
    LoopbackTransport,
    NetworkModel,
    NULL_NETWORK,
    TcpServerThread,
    TcpTransport,
    Transport,
)

__all__ = [
    "BadRequest",
    "Bool",
    "Bytes",
    "CallHeader",
    "CallMaybeExecuted",
    "DeadlineExpired",
    "DictOf",
    "EventLoopServer",
    "FaultyTransport",
    "Float",
    "Int",
    "Interface",
    "LAN_1987",
    "ListOf",
    "LoopbackTransport",
    "MarshalError",
    "MethodSpec",
    "NO_RETRY",
    "NULL_NETWORK",
    "NetworkFault",
    "NetworkFaultInjector",
    "NetworkModel",
    "NullNetworkInjector",
    "OptionalOf",
    "Pickled",
    "Proxy",
    "RecordOf",
    "RemoteError",
    "ReplyCache",
    "RetryPolicy",
    "RpcClient",
    "RpcClientStats",
    "RpcError",
    "RpcServer",
    "StaleCall",
    "Str",
    "TcpServerThread",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TupleOf",
    "TypeExpr",
    "UnknownInterface",
    "UnknownMethod",
    "Void",
    "connect",
]
