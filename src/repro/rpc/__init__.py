"""RPC: remote procedure calls with generated stubs and static marshalling.

The paper's clients "interact with our name server through a general
purpose remote procedure call mechanism, well integrated into our
programming language", with automatically generated marshalling for
statically typed values.  This package reproduces that: declare an
:class:`Interface`, export an implementation through :class:`RpcServer`,
and :func:`connect` hands back a generated proxy.

>>> from repro.rpc import Interface, Int, RpcServer, LoopbackTransport, connect
>>> calc = Interface("Calculator")
>>> _ = calc.method("add", params=[("a", Int), ("b", Int)], returns=Int)
>>> class Impl:
...     def add(self, a, b):
...         return a + b
>>> server = RpcServer()
>>> server.export(calc, Impl())
>>> proxy = connect(calc, LoopbackTransport(server))
>>> proxy.add(2, 3)
5
"""

from repro.rpc.client import Proxy, RpcClient, connect
from repro.rpc.errors import (
    BadRequest,
    MarshalError,
    RemoteError,
    RpcError,
    TransportError,
    UnknownInterface,
    UnknownMethod,
)
from repro.rpc.interface import Interface, MethodSpec
from repro.rpc.marshal import (
    Bool,
    Bytes,
    DictOf,
    Float,
    Int,
    ListOf,
    OptionalOf,
    Pickled,
    RecordOf,
    Str,
    TupleOf,
    TypeExpr,
    Void,
)
from repro.rpc.server import RpcServer
from repro.rpc.transport import (
    LAN_1987,
    LoopbackTransport,
    NetworkModel,
    NULL_NETWORK,
    TcpServerThread,
    TcpTransport,
    Transport,
)

__all__ = [
    "BadRequest",
    "Bool",
    "Bytes",
    "DictOf",
    "Float",
    "Int",
    "Interface",
    "LAN_1987",
    "ListOf",
    "LoopbackTransport",
    "MarshalError",
    "MethodSpec",
    "NULL_NETWORK",
    "NetworkModel",
    "OptionalOf",
    "Pickled",
    "Proxy",
    "RecordOf",
    "RemoteError",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "Str",
    "TcpServerThread",
    "TcpTransport",
    "Transport",
    "TransportError",
    "TupleOf",
    "TypeExpr",
    "UnknownInterface",
    "UnknownMethod",
    "Void",
    "connect",
]
