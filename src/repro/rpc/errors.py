"""Errors raised by the RPC package."""

from __future__ import annotations


class RpcError(Exception):
    """Base class for RPC errors."""


class MarshalError(RpcError):
    """A value does not conform to the declared static signature."""


class UnknownInterface(RpcError):
    def __init__(self, name: str) -> None:
        super().__init__(f"no implementation exported for interface {name!r}")
        self.name = name


class UnknownMethod(RpcError):
    def __init__(self, interface: str, method: str) -> None:
        super().__init__(f"interface {interface!r} has no method {method!r}")
        self.interface = interface
        self.method = method


class BadRequest(RpcError):
    """The request bytes are malformed (framing or marshalling damage)."""


class RemoteError(RpcError):
    """The remote implementation raised; re-raised client-side.

    Carries the remote exception's registered wire name and message.  Use
    :meth:`repro.rpc.interface.Interface.error` to register exception
    types so clients get the original class back instead of this generic
    wrapper.
    """

    def __init__(self, error_name: str, message: str) -> None:
        super().__init__(f"remote raised {error_name}: {message}")
        self.error_name = error_name
        self.message = message


class TransportError(RpcError):
    """The request could not be carried (connection refused, closed, …).

    ``maybe_delivered`` records what the transport knows about the fate of
    the request bytes: ``False`` means the request certainly never reached
    the server (connection refused, failure before any byte was sent), so
    the call definitely did not execute; ``True`` (the conservative
    default) means the transport cannot rule out delivery — the call may
    have executed even though no reply arrived.  The retry layer uses this
    to decide between re-raising a plain transport failure and raising
    :class:`CallMaybeExecuted`.
    """

    def __init__(self, message: str, *, maybe_delivered: bool = True) -> None:
        super().__init__(message)
        self.maybe_delivered = maybe_delivered


class TransportClosed(TransportError):
    """The transport was explicitly closed; calls on it are a client bug.

    Never retried: closing is a deliberate local action, not a network
    fault.
    """

    def __init__(self, message: str = "transport is closed") -> None:
        super().__init__(message, maybe_delivered=False)


class DeadlineExpired(RpcError):
    """The call's deadline passed before any request was delivered.

    The call certainly did not execute (contrast
    :class:`CallMaybeExecuted`); the caller may safely reissue it.
    """


class CallMaybeExecuted(RpcError):
    """Retries/deadline exhausted with the update possibly applied.

    This is the one outcome the paper's RPC semantics ("the call either
    executes or raises") cannot hide from the client: the request may have
    reached the server and executed, but every reply was lost.  The caller
    must either reissue the call through the *same* client (the server's
    reply cache will answer the duplicate without re-executing) or treat
    the update as in doubt.
    """

    def __init__(self, method: str, seq: int, attempts: int) -> None:
        super().__init__(
            f"call {method!r} (seq {seq}) may have executed: no reply "
            f"after {attempts} attempt(s); retry with the same client to "
            f"resolve via the server reply cache"
        )
        self.method = method
        self.seq = seq
        self.attempts = attempts


class StaleCall(RpcError):
    """The server saw a sequence number older than one already answered.

    Arises only from duplicated/delayed packets of a superseded call; the
    original call's outcome stands.
    """
