"""Errors raised by the RPC package."""

from __future__ import annotations


class RpcError(Exception):
    """Base class for RPC errors."""


class MarshalError(RpcError):
    """A value does not conform to the declared static signature."""


class UnknownInterface(RpcError):
    def __init__(self, name: str) -> None:
        super().__init__(f"no implementation exported for interface {name!r}")
        self.name = name


class UnknownMethod(RpcError):
    def __init__(self, interface: str, method: str) -> None:
        super().__init__(f"interface {interface!r} has no method {method!r}")
        self.interface = interface
        self.method = method


class BadRequest(RpcError):
    """The request bytes are malformed (framing or marshalling damage)."""


class RemoteError(RpcError):
    """The remote implementation raised; re-raised client-side.

    Carries the remote exception's registered wire name and message.  Use
    :meth:`repro.rpc.interface.Interface.error` to register exception
    types so clients get the original class back instead of this generic
    wrapper.
    """

    def __init__(self, error_name: str, message: str) -> None:
        super().__init__(f"remote raised {error_name}: {message}")
        self.error_name = error_name
        self.message = message


class TransportError(RpcError):
    """The request could not be carried (connection refused, closed, …)."""
