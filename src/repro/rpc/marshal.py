"""Static marshalling for RPC signatures.

The paper is explicit that its two serialisers are different mechanisms:

    our pickling implementation works only by interpreting at run-time the
    structure of dynamically typed values, while our RPC implementation
    works only by generating code for the marshalling of statically typed
    values.

This module is the static half.  A method signature is declared with type
expressions (:data:`Str`, :data:`Int`, ``ListOf(...)``, ``RecordOf(...)``
…), and each expression *compiles* its own encoder/decoder pair — the
moral equivalent of the stub compiler emitting marshalling procedures.
The wire format carries no type tags at all (the signature is the schema),
which is why RPC marshalling is leaner than pickling.

Values are validated against the declared types on both encode and
decode, so a mismatched client and server fail with a clean
:class:`MarshalError` rather than silent corruption.
"""

from __future__ import annotations

from typing import Callable

from repro.pickles.wire import (
    WireReader,
    encode_float,
    encode_signed,
    encode_varint,
)
from repro.rpc.errors import MarshalError

Encoder = Callable[[object, bytearray], None]
Decoder = Callable[[WireReader], object]


class TypeExpr:
    """A static wire type; subclasses compile encoder/decoder pairs."""

    def encoder(self) -> Encoder:
        raise NotImplementedError

    def decoder(self) -> Decoder:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class _Atom(TypeExpr):
    def __init__(self, name: str, encode: Encoder, decode: Decoder) -> None:
        self._name = name
        self._encode = encode
        self._decode = decode

    def encoder(self) -> Encoder:
        return self._encode

    def decoder(self) -> Decoder:
        return self._decode

    def describe(self) -> str:
        return self._name


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise MarshalError(message)


def _encode_int(value: object, out: bytearray) -> None:
    _require(type(value) is int, f"expected int, got {type(value).__name__}")
    encode_signed(value, out)


def _encode_bool(value: object, out: bytearray) -> None:
    _require(type(value) is bool, f"expected bool, got {type(value).__name__}")
    out.append(1 if value else 0)


def _decode_bool(reader: WireReader) -> bool:
    byte = reader.read_byte()
    _require(byte in (0, 1), f"bad bool byte {byte:#x}")
    return byte == 1


def _encode_float(value: object, out: bytearray) -> None:
    _require(
        type(value) in (float, int), f"expected float, got {type(value).__name__}"
    )
    encode_float(float(value), out)


def _encode_str(value: object, out: bytearray) -> None:
    _require(type(value) is str, f"expected str, got {type(value).__name__}")
    raw = value.encode("utf-8")
    encode_varint(len(raw), out)
    out.extend(raw)


def _decode_str(reader: WireReader) -> str:
    length = reader.read_varint()
    _require(length <= reader.remaining(), "string length exceeds input")
    return reader.read_bytes(length).decode("utf-8")


def _encode_bytes(value: object, out: bytearray) -> None:
    _require(
        type(value) in (bytes, bytearray),
        f"expected bytes, got {type(value).__name__}",
    )
    encode_varint(len(value), out)
    out.extend(value)


def _decode_bytes(reader: WireReader) -> bytes:
    length = reader.read_varint()
    _require(length <= reader.remaining(), "bytes length exceeds input")
    return reader.read_bytes(length)


def _encode_void(value: object, out: bytearray) -> None:
    _require(value is None, f"expected None, got {type(value).__name__}")


Int = _Atom("int", _encode_int, lambda r: r.read_signed())
Bool = _Atom("bool", _encode_bool, _decode_bool)
Float = _Atom("float", _encode_float, lambda r: r.read_float())
Str = _Atom("str", _encode_str, _decode_str)
Bytes = _Atom("bytes", _encode_bytes, _decode_bytes)
Void = _Atom("void", _encode_void, lambda r: None)


class ListOf(TypeExpr):
    def __init__(self, element: TypeExpr) -> None:
        self.element = element

    def encoder(self) -> Encoder:
        encode_element = self.element.encoder()

        def encode(value: object, out: bytearray) -> None:
            _require(
                type(value) in (list, tuple),
                f"expected list, got {type(value).__name__}",
            )
            encode_varint(len(value), out)
            for item in value:
                encode_element(item, out)

        return encode

    def decoder(self) -> Decoder:
        decode_element = self.element.decoder()

        def decode(reader: WireReader) -> list:
            count = reader.read_varint()
            _require(count <= reader.remaining() + 1, "list count exceeds input")
            return [decode_element(reader) for _ in range(count)]

        return decode

    def describe(self) -> str:
        return f"list<{self.element.describe()}>"


class DictOf(TypeExpr):
    def __init__(self, key: TypeExpr, value: TypeExpr) -> None:
        self.key = key
        self.value = value

    def encoder(self) -> Encoder:
        encode_key = self.key.encoder()
        encode_value = self.value.encoder()

        def encode(value: object, out: bytearray) -> None:
            _require(type(value) is dict, f"expected dict, got {type(value).__name__}")
            encode_varint(len(value), out)
            for k, v in value.items():
                encode_key(k, out)
                encode_value(v, out)

        return encode

    def decoder(self) -> Decoder:
        decode_key = self.key.decoder()
        decode_value = self.value.decoder()

        def decode(reader: WireReader) -> dict:
            count = reader.read_varint()
            _require(count <= reader.remaining() + 1, "dict count exceeds input")
            result = {}
            for _ in range(count):
                k = decode_key(reader)
                result[k] = decode_value(reader)
            return result

        return decode

    def describe(self) -> str:
        return f"dict<{self.key.describe()},{self.value.describe()}>"


class TupleOf(TypeExpr):
    def __init__(self, *elements: TypeExpr) -> None:
        self.elements = elements

    def encoder(self) -> Encoder:
        encoders = [e.encoder() for e in self.elements]

        def encode(value: object, out: bytearray) -> None:
            _require(
                type(value) is tuple and len(value) == len(encoders),
                f"expected {len(encoders)}-tuple, got {value!r}",
            )
            for item, encode_item in zip(value, encoders):
                encode_item(item, out)

        return encode

    def decoder(self) -> Decoder:
        decoders = [e.decoder() for e in self.elements]

        def decode(reader: WireReader) -> tuple:
            return tuple(decode_item(reader) for decode_item in decoders)

        return decode

    def describe(self) -> str:
        inner = ",".join(e.describe() for e in self.elements)
        return f"tuple<{inner}>"


class OptionalOf(TypeExpr):
    def __init__(self, element: TypeExpr) -> None:
        self.element = element

    def encoder(self) -> Encoder:
        encode_element = self.element.encoder()

        def encode(value: object, out: bytearray) -> None:
            if value is None:
                out.append(0)
            else:
                out.append(1)
                encode_element(value, out)

        return encode

    def decoder(self) -> Decoder:
        decode_element = self.element.decoder()

        def decode(reader: WireReader) -> object:
            flag = reader.read_byte()
            _require(flag in (0, 1), f"bad optional flag {flag:#x}")
            return decode_element(reader) if flag else None

        return decode

    def describe(self) -> str:
        return f"optional<{self.element.describe()}>"


class RecordOf(TypeExpr):
    """A statically declared record: fixed class, fixed field order."""

    def __init__(self, cls: type, fields: list[tuple[str, TypeExpr]]) -> None:
        self.cls = cls
        self.fields = list(fields)

    def encoder(self) -> Encoder:
        cls = self.cls
        plan = [(name, expr.encoder()) for name, expr in self.fields]

        def encode(value: object, out: bytearray) -> None:
            _require(
                isinstance(value, cls),
                f"expected {cls.__name__}, got {type(value).__name__}",
            )
            for name, encode_field in plan:
                encode_field(getattr(value, name), out)

        return encode

    def decoder(self) -> Decoder:
        cls = self.cls
        plan = [(name, expr.decoder()) for name, expr in self.fields]

        def decode(reader: WireReader) -> object:
            instance = cls.__new__(cls)
            for name, decode_field in plan:
                object.__setattr__(instance, name, decode_field(reader))
            return instance

        return decode

    def describe(self) -> str:
        return f"record<{self.cls.__name__}>"


class Pickled(TypeExpr):
    """Escape hatch: carry an arbitrary value via the pickle package.

    The paper notes each mechanism "would benefit from adding the
    mechanisms of the other"; this is that bridge, used where a signature
    is genuinely dynamic (the name server's tree values).
    """

    def __init__(self, registry=None) -> None:
        from repro.pickles import DEFAULT_REGISTRY

        self.registry = registry if registry is not None else DEFAULT_REGISTRY

    def encoder(self) -> Encoder:
        from repro.pickles import pickle_write

        registry = self.registry

        def encode(value: object, out: bytearray) -> None:
            blob = pickle_write(value, registry)
            encode_varint(len(blob), out)
            out.extend(blob)

        return encode

    def decoder(self) -> Decoder:
        from repro.pickles import pickle_read

        registry = self.registry

        def decode(reader: WireReader) -> object:
            length = reader.read_varint()
            _require(length <= reader.remaining(), "pickle length exceeds input")
            return pickle_read(reader.read_bytes(length), registry)

        return decode

    def describe(self) -> str:
        return "pickled"


def compile_params(
    params: list[tuple[str, TypeExpr]],
) -> tuple[
    Callable[[tuple], bytes],
    Callable[[WireReader], tuple],
    Callable[[tuple, bytearray], None],
]:
    """Compile a parameter list into (encode_args, decode_args, encode_args_into).

    ``encode_args_into`` is the allocation-free variant the RPC hot path
    uses: it appends to a caller-owned (reusable) buffer instead of
    materialising an intermediate ``bytes`` per call.
    """
    encoders = [(name, expr.encoder()) for name, expr in params]
    decoders = [expr.decoder() for _, expr in params]

    def encode_args_into(args: tuple, out: bytearray) -> None:
        if len(args) != len(encoders):
            raise MarshalError(
                f"expected {len(encoders)} arguments, got {len(args)}"
            )
        for (name, encode), value in zip(encoders, args):
            try:
                encode(value, out)
            except MarshalError as exc:
                raise MarshalError(f"argument {name!r}: {exc}") from None

    def encode_args(args: tuple) -> bytes:
        out = bytearray()
        encode_args_into(args, out)
        return bytes(out)

    def decode_args(reader: WireReader) -> tuple:
        return tuple(decode(reader) for decode in decoders)

    return encode_args, decode_args, encode_args_into
