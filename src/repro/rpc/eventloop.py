"""Event-driven TCP front end: one selector loop, many connections.

The thread-per-connection server (:class:`~repro.rpc.transport.TcpServerThread`)
spends a thread — and its share of scheduler churn — on every client,
which caps how much concurrency the transport can feed the group-commit
pipeline.  This server replaces that with the classic single-event-loop
shape on the stdlib :mod:`selectors` module:

* one loop thread owns the listener and every connection's buffers and
  does all socket I/O non-blocking (incremental length-prefix frame
  decoding, no blocking ``recv`` loops);

* requests are **pipelined**: a client may have many frames in flight on
  one connection.  Because the wire protocol carries no correlation ids,
  responses to one connection are written back in *request order* (the
  loop reorders completions), which also preserves the ordering
  at-most-once clients rely on; across connections, writes happen in
  completion order, so one connection's slow ``update`` never delays
  another connection's ``enquire``;

* dispatch runs on a small worker pool, so an fsync-bound ``update``
  blocks a worker, not the loop;

* a per-connection pipeline cap plus a write-backlog bound provide
  backpressure: an overloaded connection simply stops being read until
  its responses drain (recorded in the flight ring as ``rpc_overload``).

The dispatch contract (:meth:`repro.rpc.server.RpcServer.dispatch`), the
wire format, and the lifecycle API (``start``/``stop``/context manager,
no leaked sockets or threads after ``stop``) are identical to
:class:`TcpServerThread`, so the two are drop-in interchangeable — see
``--server-model`` in :mod:`repro.nameserver.serve`.
"""

from __future__ import annotations

import logging
import queue
import selectors
import socket
import struct
import threading
import time
from collections import deque

from repro.rpc.server import RpcServer

logger = logging.getLogger("repro.rpc")

_FRAME = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024
_READ_CHUNK = 256 * 1024

#: dispatch workers (slow updates block a worker, never the loop)
DEFAULT_WORKERS = 8
#: per-connection cap on frames read but not yet answered
DEFAULT_MAX_PIPELINE = 128
#: per-connection cap on buffered unsent response bytes
DEFAULT_MAX_BACKLOG_BYTES = 8 * 1024 * 1024
#: this many drops inside one second is reported as a disconnect storm
STORM_DROPS_PER_SECOND = 16


class _Connection:
    """One client connection's buffers and pipelining state (loop-owned)."""

    __slots__ = (
        "sock",
        "fd",
        "inbuf",
        "outbuf",
        "sent",
        "next_id",
        "next_to_write",
        "results",
        "in_flight",
        "paused",
        "dead",
        "events",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.sent = 0  # bytes of outbuf already written to the socket
        self.next_id = 0  # id assigned to the next frame read
        self.next_to_write = 0  # id whose response goes out next
        self.results: dict[int, bytes] = {}  # completed out-of-order
        self.in_flight = 0  # frames read but not yet written back
        self.paused = False  # reads suspended for backpressure
        self.dead = False
        self.events = selectors.EVENT_READ  # currently registered mask


class EventLoopServer:
    """An event-driven TCP front end for an :class:`RpcServer`.

    Same contract as :class:`~repro.rpc.transport.TcpServerThread`: a
    malformed frame closes only that connection (with a logged error and
    a bumped ``rpc_server_connection_errors_total``); ``stop()`` closes
    the listener and every connection and joins the loop and worker
    threads; an unexpected listener death is loud (log + counter + flight
    event) instead of silent.

    >>> srv = EventLoopServer(rpc_server, port=0).start()
    >>> transport = TcpTransport(srv.host, srv.port)
    """

    def __init__(
        self,
        server: RpcServer,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = DEFAULT_WORKERS,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        max_backlog_bytes: int = DEFAULT_MAX_BACKLOG_BYTES,
        flight=None,
    ) -> None:
        if workers < 1:
            raise ValueError("the dispatch pool needs at least one worker")
        if max_pipeline < 1:
            raise ValueError("max_pipeline counts from 1")
        self.server = server
        self.workers = workers
        self.max_pipeline = max_pipeline
        self.max_backlog_bytes = max_backlog_bytes
        self.flight = flight
        # A deep accept backlog is part of the design: one loop thread
        # drains accepts in bursts, so a connection storm (hundreds of
        # clients arriving within one scheduler quantum) must queue in
        # the kernel instead of overflowing into SYN drops and 1 s
        # client-side retransmission stalls.
        self._listener = socket.create_server((host, port), backlog=4096)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]

        self._selector = selectors.DefaultSelector()
        self._connections: dict[int, _Connection] = {}
        self._tasks: queue.Queue = queue.Queue()
        self._completions: deque[tuple[_Connection, int, bytes | None]] = deque()
        self._stopping = threading.Event()
        self._loop_thread: threading.Thread | None = None
        self._pool: list[threading.Thread] = []
        self._recent_drops: deque[float] = deque(maxlen=STORM_DROPS_PER_SECOND)
        self._storm_reported_at = 0.0

        # The waker: workers (and stop()) write one byte to unblock the
        # selector so completions are flushed promptly.
        self._waker_recv, self._waker_send = socket.socketpair()
        self._waker_recv.setblocking(False)
        self._waker_send.setblocking(False)

        registry = server.registry
        self._conn_gauge = registry.gauge(
            "rpc_server_connections", "Currently open client connections."
        )
        self._turn_seconds = registry.histogram(
            "rpc_eventloop_turn_seconds",
            "Time the event loop spends processing one batch of events.",
            buckets=(0.0001, 0.0005, 0.001, 0.005, 0.02, 0.1, 0.5, 2.0),
        )
        self._pipeline_depth = registry.histogram(
            "rpc_server_pipeline_depth",
            "In-flight pipelined frames on a connection at frame arrival.",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._connection_errors_metric = registry.counter(
            "rpc_server_connection_errors_total",
            "Connections dropped for malformed frames or dispatch bugs.",
        )
        self._listener_failures = registry.counter(
            "rpc_server_listener_failures_total",
            "Unexpected listener/accept-loop deaths (not clean stops).",
        )
        self._overloads = registry.counter(
            "rpc_server_overload_pauses_total",
            "Connections paused for exceeding the pipeline/backlog caps.",
        )
        #: set when the listener died without stop() being called
        self.listener_failed = False

    @property
    def connection_errors(self) -> int:
        return int(self._connection_errors_metric.value)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EventLoopServer":
        if self._loop_thread is not None:  # idempotent
            return self
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._selector.register(self._waker_recv, selectors.EVENT_READ, None)
        for n in range(self.workers):
            worker = threading.Thread(
                target=self._worker, name=f"rpc-dispatch-{n}", daemon=True
            )
            worker.start()
            self._pool.append(worker)
        self._loop_thread = threading.Thread(
            target=self._run, name="rpc-eventloop", daemon=True
        )
        self._loop_thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        self._stopping.set()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(join_timeout)
        for _ in self._pool:
            self._tasks.put(None)
        for worker in self._pool:
            worker.join(join_timeout)
        # Normally the loop thread cleans up after itself on the way out;
        # repeating it here is idempotent and covers a never-started or
        # wedged loop.
        self._cleanup()

    def __enter__(self) -> "EventLoopServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _cleanup(self) -> None:
        for conn in list(self._connections.values()):
            conn.dead = True
            try:
                conn.sock.close()
            except OSError:
                pass
        self._connections.clear()
        self._conn_gauge.set(0)
        for sock in (self._listener, self._waker_recv, self._waker_send):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._selector.close()
        except Exception:
            pass

    def _wake(self) -> None:
        try:
            self._waker_send.send(b"\0")
        except OSError:
            pass  # buffer full (a wake-up is already pending) or closed

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    events = self._selector.select(timeout=0.5)
                except OSError as exc:
                    # A registered fd went bad behind our back (e.g. the
                    # listener was closed externally).  Recover what can
                    # be recovered and report the rest loudly.
                    self._recover_selector(exc)
                    continue
                if self._stopping.is_set():
                    break
                # An externally-closed listener is silently dropped from
                # epoll-style selectors (no EBADF from select), so probe
                # its health every turn: dying quietly is the one thing
                # an accept loop is not allowed to do.
                if not self.listener_failed and self._listener.fileno() == -1:
                    self._note_listener_failure(
                        OSError("listening socket closed externally")
                    )
                started = time.perf_counter()
                for key, _mask in events:
                    if key.fileobj is self._waker_recv:
                        self._drain_waker()
                    elif key.fileobj is self._listener:
                        self._handle_accept()
                    else:
                        conn = key.data
                        if conn is None or conn.dead:
                            continue
                        if _mask & selectors.EVENT_READ:
                            self._handle_read(conn)
                        if _mask & selectors.EVENT_WRITE and not conn.dead:
                            self._handle_write(conn)
                self._drain_completions()
                if events:
                    self._turn_seconds.observe(time.perf_counter() - started)
        except Exception:  # pragma: no cover - loop must never die silently
            logger.exception("event loop died unexpectedly")
            self.listener_failed = True
            self._listener_failures.inc()
        finally:
            self._cleanup()

    def _recover_selector(self, exc: OSError) -> None:
        """Rebuild selector state after an EBADF-style surprise."""
        if self._stopping.is_set():
            return
        if self._listener.fileno() == -1:
            self._note_listener_failure(exc)
        for conn in list(self._connections.values()):
            if conn.sock.fileno() == -1:
                self._drop(conn, "socket closed externally")
        # Re-register everything still valid into a fresh selector.
        old = self._selector
        self._selector = selectors.DefaultSelector()
        try:
            old.close()
        except Exception:
            pass
        self._selector.register(self._waker_recv, selectors.EVENT_READ, None)
        if self._listener.fileno() != -1:
            self._selector.register(self._listener, selectors.EVENT_READ, None)
        for conn in self._connections.values():
            if conn.events:
                self._selector.register(conn.sock, conn.events, conn)

    def _note_listener_failure(self, exc: OSError) -> None:
        """The loud-death contract, same as the threaded front end."""
        if self.listener_failed:
            return
        self.listener_failed = True
        self._listener_failures.inc()
        logger.error(
            "listener on %s:%s died unexpectedly (%s): the server will "
            "accept no further connections",
            self.host,
            self.port,
            exc,
        )
        if self.flight is not None:
            self.flight.record(
                "rpc_listener_failed",
                host=self.host,
                port=self.port,
                error=repr(exc),
                server_model="eventloop",
            )

    def _drain_waker(self) -> None:
        try:
            while self._waker_recv.recv(4096):
                pass
        except OSError:
            pass  # would-block: drained

    def _handle_accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except BlockingIOError:
                return
            except OSError as exc:
                if not self._stopping.is_set():
                    self._note_listener_failure(exc)
                    try:
                        self._selector.unregister(self._listener)
                    except Exception:
                        pass
                return
            sock.setblocking(False)
            conn = _Connection(sock)
            self._connections[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self._conn_gauge.set(len(self._connections))

    def _handle_read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_READ_CHUNK)
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn, None)
            return
        if not data:
            if conn.inbuf:
                # Mid-frame disconnect: quiet, same as the threaded server.
                logger.debug("connection closed mid-frame")
            self._drop(conn, None)
            return
        conn.inbuf += data
        self._parse_frames(conn)

    def _parse_frames(self, conn: _Connection) -> None:
        """Incremental frame decoding: consume every complete frame."""
        buf = conn.inbuf
        offset = 0
        while True:
            available = len(buf) - offset
            if available < _FRAME.size:
                break
            (length,) = _FRAME.unpack_from(buf, offset)
            if length > _MAX_FRAME:
                self._connection_errors_metric.inc()
                logger.warning(
                    "dropping connection: frame of %d bytes exceeds limit",
                    length,
                )
                self._drop(conn, "oversize frame")
                return
            if available - _FRAME.size < length:
                break
            start = offset + _FRAME.size
            payload = bytes(buf[start:start + length])
            offset = start + length
            request_id = conn.next_id
            conn.next_id += 1
            conn.in_flight += 1
            self._pipeline_depth.observe(conn.in_flight)
            self._tasks.put((conn, request_id, payload))
        if offset:
            del buf[:offset]
        self._apply_backpressure(conn)

    def _apply_backpressure(self, conn: _Connection) -> None:
        overloaded = (
            conn.in_flight >= self.max_pipeline
            or len(conn.outbuf) - conn.sent > self.max_backlog_bytes
        )
        if overloaded and not conn.paused:
            conn.paused = True
            self._overloads.inc()
            if self.flight is not None:
                self.flight.record(
                    "rpc_overload",
                    fd=conn.fd,
                    in_flight=conn.in_flight,
                    backlog_bytes=len(conn.outbuf) - conn.sent,
                )
            self._update_interest(conn)
        elif conn.paused and not overloaded:
            conn.paused = False
            self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        if conn.dead:
            return
        mask = 0
        if not conn.paused:
            mask |= selectors.EVENT_READ
        if conn.sent < len(conn.outbuf):
            mask |= selectors.EVENT_WRITE
        if mask == conn.events:
            return
        try:
            if mask == 0:
                # Paused with nothing to write: fully parked until a
                # completion re-arms it (a worker wake-up, not a poll).
                self._selector.unregister(conn.sock)
            elif conn.events == 0:
                self._selector.register(conn.sock, mask, conn)
            else:
                self._selector.modify(conn.sock, mask, conn)
        except (KeyError, ValueError, OSError):
            self._drop(conn, None)
            return
        conn.events = mask

    def _handle_write(self, conn: _Connection) -> None:
        if conn.sent >= len(conn.outbuf):
            self._update_interest(conn)
            return
        try:
            sent = conn.sock.send(memoryview(conn.outbuf)[conn.sent:])
        except BlockingIOError:
            return
        except OSError:
            self._drop(conn, None)
            return
        conn.sent += sent
        if conn.sent >= len(conn.outbuf):
            conn.outbuf.clear()
            conn.sent = 0
        self._apply_backpressure(conn)
        self._update_interest(conn)

    def _drop(self, conn: _Connection, reason: str | None) -> None:
        if conn.dead:
            return
        conn.dead = True
        if reason:
            logger.warning("dropping connection: %s", reason)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._connections.pop(conn.fd, None)
        self._conn_gauge.set(len(self._connections))
        self._note_drop_storm()

    def _note_drop_storm(self) -> None:
        now = time.monotonic()
        self._recent_drops.append(now)
        if (
            len(self._recent_drops) == self._recent_drops.maxlen
            and now - self._recent_drops[0] <= 1.0
            and now - self._storm_reported_at > 1.0
        ):
            self._storm_reported_at = now
            logger.warning(
                "disconnect storm: %d connections dropped within 1s",
                len(self._recent_drops),
            )
            if self.flight is not None:
                self.flight.record(
                    "rpc_disconnect_storm",
                    drops=len(self._recent_drops),
                    window_seconds=1.0,
                )

    # -- dispatch workers ----------------------------------------------------

    def _worker(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            conn, request_id, payload = task
            if conn.dead:
                continue  # the connection went away while queued
            try:
                response: bytes | None = self.server.dispatch(payload)
            except Exception:
                # dispatch() answers bad input with error frames, so this
                # is a server bug: close the connection, keep the loop.
                self._connection_errors_metric.inc()
                logger.exception("internal error serving connection")
                response = None
            self._completions.append((conn, request_id, response))
            self._wake()

    def _drain_completions(self) -> None:
        """Loop thread: move completed responses into ordered write buffers."""
        flushed: set[int] = set()
        while True:
            try:
                conn, request_id, response = self._completions.popleft()
            except IndexError:
                break
            if conn.dead:
                continue
            if response is None:
                self._drop(conn, "dispatch failed")
                continue
            conn.results[request_id] = response
            # Flush the contiguous prefix: responses go out in request
            # order so a pipelining client can match them up.
            while conn.next_to_write in conn.results:
                reply = conn.results.pop(conn.next_to_write)
                conn.outbuf += _FRAME.pack(len(reply))
                conn.outbuf += reply
                conn.next_to_write += 1
                conn.in_flight -= 1
            flushed.add(conn.fd)
        for fd in flushed:
            conn = self._connections.get(fd)
            if conn is None or conn.dead:
                continue
            # Opportunistic immediate write saves a selector round trip.
            self._handle_write(conn)
            if not conn.dead:
                self._apply_backpressure(conn)
                self._update_interest(conn)
