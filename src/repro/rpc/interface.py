"""Interface declarations: the input to stub generation.

An :class:`Interface` declares methods with static signatures; from it the
package generates both halves automatically (the paper: "The RPC stub
modules were generated automatically"):

* the client proxy (:meth:`repro.rpc.client.RpcClient.proxy`), whose
  generated methods marshal arguments and unmarshal results; and
* the server dispatcher (:class:`repro.rpc.server.RpcServer`), which
  unmarshals, calls the implementation, and marshals the reply.

Exception types can be registered on the interface so a server-side
``PreconditionFailed`` arrives client-side as ``PreconditionFailed``.

>>> calc = Interface("Calculator")
>>> calc.method("add", params=[("a", Int), ("b", Int)], returns=Int)
<repro.rpc.interface.MethodSpec object at ...>
"""

from __future__ import annotations

from repro.pickles.wire import WireReader, encode_varint
from repro.rpc.errors import UnknownMethod
from repro.rpc.marshal import TypeExpr, Void, compile_params


class MethodSpec:
    """One method's name, signature, and compiled marshallers."""

    def __init__(
        self,
        interface_name: str,
        name: str,
        params: list[tuple[str, TypeExpr]],
        returns: TypeExpr,
    ) -> None:
        self.interface_name = interface_name
        self.name = name
        self.params = list(params)
        self.returns = returns
        (
            self.encode_args,
            self.decode_args,
            self.encode_args_into,
        ) = compile_params(self.params)
        self.encode_result = returns.encoder()
        self.decode_result = returns.decoder()
        #: precomputed ``wire_name + method`` header bytes (profile-guided:
        #: both are constant per spec, so the hot path appends one blob
        #: instead of re-encoding two strings per call); filled in by
        #: :meth:`Interface.method`.
        self.request_prefix: bytes | None = None

    def signature(self) -> str:
        inner = ", ".join(f"{n}: {t.describe()}" for n, t in self.params)
        return f"{self.name}({inner}) -> {self.returns.describe()}"


class Interface:
    """A named collection of method specifications."""

    def __init__(self, name: str, version: int = 1) -> None:
        if not name:
            raise ValueError("interface name must be non-empty")
        self.name = name
        self.version = version
        self.methods: dict[str, MethodSpec] = {}
        self.errors: dict[str, type[Exception]] = {}

    @property
    def wire_name(self) -> str:
        return f"{self.name}/{self.version}"

    def method(
        self,
        name: str,
        params: list[tuple[str, TypeExpr]] | None = None,
        returns: TypeExpr = Void,
    ) -> MethodSpec:
        """Declare a method; returns its spec (mostly for introspection)."""
        if name in self.methods:
            raise ValueError(f"method {name!r} already declared")
        spec = MethodSpec(self.name, name, params or [], returns)
        prefix = bytearray()
        _encode_str(self.wire_name, prefix)
        _encode_str(name, prefix)
        spec.request_prefix = bytes(prefix)
        self.methods[name] = spec
        return spec

    def error(self, exception_type: type[Exception], name: str | None = None) -> None:
        """Register an exception type to cross the wire as itself."""
        wire_name = name if name is not None else exception_type.__name__
        existing = self.errors.get(wire_name)
        if existing is not None and existing is not exception_type:
            raise ValueError(f"error name {wire_name!r} already registered")
        self.errors[wire_name] = exception_type

    def error_name_for(self, exc: Exception) -> str | None:
        for wire_name, exc_type in self.errors.items():
            if type(exc) is exc_type:
                return wire_name
        return None

    def spec(self, method: str) -> MethodSpec:
        found = self.methods.get(method)
        if found is None:
            raise UnknownMethod(self.name, method)
        return found

    def describe(self) -> str:
        lines = [f"interface {self.wire_name}"]
        for name in sorted(self.methods):
            lines.append(f"  {self.methods[name].signature()}")
        return "\n".join(lines)


# Request/response wire framing (shared by client and server) ----------------

STATUS_OK = 0
STATUS_APP_ERROR = 1
STATUS_RPC_ERROR = 2


class CallHeader:
    """The routing and at-most-once identity of one request.

    ``client_id`` + ``seq`` make retransmissions of a call recognisable:
    a client assigns each logical call a fresh sequence number and reuses
    it verbatim on every retry, so the server's reply cache can answer a
    duplicate without re-executing (the Birrell–Nelson at-most-once
    design the paper's RPC package relies on).  An empty ``client_id``
    opts out: the server executes unconditionally.

    ``trace`` carries the caller's trace context (``traceid-spanid``, see
    :mod:`repro.obs.tracing`) so the server's spans join the client's
    trace tree; empty means the call is untraced.
    """

    __slots__ = ("wire_name", "method", "client_id", "seq", "trace")

    def __init__(
        self,
        wire_name: str,
        method: str,
        client_id: str,
        seq: int,
        trace: str = "",
    ):
        self.wire_name = wire_name
        self.method = method
        self.client_id = client_id
        self.seq = seq
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CallHeader({self.wire_name}.{self.method}, "
            f"client={self.client_id!r}, seq={self.seq})"
        )


def encode_request(
    interface: Interface,
    method: str,
    args: tuple,
    client_id: str = "",
    seq: int = 0,
    trace: str = "",
) -> bytes:
    """Marshal one call: wire name, method, call identity, arguments."""
    out = bytearray()
    encode_request_into(
        out, interface, method, args, client_id=client_id, seq=seq, trace=trace
    )
    return bytes(out)


def encode_request_into(
    out: bytearray,
    interface: Interface,
    method: str,
    args: tuple,
    client_id: str = "",
    seq: int = 0,
    trace: str = "",
) -> None:
    """Marshal one call into a caller-owned (reusable) buffer."""
    spec = interface.spec(method)
    if spec.request_prefix is not None:
        out += spec.request_prefix
    else:
        _encode_str(interface.wire_name, out)
        _encode_str(method, out)
    _encode_str(client_id, out)
    encode_varint(seq, out)
    _encode_str(trace, out)
    spec.encode_args_into(args, out)


def decode_request_header(data: bytes) -> tuple[CallHeader, WireReader]:
    """Read the call header; the reader stays at the arguments."""
    reader = WireReader(data)
    wire_name = _decode_str(reader)
    method = _decode_str(reader)
    client_id = _decode_str(reader)
    seq = reader.read_varint()
    trace = _decode_str(reader)
    return CallHeader(wire_name, method, client_id, seq, trace), reader


def _encode_str(value: str, out: bytearray) -> None:
    raw = value.encode("utf-8")
    encode_varint(len(raw), out)
    out.extend(raw)


def _decode_str(reader: WireReader) -> str:
    length = reader.read_varint()
    return reader.read_bytes(length).decode("utf-8")
