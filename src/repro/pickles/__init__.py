"""Pickles: automatic conversion between typed values and disk bytes.

This is a from-scratch implementation of the paper's "pickles" mechanism
(section 6): ``PickleWrite`` takes a strongly typed data structure and
delivers bytes for writing to the disk; ``PickleRead`` delivers a copy of
the original structure, with addresses swizzled to the current execution
environment.  The database core uses it for both log entries and
checkpoints, exactly as the paper does.

Differences from the standard library's ``pickle`` (why we built our own):

* it reproduces the *mechanism under study* — value-driven traversal with
  explicit address swizzling, the paper's measured 40 %-of-update cost;
* decoding is safe on untrusted bytes: only classes registered in a
  :class:`TypeRegistry` can be instantiated, and only via ``__new__``;
* the format is deterministic (sets are ordered, strings deduplicated), so
  identical states produce identical checkpoints — used by replica
  anti-entropy comparison.

>>> from repro.pickles import pickle_write, pickle_read
>>> shared = ["sub"]
>>> value = {"a": shared, "b": shared}
>>> copy = pickle_read(pickle_write(value))
>>> copy["a"] is copy["b"]   # sharing preserved
True
"""

from repro.pickles.decode import PickleReader, pickle_read
from repro.pickles.encode import PickleWriter, pickle_write
from repro.pickles.errors import (
    MalformedPickle,
    PickleError,
    RegistryError,
    TruncatedPickle,
    UnknownRecordClass,
    UnknownTypeTag,
    UnpickleableType,
)
from repro.pickles.registry import DEFAULT_REGISTRY, TypeRegistry, pickleable

__all__ = [
    "DEFAULT_REGISTRY",
    "MalformedPickle",
    "PickleError",
    "PickleReader",
    "PickleWriter",
    "RegistryError",
    "TruncatedPickle",
    "TypeRegistry",
    "UnknownRecordClass",
    "UnknownTypeTag",
    "UnpickleableType",
    "pickle_read",
    "pickle_write",
    "pickleable",
]
