"""PickleWrite: strongly typed value → bytes.

The encoder walks the object graph the way the paper's pickle package
walks the garbage collector's runtime type structures: fully automatically,
identifying "the occurrences of addresses in the structure" so that shared
sub-structures and cycles are preserved.  Our analogue of an address is the
object's identity; the *n*-th pickled heap object is assigned swizzle index
*n* and later occurrences are emitted as one-byte-plus-varint back
references.

Mutable containers (lists, sets, dicts, records) are entered into the
swizzle table *before* their children are encoded, so cycles terminate.
Immutable containers (tuples, frozensets) are entered *after* — a tuple
reached again through a cycle in its own children is re-encoded, yielding
an equal but not identical tuple on decode, the same compromise the
standard library makes.

Strings and byte strings are deduplicated by value: a log full of updates
naming the same fields costs the field names once.
"""

from __future__ import annotations

from repro.pickles.errors import NestingTooDeep, UnpickleableType

#: default nesting bound; far above any sane database structure, far
#: below Python's recursion limit so the error is ours, not the VM's.
MAX_DEPTH = 200
from repro.pickles.registry import DEFAULT_REGISTRY, TypeRegistry
from repro.pickles.wire import (
    TAG_BYTES,
    TAG_DICT,
    TAG_FALSE,
    TAG_FLOAT,
    TAG_FROZENSET,
    TAG_INT,
    TAG_LIST,
    TAG_NONE,
    TAG_RECORD,
    TAG_REF,
    TAG_SET,
    TAG_STR,
    TAG_TRUE,
    TAG_TUPLE,
    encode_float,
    encode_signed,
    encode_varint,
)


class PickleWriter:
    """One encoding pass; use :func:`pickle_write` unless streaming."""

    def __init__(
        self,
        registry: TypeRegistry | None = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._max_depth = max_depth
        self._depth = 0
        self._out = bytearray()
        # Swizzle table: object identity (mutables) or value (str/bytes)
        # to back-reference index.  Indices count all table entries in
        # encounter order, mirrored exactly by the decoder.
        self._by_id: dict[int, int] = {}
        self._by_value: dict[tuple[type, object], int] = {}
        self._next_index = 0
        # Objects kept alive so ids stay unique during the pass.
        self._pinned: list[object] = []

    def write(self, value: object) -> None:
        """Append the pickle of ``value`` to the output buffer."""
        self._encode(value)

    def getvalue(self) -> bytes:
        return bytes(self._out)

    # -- internals -----------------------------------------------------------

    def _assign_index(self, value: object, by_value: bool) -> None:
        index = self._next_index
        self._next_index += 1
        if by_value:
            self._by_value[(type(value), value)] = index
        else:
            self._by_id[id(value)] = index
            self._pinned.append(value)

    def _emit_ref(self, index: int) -> None:
        self._out.append(TAG_REF)
        encode_varint(index, self._out)

    def _encode(self, value: object) -> None:
        self._depth += 1
        if self._depth > self._max_depth:
            raise NestingTooDeep(self._max_depth)
        try:
            self._encode_inner(value)
        finally:
            self._depth -= 1

    def _encode_inner(self, value: object) -> None:
        out = self._out
        if value is None:
            out.append(TAG_NONE)
            return
        if value is False:
            out.append(TAG_FALSE)
            return
        if value is True:
            out.append(TAG_TRUE)
            return
        kind = type(value)
        if kind is int:
            out.append(TAG_INT)
            encode_signed(value, out)
            return
        if kind is float:
            out.append(TAG_FLOAT)
            encode_float(value, out)
            return
        if kind is str or kind is bytes:
            key = (kind, value)
            index = self._by_value.get(key)
            if index is not None:
                self._emit_ref(index)
                return
            raw = value.encode("utf-8") if kind is str else value
            out.append(TAG_STR if kind is str else TAG_BYTES)
            encode_varint(len(raw), out)
            out.extend(raw)
            self._assign_index(value, by_value=True)
            return
        # Heap objects: shared structure via identity.
        index = self._by_id.get(id(value))
        if index is not None:
            self._emit_ref(index)
            return
        if kind is list:
            out.append(TAG_LIST)
            self._assign_index(value, by_value=False)
            encode_varint(len(value), out)
            for item in value:
                self._encode(item)
            return
        if kind is dict:
            out.append(TAG_DICT)
            self._assign_index(value, by_value=False)
            encode_varint(len(value), out)
            for key, item in value.items():
                self._encode(key)
                self._encode(item)
            return
        if kind is set:
            out.append(TAG_SET)
            self._assign_index(value, by_value=False)
            encode_varint(len(value), out)
            for item in _stable_set_order(value):
                self._encode(item)
            return
        if kind is tuple:
            out.append(TAG_TUPLE)
            encode_varint(len(value), out)
            for item in value:
                self._encode(item)
            self._assign_index(value, by_value=False)
            return
        if kind is frozenset:
            out.append(TAG_FROZENSET)
            encode_varint(len(value), out)
            for item in _stable_set_order(value):
                self._encode(item)
            self._assign_index(value, by_value=False)
            return
        name = self._registry.name_for(kind)
        if name is None:
            raise UnpickleableType(value)
        out.append(TAG_RECORD)
        self._assign_index(value, by_value=False)
        self._encode(name)
        fields = self._registry.fields_for(kind)
        if fields is None:
            items = vars(value)
            encode_varint(len(items), out)
            for field, item in items.items():
                self._encode(field)
                self._encode(item)
        else:
            encode_varint(len(fields), out)
            for field in fields:
                self._encode(field)
                self._encode(getattr(value, field))


def _stable_set_order(items: set | frozenset) -> list:
    """Deterministic element order so equal sets pickle identically."""
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=lambda item: (type(item).__name__, repr(item)))


def pickle_write(value: object, registry: TypeRegistry | None = None) -> bytes:
    """Convert a strongly typed value into bytes (the paper's PickleWrite)."""
    writer = PickleWriter(registry)
    writer.write(value)
    return writer.getvalue()
