"""The type registry driving record pickling.

The paper's pickle package is "entirely automatic: it is driven by the
run-time typing structures that are present for our garbage collection
mechanism".  Python's analogue of those structures is the class object and
its instance dictionary; the registry records which classes are *allowed*
to cross the pickle boundary and under what stable wire name.

Decoding will only ever instantiate registered classes (via
``cls.__new__``, never ``__init__`` — matching the paper's semantics of
reconstructing a stored structure rather than re-running constructors), so
a corrupt or hostile byte stream cannot execute arbitrary code the way the
standard library's ``pickle`` can.
"""

from __future__ import annotations

import threading

from repro.pickles.errors import RegistryError


class TypeRegistry:
    """Bidirectional mapping between classes and stable wire names."""

    def __init__(self) -> None:
        self._by_name: dict[str, type] = {}
        self._by_class: dict[type, str] = {}
        self._fields: dict[type, tuple[str, ...] | None] = {}
        self._lock = threading.Lock()

    def register(
        self,
        cls: type,
        name: str | None = None,
        fields: tuple[str, ...] | None = None,
    ) -> type:
        """Register ``cls`` under ``name`` (default: the class name).

        ``fields`` fixes the attribute set carried on the wire; ``None``
        means "whatever ``vars(instance)`` holds at encode time", which is
        the fully automatic mode the paper describes.  Returns ``cls`` so
        this can be used via the :func:`pickleable` decorator.
        """
        wire_name = name if name is not None else cls.__name__
        if not wire_name:
            raise RegistryError("wire name must be non-empty")
        with self._lock:
            existing = self._by_name.get(wire_name)
            if existing is not None and existing is not cls:
                raise RegistryError(
                    f"wire name {wire_name!r} is already registered "
                    f"to {existing.__name__}"
                )
            previous_name = self._by_class.get(cls)
            if previous_name is not None and previous_name != wire_name:
                raise RegistryError(
                    f"class {cls.__name__} is already registered "
                    f"as {previous_name!r}"
                )
            self._by_name[wire_name] = cls
            self._by_class[cls] = wire_name
            self._fields[cls] = tuple(fields) if fields is not None else None
        return cls

    def unregister(self, cls: type) -> None:
        with self._lock:
            name = self._by_class.pop(cls, None)
            if name is None:
                raise RegistryError(f"class {cls.__name__} is not registered")
            del self._by_name[name]
            del self._fields[cls]

    def name_for(self, cls: type) -> str | None:
        with self._lock:
            return self._by_class.get(cls)

    def class_for(self, name: str) -> type | None:
        with self._lock:
            return self._by_name.get(name)

    def fields_for(self, cls: type) -> tuple[str, ...] | None:
        with self._lock:
            return self._fields.get(cls)

    def registered_names(self) -> list[str]:
        with self._lock:
            return sorted(self._by_name)

    def clear(self) -> None:
        """Forget all registrations (test isolation only)."""
        with self._lock:
            self._by_name.clear()
            self._by_class.clear()
            self._fields.clear()


#: The process-wide default registry, used when none is passed explicitly.
DEFAULT_REGISTRY = TypeRegistry()


def pickleable(
    name: str | None = None,
    fields: tuple[str, ...] | None = None,
    registry: TypeRegistry | None = None,
):
    """Class decorator registering a record type for pickling.

    >>> @pickleable()
    ... class Account:
    ...     def __init__(self, owner, balance):
    ...         self.owner = owner
    ...         self.balance = balance
    """

    target = registry if registry is not None else DEFAULT_REGISTRY

    def decorate(cls: type) -> type:
        return target.register(cls, name=name, fields=fields)

    return decorate
