"""Low-level wire format shared by the pickle encoder and decoder.

Integers and lengths use unsigned LEB128 varints; signed integers are
zigzag-mapped first.  Every value starts with a one-byte type tag.
"""

from __future__ import annotations

import struct

from repro.pickles.errors import MalformedPickle, TruncatedPickle

# Type tags.  Stable on the wire: these values appear in checkpoints and
# log files, so they must never be renumbered.
TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT = 0x03
TAG_FLOAT = 0x04
TAG_STR = 0x05
TAG_BYTES = 0x06
TAG_LIST = 0x07
TAG_TUPLE = 0x08
TAG_SET = 0x09
TAG_FROZENSET = 0x0A
TAG_DICT = 0x0B
TAG_RECORD = 0x0C
TAG_REF = 0x0D

TAG_NAMES = {
    TAG_NONE: "none",
    TAG_FALSE: "false",
    TAG_TRUE: "true",
    TAG_INT: "int",
    TAG_FLOAT: "float",
    TAG_STR: "str",
    TAG_BYTES: "bytes",
    TAG_LIST: "list",
    TAG_TUPLE: "tuple",
    TAG_SET: "set",
    TAG_FROZENSET: "frozenset",
    TAG_DICT: "dict",
    TAG_RECORD: "record",
    TAG_REF: "ref",
}

_FLOAT_STRUCT = struct.Struct(">d")


def encode_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError("varint requires a non-negative integer")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one, small magnitudes first.

    Works for Python's unbounded integers: 0→0, -1→1, 1→2, -2→3, …
    """
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_signed(value: int, out: bytearray) -> None:
    encode_varint(zigzag(value), out)


def encode_float(value: float, out: bytearray) -> None:
    out.extend(_FLOAT_STRUCT.pack(value))


class WireReader:
    """A bounds-checked cursor over a pickle byte string."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self.data = data
        self.offset = offset

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def read_byte(self) -> int:
        if self.offset >= len(self.data):
            raise TruncatedPickle(self.offset, "expected a tag byte")
        byte = self.data[self.offset]
        self.offset += 1
        return byte

    def read_varint(self) -> int:
        shift = 0
        result = 0
        start = self.offset
        while True:
            if self.offset >= len(self.data):
                raise TruncatedPickle(start, "unterminated varint")
            byte = self.data[self.offset]
            self.offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 10_000:
                raise MalformedPickle(f"varint too long at offset {start}")

    def read_signed(self) -> int:
        return unzigzag(self.read_varint())

    def read_float(self) -> float:
        end = self.offset + 8
        if end > len(self.data):
            raise TruncatedPickle(self.offset, "truncated float")
        (value,) = _FLOAT_STRUCT.unpack_from(self.data, self.offset)
        self.offset = end
        return value

    def read_bytes(self, length: int) -> bytes:
        end = self.offset + length
        if end > len(self.data):
            raise TruncatedPickle(
                self.offset, f"wanted {length} bytes, {self.remaining()} left"
            )
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk
