"""Errors raised by the pickle package."""

from __future__ import annotations


class PickleError(Exception):
    """Base class for pickle package errors."""


class UnpickleableType(PickleError):
    """The value contains an object of a type pickles cannot represent."""

    def __init__(self, value: object) -> None:
        super().__init__(
            f"cannot pickle object of type {type(value).__name__!r}; "
            f"register the class with the type registry first"
        )
        self.value_type = type(value)


class UnknownTypeTag(PickleError):
    """The byte stream contains an unrecognised type tag (corrupt input)."""

    def __init__(self, tag: int, offset: int) -> None:
        super().__init__(f"unknown pickle type tag {tag:#x} at offset {offset}")
        self.tag = tag
        self.offset = offset


class UnknownRecordClass(PickleError):
    """The stream names a record class not present in the registry.

    Unlike the standard library's ``pickle``, this package never imports or
    instantiates arbitrary classes: a name must have been registered in this
    process before it can be decoded.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"record class {name!r} is not registered")
        self.name = name


class TruncatedPickle(PickleError):
    """The byte stream ended in the middle of a value."""

    def __init__(self, offset: int, detail: str = "") -> None:
        message = f"pickle truncated at offset {offset}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.offset = offset


class MalformedPickle(PickleError):
    """The byte stream is structurally invalid (bad ref, bad length, …)."""


class RegistryError(PickleError):
    """Invalid registration (duplicate name, unregistered class, …)."""


class NestingTooDeep(PickleError):
    """The value (or input) nests beyond the configured depth limit.

    Raised instead of an unpredictable ``RecursionError``: the limit is a
    property of the format (both sides must agree on what is encodable),
    so it fails deterministically at the same depth everywhere.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"structure nests deeper than {limit} levels; "
            f"restructure the data or raise max_depth"
        )
        self.limit = limit
