"""PickleRead: bytes → a copy of the original strongly typed value.

The decoder mirrors the encoder exactly: it reconstructs the swizzle table
in the same encounter order, so back references resolve to the objects the
encoder shared, "replacing addresses with addresses valid in the current
execution environment" as the paper puts it.

Safety: the input is treated as untrusted.  Every length is bounds-checked
against the remaining input, reference indices must point backwards, and
record class names must already be present in the type registry — decoding
never imports modules or calls constructors, only ``cls.__new__``.
"""

from __future__ import annotations

from repro.pickles.errors import (
    MalformedPickle,
    NestingTooDeep,
    TruncatedPickle,
    UnknownRecordClass,
    UnknownTypeTag,
)
from repro.pickles.encode import MAX_DEPTH
from repro.pickles.registry import DEFAULT_REGISTRY, TypeRegistry
from repro.pickles.wire import (
    TAG_BYTES,
    TAG_DICT,
    TAG_FALSE,
    TAG_FLOAT,
    TAG_FROZENSET,
    TAG_INT,
    TAG_LIST,
    TAG_NONE,
    TAG_RECORD,
    TAG_REF,
    TAG_SET,
    TAG_STR,
    TAG_TRUE,
    TAG_TUPLE,
    WireReader,
)


class PickleReader:
    """One decoding pass; use :func:`pickle_read` unless streaming."""

    def __init__(
        self,
        data: bytes,
        registry: TypeRegistry | None = None,
        max_depth: int = MAX_DEPTH,
    ) -> None:
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._reader = WireReader(data)
        self._table: list[object] = []
        self._max_depth = max_depth
        self._depth = 0

    def read(self) -> object:
        """Decode the next value from the buffer."""
        return self._decode()

    def offset(self) -> int:
        """Current position in the buffer (for streamed log replay)."""
        return self._reader.offset

    def at_end(self) -> bool:
        return self._reader.remaining() == 0

    # -- internals -----------------------------------------------------------

    def _decode(self) -> object:
        self._depth += 1
        if self._depth > self._max_depth:
            raise NestingTooDeep(self._max_depth)
        try:
            return self._decode_inner()
        finally:
            self._depth -= 1

    def _decode_inner(self) -> object:
        reader = self._reader
        tag = reader.read_byte()
        if tag == TAG_NONE:
            return None
        if tag == TAG_FALSE:
            return False
        if tag == TAG_TRUE:
            return True
        if tag == TAG_INT:
            return reader.read_signed()
        if tag == TAG_FLOAT:
            return reader.read_float()
        if tag == TAG_STR or tag == TAG_BYTES:
            length = self._checked_length(reader.read_varint())
            raw = reader.read_bytes(length)
            value: object = raw.decode("utf-8") if tag == TAG_STR else raw
            self._table.append(value)
            return value
        if tag == TAG_REF:
            index = reader.read_varint()
            if index >= len(self._table):
                raise MalformedPickle(
                    f"forward reference to swizzle index {index} "
                    f"(table has {len(self._table)} entries) "
                    f"at offset {reader.offset}"
                )
            return self._table[index]
        if tag == TAG_LIST:
            result: list = []
            self._table.append(result)
            count = self._checked_length(reader.read_varint())
            for _ in range(count):
                result.append(self._decode())
            return result
        if tag == TAG_DICT:
            mapping: dict = {}
            self._table.append(mapping)
            count = self._checked_length(reader.read_varint())
            for _ in range(count):
                key = self._decode()
                mapping[key] = self._decode()
            return mapping
        if tag == TAG_SET:
            collection: set = set()
            self._table.append(collection)
            count = self._checked_length(reader.read_varint())
            for _ in range(count):
                collection.add(self._decode())
            return collection
        if tag == TAG_TUPLE:
            count = self._checked_length(reader.read_varint())
            items = tuple(self._decode() for _ in range(count))
            self._table.append(items)
            return items
        if tag == TAG_FROZENSET:
            count = self._checked_length(reader.read_varint())
            frozen = frozenset(self._decode() for _ in range(count))
            self._table.append(frozen)
            return frozen
        if tag == TAG_RECORD:
            return self._decode_record()
        raise UnknownTypeTag(tag, reader.offset - 1)

    def _decode_record(self) -> object:
        # Reserve the swizzle slot first: children may refer back to the
        # record (cyclic data structures).
        slot = len(self._table)
        self._table.append(None)
        name = self._decode()
        if not isinstance(name, str):
            raise MalformedPickle(
                f"record class name must be a string, got {type(name).__name__}"
            )
        cls = self._registry.class_for(name)
        if cls is None:
            raise UnknownRecordClass(name)
        instance = cls.__new__(cls)
        self._table[slot] = instance
        count = self._checked_length(self._reader.read_varint())
        for _ in range(count):
            field = self._decode()
            if not isinstance(field, str):
                raise MalformedPickle(
                    f"record field name must be a string, got {type(field).__name__}"
                )
            value = self._decode()
            object.__setattr__(instance, field, value)
        return instance

    def _checked_length(self, length: int) -> int:
        # A declared length can never exceed the bytes remaining: string
        # bodies cost one byte per byte, container elements at least one
        # byte each.  This bounds memory allocation on corrupt input.
        if length > self._reader.remaining():
            raise TruncatedPickle(
                self._reader.offset,
                f"declared length {length} exceeds remaining input",
            )
        return length


def pickle_read(data: bytes, registry: TypeRegistry | None = None) -> object:
    """Convert bytes back into a value (the paper's PickleRead).

    Raises :class:`MalformedPickle` if decoding leaves trailing garbage;
    use :class:`PickleReader` directly to stream several values from one
    buffer (as the log replayer does).
    """
    reader = PickleReader(data, registry)
    value = reader.read()
    if not reader.at_end():
        raise MalformedPickle(
            f"{len(data) - reader.offset()} trailing bytes after pickle"
        )
    return value
