"""The file system interface the database core is written against.

The paper builds its checkpoint/log machinery "on top of a Unix-like file
system", using only a handful of primitives: create, append, whole-file
write, read, delete, atomic rename, and fsync.  This module pins down that
contract so the core runs identically over two implementations:

* :class:`~repro.storage.simfs.SimFS` — a crash-faithful simulation (data
  survives a crash only if fsynced; in-flight page writes can tear; hard
  errors can be injected) with modelled 1987 disk timing.

* :class:`~repro.storage.localfs.LocalFS` — a real directory, for using the
  library as an actual embedded database.

All names are flat (a single directory, exactly as the paper's name server
uses), and all byte counts are plain ``bytes``.
"""

from __future__ import annotations

from typing import Iterator

from repro.storage.errors import HandleClosed


class FileSystem:
    """Abstract flat-directory file system.

    Durability contract (matching Unix semantics as the paper relies on
    them):

    * data written to a file is durable only after :meth:`fsync` on that
      file;
    * namespace operations (create / delete / rename) are durable only
      after :meth:`fsync_dir` — except that :meth:`fsync` of a file also
      makes that file's own directory entry durable, which is the
      "appropriate number of fsync calls" the paper alludes to;
    * :meth:`rename` is atomic: after a crash the destination name refers
      to either the old or the new file, never a mixture.
    """

    # -- namespace ---------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        """Create an empty file.  With ``exclusive`` raise if it exists."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove a file; raises :class:`FileNotFound` if absent."""
        raise NotImplementedError

    def delete_if_exists(self, name: str) -> bool:
        """Remove a file if present; returns whether it existed."""
        if self.exists(name):
            self.delete(name)
            return True
        return False

    def rename(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst``, replacing any existing ``dst``."""
        raise NotImplementedError

    def list_names(self) -> list[str]:
        """All file names, sorted."""
        raise NotImplementedError

    def fsync_dir(self) -> None:
        """Make all namespace operations durable."""
        raise NotImplementedError

    # -- data --------------------------------------------------------------

    def read(self, name: str) -> bytes:
        """Return the entire current contents of ``name``."""
        raise NotImplementedError

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        """Return up to ``length`` bytes starting at ``offset``.

        Returns fewer bytes only at end of file.  Raises
        :class:`HardError` if the range covers damaged media.
        """
        raise NotImplementedError

    def write(self, name: str, data: bytes) -> None:
        """Replace the contents of ``name`` (creating it if needed)."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name`` (creating it if needed)."""
        raise NotImplementedError

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        """Overwrite ``data`` in place at ``offset`` (may extend the file).

        This is the primitive the paper's "ad hoc" rivals build on —
        "updates are typically performed by overwriting existing data in
        place" — and is exactly what makes them crash-fragile.  The
        checkpoint/log core never uses it.
        """
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Current length of ``name`` in bytes."""
        raise NotImplementedError

    def truncate(self, name: str, new_size: int) -> None:
        """Discard bytes of ``name`` beyond ``new_size``."""
        raise NotImplementedError

    def fsync(self, name: str) -> None:
        """Force the file's data (and its directory entry) to disk."""
        raise NotImplementedError

    # -- handles -----------------------------------------------------------

    def open_append(self, name: str) -> "AppendHandle":
        """Open ``name`` for appending, creating it if needed."""
        return AppendHandle(self, name)

    def open_read(self, name: str) -> "ReadHandle":
        """Open ``name`` for sequential reading."""
        return ReadHandle(self, name)


class AppendHandle:
    """A stateful append cursor over :class:`FileSystem.append`.

    The log writer holds one of these open for the life of a log file; the
    handle exists so implementations may keep buffers, but the durability
    point is always :meth:`sync`.
    """

    def __init__(self, fs: FileSystem, name: str) -> None:
        self._fs = fs
        self.name = name
        self._closed = False
        if not fs.exists(name):
            fs.create(name)

    def write(self, data: bytes) -> None:
        """Append ``data``; not durable until :meth:`sync`."""
        self._check_open()
        self._fs.append(self.name, data)

    def sync(self) -> None:
        """Force all appended data to disk (the commit point)."""
        self._check_open()
        self._fs.fsync(self.name)

    def tell(self) -> int:
        """Current (volatile) end-of-file offset."""
        self._check_open()
        return self._fs.size(self.name)

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise HandleClosed(f"append handle for {self.name!r} is closed")

    def __enter__(self) -> "AppendHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ReadHandle:
    """A sequential read cursor over :class:`FileSystem.read_range`."""

    def __init__(self, fs: FileSystem, name: str) -> None:
        self._fs = fs
        self.name = name
        self._offset = 0
        self._closed = False

    def read(self, length: int) -> bytes:
        """Read up to ``length`` bytes; empty at end of file."""
        self._check_open()
        data = self._fs.read_range(self.name, self._offset, length)
        self._offset += len(data)
        return data

    def read_exact(self, length: int) -> bytes:
        """Read exactly ``length`` bytes or raise ``EOFError``."""
        data = self.read(length)
        if len(data) != length:
            raise EOFError(
                f"wanted {length} bytes at offset {self._offset - len(data)} "
                f"of {self.name!r}, got {len(data)}"
            )
        return data

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise ValueError("negative seek offset")
        self._check_open()
        self._offset = offset

    def tell(self) -> int:
        return self._offset

    def size(self) -> int:
        self._check_open()
        return self._fs.size(self.name)

    def chunks(self, chunk_size: int = 65536) -> Iterator[bytes]:
        """Yield the remainder of the file in ``chunk_size`` pieces."""
        while True:
            piece = self.read(chunk_size)
            if not piece:
                return
            yield piece

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise HandleClosed(f"read handle for {self.name!r} is closed")

    def __enter__(self) -> "ReadHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
