"""Failure injection for the storage substrate.

Three failure classes from the paper's section 4 (and its modern
extension) are injectable:

* **Transient failures** ("the system just stops"): the injector counts
  every durable disk event — each page write during an fsync and each
  metadata (directory) sync — and raises
  :class:`~repro.storage.errors.SimulatedCrash` when the scheduled event
  number is reached.  If the crash lands on a data-page write, that page is
  *torn*: its old contents are destroyed and reading it reports a hard
  error, which is exactly the disk property the paper's log recovery relies
  on ("a partially written page will report an error when it is read").

* **Hard failures** (media damage): tests mark individual pages bad via
  :meth:`SimulatedDisk.mark_bad` /
  :meth:`~repro.storage.simfs.SimFS.corrupt`; subsequent reads raise
  :class:`~repro.storage.errors.HardError`.

* **Runtime media faults** (this file's :class:`MediaFaultInjector` +
  :class:`FaultyFS`): an *operation* fails while the server is live — an
  ``EIO``-style :class:`~repro.storage.errors.HardError` on
  append/fsync/read/write, or :class:`~repro.storage.errors.DiskFull` on
  the write path.  Unlike a crash, the process keeps running and must cope:
  retry, or seal the log and degrade to read-only.  Faults can be
  *transient* (fail once, then the device recovers) or *persistent* (fail
  from the scheduled event onwards).

The crash-point sweep (:mod:`repro.sim.crashtest`) runs a workload with the
crash scheduled at event 1, 2, 3, … until the workload completes without
crashing, verifying recovery from *every* intermediate disk state; the
io-fault sweep (:mod:`repro.sim.iosweep`) does the same over runtime media
faults.
"""

from __future__ import annotations

import threading

from repro.storage.errors import DiskFull, HardError, SimulatedCrash
from repro.storage.interface import FileSystem


class FailureInjector:
    """Schedules a crash at the Nth durable disk event.

    ``crash_at_event`` counts from 1; ``None`` disables crashing.  The event
    counter keeps running across crashes so a harness can inspect how many
    events a full run takes (run once with no schedule, read
    :attr:`events_seen`, then sweep 1..events_seen).
    """

    def __init__(self, crash_at_event: int | None = None, tear: bool = True) -> None:
        if crash_at_event is not None and crash_at_event < 1:
            raise ValueError("crash_at_event counts from 1")
        self.crash_at_event = crash_at_event
        #: whether a crash landing on a data-page write destroys that page
        #: (True: crash mid-write; False: crash just after the write).
        self.tear = tear
        self.events_seen = 0
        self.crashed = False
        self._lock = threading.Lock()

    def on_event(self, detail: str = "") -> None:
        """Record one durable disk event; crash if this is the scheduled one.

        Returns normally if no crash is scheduled for this event.  The
        caller (the simulated disk) is responsible for tearing the page it
        was writing *before* calling this, so the crash leaves the torn
        state behind.
        """
        with self._lock:
            self.events_seen += 1
            event = self.events_seen
            due = self.crash_at_event is not None and event == self.crash_at_event
            if due:
                self.crashed = True
        if due:
            raise SimulatedCrash(event, detail)

    def crash_is_due_next(self) -> bool:
        """Whether the next event is the scheduled crash (peek, no count)."""
        with self._lock:
            return (
                self.crash_at_event is not None
                and self.events_seen + 1 == self.crash_at_event
            )

    def disarm(self) -> None:
        """Cancel any scheduled crash (used after recovery completes)."""
        with self._lock:
            self.crash_at_event = None


class NullInjector(FailureInjector):
    """An injector that never crashes (the default)."""

    def __init__(self) -> None:
        super().__init__(crash_at_event=None)


#: The file-system operations :class:`FaultyFS` counts as fault events.
#: ``exists``/``size``/``list_names`` are deliberately excluded: they are
#: pure metadata peeks, and the log writer's offset-resync path relies on
#: ``size`` still answering while the device is refusing writes.
READ_OPS = frozenset({"read", "read_range"})
WRITE_OPS = frozenset(
    {
        "create",
        "delete",
        "rename",
        "fsync_dir",
        "write",
        "write_at",
        "append",
        "truncate",
        "fsync",
    }
)
DATA_OPS = READ_OPS | WRITE_OPS


class MediaFaultInjector:
    """Schedules a runtime media fault at the Nth counted file-system call.

    ``fault_at_event`` counts from 1 over the operations in ``ops`` (every
    :data:`DATA_OPS` call is *counted* while armed so event numbering is
    stable across fault kinds; only calls whose op is in ``ops`` are
    *eligible* to fault).  The fault fires at the first eligible call at or
    after the scheduled event, so a schedule can never silently miss.

    * ``persistent=False`` (transient): the fault fires exactly once — the
      device then "recovers" and later calls succeed.
    * ``persistent=True``: the fault fires at every eligible call from the
      first firing onwards, modelling a dead region or a full disk that
      nobody is emptying.

    ``error`` selects the exception: ``"hard"`` →
    :class:`~repro.storage.errors.HardError`, ``"disk_full"`` →
    :class:`~repro.storage.errors.DiskFull` (which defaults ``ops`` to the
    write path — a full disk still reads fine).

    The injector starts disarmed so a harness can build and open a database
    cleanly, then :meth:`arm` it to expose only *runtime* faults.
    """

    def __init__(
        self,
        fault_at_event: int | None = None,
        persistent: bool = False,
        error: str = "hard",
        ops: frozenset[str] | None = None,
        flight=None,
    ) -> None:
        if fault_at_event is not None and fault_at_event < 1:
            raise ValueError("fault_at_event counts from 1")
        if error not in ("hard", "disk_full"):
            raise ValueError(f"unknown fault error kind {error!r}")
        if ops is None:
            ops = WRITE_OPS if error == "disk_full" else DATA_OPS
        unknown = ops - DATA_OPS
        if unknown:
            raise ValueError(f"unknown ops: {sorted(unknown)}")
        self.fault_at_event = fault_at_event
        self.persistent = persistent
        self.error = error
        self.ops = ops
        self.armed = False
        self.events_seen = 0
        #: optional :class:`~repro.obs.flight.FlightRecorder`: sharing
        #: the database's recorder puts each injection into the same
        #: black-box timeline as the degradation it provokes.
        self.flight = flight
        #: ``(event_number, op, name)`` for every fault actually raised.
        self.injected: list[tuple[int, str, str]] = []
        self._tripped = False
        self._lock = threading.Lock()

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        """Stop counting and faulting (the device is 'replaced')."""
        with self._lock:
            self.armed = False

    def check(self, op: str, name: str) -> None:
        """Count one operation; raise the scheduled fault if it is due."""
        with self._lock:
            if not self.armed:
                return
            self.events_seen += 1
            event = self.events_seen
            if self.fault_at_event is None or op not in self.ops:
                return
            if self._tripped:
                due = self.persistent
            else:
                due = event >= self.fault_at_event
            if not due:
                return
            self._tripped = True
            self.injected.append((event, op, name))
        if self.flight is not None:
            self.flight.record(
                "fault_injected",
                event=event,
                op=op,
                file=name,
                error=self.error,
                persistent=self.persistent,
            )
        raise self.make_error(op, name, event)

    def make_error(self, op: str, name: str, event: int) -> Exception:
        detail = f"injected fault at event #{event}: {op} {name!r}"
        if self.error == "disk_full":
            return DiskFull(detail)
        return HardError(detail)


class FaultyFS(FileSystem):
    """Inject runtime media faults over any :class:`FileSystem`.

    Wraps ``inner`` (a :class:`~repro.storage.simfs.SimFS`, a
    :class:`~repro.storage.localfs.LocalFS`, …) and consults a
    :class:`MediaFaultInjector` before every data-plane operation.  An
    injected hard fault on :meth:`append` first appends a *partial prefix*
    of the data to the underlying file system — a short write — so the
    failure leaves exactly the torn-tail state the log's cleanup and
    recovery paths must cope with.  An injected :class:`DiskFull` appends
    nothing (the device refused up front).
    """

    def __init__(self, inner: FileSystem, injector: MediaFaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    @property
    def page_size(self) -> int:
        return getattr(self.inner, "page_size", 512)

    @property
    def clock(self):
        return getattr(self.inner, "clock", None)

    # -- namespace ---------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        self.injector.check("create", name)
        self.inner.create(name, exclusive=exclusive)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def delete(self, name: str) -> None:
        self.injector.check("delete", name)
        self.inner.delete(name)

    def rename(self, src: str, dst: str) -> None:
        self.injector.check("rename", src)
        self.inner.rename(src, dst)

    def list_names(self) -> list[str]:
        return self.inner.list_names()

    def fsync_dir(self) -> None:
        self.injector.check("fsync_dir", "")
        self.inner.fsync_dir()

    # -- data --------------------------------------------------------------

    def read(self, name: str) -> bytes:
        self.injector.check("read", name)
        return self.inner.read(name)

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        self.injector.check("read_range", name)
        return self.inner.read_range(name, offset, length)

    def write(self, name: str, data: bytes) -> None:
        self.injector.check("write", name)
        self.inner.write(name, data)

    def append(self, name: str, data: bytes) -> None:
        try:
            self.injector.check("append", name)
        except HardError:
            # A short write: part of the data lands before the device
            # errors out.  DiskFull takes the other branch — nothing lands.
            prefix = data[: len(data) // 2]
            if prefix:
                self.inner.append(name, prefix)
            raise
        self.inner.append(name, data)

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        self.injector.check("write_at", name)
        self.inner.write_at(name, offset, data)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def truncate(self, name: str, new_size: int) -> None:
        self.injector.check("truncate", name)
        self.inner.truncate(name, new_size)

    def fsync(self, name: str) -> None:
        self.injector.check("fsync", name)
        self.inner.fsync(name)

    def __getattr__(self, attr: str):
        # Simulation extras (crash, corrupt, durable_names, …) pass through.
        return getattr(self.inner, attr)
