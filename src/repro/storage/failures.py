"""Failure injection for the simulated storage substrate.

Two failure classes from the paper's section 4 are injectable:

* **Transient failures** ("the system just stops"): the injector counts
  every durable disk event — each page write during an fsync and each
  metadata (directory) sync — and raises
  :class:`~repro.storage.errors.SimulatedCrash` when the scheduled event
  number is reached.  If the crash lands on a data-page write, that page is
  *torn*: its old contents are destroyed and reading it reports a hard
  error, which is exactly the disk property the paper's log recovery relies
  on ("a partially written page will report an error when it is read").

* **Hard failures** (media damage): tests mark individual pages bad via
  :meth:`SimulatedDisk.mark_bad` /
  :meth:`~repro.storage.simfs.SimFS.corrupt`; subsequent reads raise
  :class:`~repro.storage.errors.HardError`.

The crash-point sweep (:mod:`repro.sim.crashtest`) runs a workload with the
crash scheduled at event 1, 2, 3, … until the workload completes without
crashing, verifying recovery from *every* intermediate disk state.
"""

from __future__ import annotations

import threading

from repro.storage.errors import SimulatedCrash


class FailureInjector:
    """Schedules a crash at the Nth durable disk event.

    ``crash_at_event`` counts from 1; ``None`` disables crashing.  The event
    counter keeps running across crashes so a harness can inspect how many
    events a full run takes (run once with no schedule, read
    :attr:`events_seen`, then sweep 1..events_seen).
    """

    def __init__(self, crash_at_event: int | None = None, tear: bool = True) -> None:
        if crash_at_event is not None and crash_at_event < 1:
            raise ValueError("crash_at_event counts from 1")
        self.crash_at_event = crash_at_event
        #: whether a crash landing on a data-page write destroys that page
        #: (True: crash mid-write; False: crash just after the write).
        self.tear = tear
        self.events_seen = 0
        self.crashed = False
        self._lock = threading.Lock()

    def on_event(self, detail: str = "") -> None:
        """Record one durable disk event; crash if this is the scheduled one.

        Returns normally if no crash is scheduled for this event.  The
        caller (the simulated disk) is responsible for tearing the page it
        was writing *before* calling this, so the crash leaves the torn
        state behind.
        """
        with self._lock:
            self.events_seen += 1
            event = self.events_seen
            due = self.crash_at_event is not None and event == self.crash_at_event
            if due:
                self.crashed = True
        if due:
            raise SimulatedCrash(event, detail)

    def crash_is_due_next(self) -> bool:
        """Whether the next event is the scheduled crash (peek, no count)."""
        with self._lock:
            return (
                self.crash_at_event is not None
                and self.events_seen + 1 == self.crash_at_event
            )

    def disarm(self) -> None:
        """Cancel any scheduled crash (used after recovery completes)."""
        with self._lock:
            self.crash_at_event = None


class NullInjector(FailureInjector):
    """An injector that never crashes (the default)."""

    def __init__(self) -> None:
        super().__init__(crash_at_event=None)
