"""Errors raised by the storage substrate.

The hierarchy mirrors the paper's failure taxonomy (section 4):

* *transient* failures — the system just stops.  The simulated form is
  :class:`SimulatedCrash`, which deliberately derives from
  ``BaseException`` so that no ``except Exception`` handler in library or
  application code can accidentally swallow a crash and keep running past
  the point where the machine "halted".

* *hard* failures — some data on disk has become unreadable.  The disk is
  assumed (as in the paper) to return either correct data or an error,
  never silent corruption, so hard failures surface as :class:`HardError`
  on read.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage substrate errors."""


class FileNotFound(StorageError):
    """The named file does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no such file: {name!r}")
        self.name = name


class FileExists(StorageError):
    """The named file already exists and the operation forbids overwrite."""

    def __init__(self, name: str) -> None:
        super().__init__(f"file exists: {name!r}")
        self.name = name


class InvalidFileName(StorageError):
    """The file name is empty or contains a path separator."""

    def __init__(self, name: str) -> None:
        super().__init__(f"invalid file name: {name!r}")
        self.name = name


class HandleClosed(StorageError):
    """An operation was attempted on a closed file handle."""


class MediaError(StorageError):
    """Base class for *runtime media failures*: the device misbehaved.

    This is the retry-and-degrade class: the database core treats any
    ``MediaError`` on its log or checkpoint path as potentially transient
    (bounded retries) and, when it persists, seals the log and degrades to
    read-only service instead of crashing.  Protocol errors
    (:class:`FileNotFound`, :class:`InvalidFileName`, …) deliberately sit
    outside this class — retrying those would mask bugs.
    """


class HardError(MediaError):
    """A hard (media) failure: the addressed data is unreadable.

    The paper assumes disks report an error rather than returning corrupt
    data — including for a page that was only partially written before a
    crash.  Recovery code catches this to discard torn log entries and, for
    checkpoint damage, to fall back to an older checkpoint or a replica.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(f"hard disk error: {detail}")
        self.detail = detail


class DiskFull(MediaError):
    """The device has no space left (the ``ENOSPC`` class of failures).

    Raised by :class:`~repro.storage.simfs.SimFS` when its capacity budget
    is exhausted, by :class:`~repro.storage.failures.FaultyFS` when a
    disk-full fault is injected, and by :class:`~repro.storage.localfs.\
LocalFS` when the real OS reports ``ENOSPC``/``EDQUOT``.
    """

    def __init__(self, detail: str) -> None:
        super().__init__(f"disk full: {detail}")
        self.detail = detail


class SimulatedCrash(BaseException):
    """The simulated machine halted (transient failure).

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so it
    propagates through ordinary error handling: after a crash nothing may
    run except the harness that owns the simulation, which quiesces the
    file system (discarding unsynced state) and restarts the database.
    """

    def __init__(self, event_number: int, detail: str = "") -> None:
        message = f"simulated crash at disk event #{event_number}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)
        self.event_number = event_number
        self.detail = detail
