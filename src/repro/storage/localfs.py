"""A real-directory implementation of the file system interface.

``LocalFS`` makes the library usable as an actual embedded database: the
checkpoint, log and version files land in an ordinary directory, appends
are real appends, ``fsync`` is :func:`os.fsync`, and rename atomicity is
the host file system's.  It implements exactly the same interface as
:class:`~repro.storage.simfs.SimFS`, so the database core cannot tell the
difference; what it cannot do is simulate crashes or inject media errors —
those experiments require ``SimFS`` (or :class:`~repro.storage.failures.\
FaultyFS` layered over this class).

OS-level failures never escape as raw :class:`OSError`: every data
operation maps them onto the documented typed surface — ``ENOSPC``/
``EDQUOT`` become :class:`~repro.storage.errors.DiskFull`, ``EIO`` becomes
:class:`~repro.storage.errors.HardError`, anything else becomes
:class:`~repro.storage.errors.MediaError` — so the database core's
retry-and-degrade machinery works identically over real disks.
"""

from __future__ import annotations

import errno
import os
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.storage.errors import (
    DiskFull,
    FileExists,
    FileNotFound,
    HardError,
    InvalidFileName,
    MediaError,
    StorageError,
)
from repro.storage.interface import FileSystem
from repro.storage.latency import IoMeter

_FULL_ERRNOS = frozenset(
    code
    for code in (
        getattr(errno, "ENOSPC", None),
        getattr(errno, "EDQUOT", None),
    )
    if code is not None
)


def _classify_os_error(exc: OSError, op: str, name: str) -> StorageError:
    """Map one raw ``OSError`` onto the typed storage-error surface."""
    detail = f"{op} {name!r}: {exc.strerror or exc}"
    if exc.errno in _FULL_ERRNOS:
        return DiskFull(detail)
    if exc.errno == errno.EIO:
        return HardError(detail)
    return MediaError(f"{detail} (errno {exc.errno})")


class LocalFS(FileSystem):
    """Flat-directory file system over a real OS directory.

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` as ``registry`` to
    meter the real I/O this file system performs (``storage_*`` series:
    bytes moved, call counts, fsync latency).
    """

    def __init__(self, directory: str, registry=None) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        self._meter = IoMeter(registry) if registry is not None else None

    def _path(self, name: str) -> str:
        if not name or "/" in name or "\x00" in name or name in (".", ".."):
            raise InvalidFileName(name)
        return os.path.join(self.directory, name)

    @contextmanager
    def _mapped(self, op: str, name: str) -> Iterator[None]:
        """Translate OS errors; ``FileNotFoundError`` keeps its own type."""
        try:
            yield
        except FileNotFoundError:
            raise FileNotFound(name) from None
        except OSError as exc:
            raise _classify_os_error(exc, op, name) from exc

    # -- namespace -----------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        path = self._path(name)
        with self._lock:
            if exclusive:
                # O_EXCL at the OS level: atomic against other processes,
                # unlike an exists() check followed by open().
                try:
                    with open(path, "xb"):
                        pass
                except FileExistsError:
                    raise FileExists(name) from None
                except OSError as exc:
                    raise _classify_os_error(exc, "create", name) from exc
                return
            with self._mapped("create", name):
                with open(path, "wb"):
                    pass

    def exists(self, name: str) -> bool:
        return os.path.isfile(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        with self._lock:
            with self._mapped("delete", name):
                os.unlink(path)

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            with self._mapped("rename", src):
                os.replace(self._path(src), self._path(dst))

    def list_names(self) -> list[str]:
        with self._lock:
            return sorted(
                entry
                for entry in os.listdir(self.directory)
                if os.path.isfile(os.path.join(self.directory, entry))
            )

    def fsync_dir(self) -> None:
        with self._mapped("fsync_dir", self.directory):
            fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)

    # -- data ------------------------------------------------------------------

    def read(self, name: str) -> bytes:
        with self._mapped("read", name):
            with open(self._path(name), "rb") as f:
                data = f.read()
        if self._meter is not None:
            self._meter.note_read(len(data))
        return data

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        with self._mapped("read", name):
            with open(self._path(name), "rb") as f:
                f.seek(offset)
                data = f.read(length)
        if self._meter is not None:
            self._meter.note_read(len(data))
        return data

    def write(self, name: str, data: bytes) -> None:
        with self._mapped("write", name):
            with open(self._path(name), "wb") as f:
                f.write(data)
        if self._meter is not None:
            self._meter.note_write(len(data))

    def append(self, name: str, data: bytes) -> None:
        with self._mapped("append", name):
            with open(self._path(name), "ab") as f:
                f.write(data)
        if self._meter is not None:
            self._meter.note_write(len(data))

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset")
        path = self._path(name)
        with self._lock:
            with self._mapped("write_at", name):
                mode = "r+b" if os.path.exists(path) else "w+b"
                with open(path, mode) as f:
                    f.seek(0, os.SEEK_END)
                    size = f.tell()
                    if size < offset:
                        f.write(bytes(offset - size))
                    f.seek(offset)
                    f.write(data)
        if self._meter is not None:
            self._meter.note_write(len(data))

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise FileNotFound(name) from None

    def truncate(self, name: str, new_size: int) -> None:
        if new_size < 0:
            raise ValueError("negative size")
        path = self._path(name)
        if not os.path.isfile(path):
            raise FileNotFound(name)
        if new_size > os.path.getsize(path):
            raise StorageError(
                f"cannot truncate {name!r} to {new_size}: larger than file"
            )
        with self._mapped("truncate", name):
            os.truncate(path, new_size)

    def fsync(self, name: str) -> None:
        path = self._path(name)
        with self._mapped("fsync", name):
            fd = os.open(path, os.O_RDONLY)
        if self._meter is not None:
            with self._meter.time_fsync():
                self._fsync_fd(fd, name)
        else:
            self._fsync_fd(fd, name)

    def _fsync_fd(self, fd: int, name: str) -> None:
        with self._mapped("fsync", name):
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        # Make the directory entry durable too, as the paper's
        # "appropriate number of fsync calls" requires.
        self.fsync_dir()
