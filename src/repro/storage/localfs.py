"""A real-directory implementation of the file system interface.

``LocalFS`` makes the library usable as an actual embedded database: the
checkpoint, log and version files land in an ordinary directory, appends
are real appends, ``fsync`` is :func:`os.fsync`, and rename atomicity is
the host file system's.  It implements exactly the same interface as
:class:`~repro.storage.simfs.SimFS`, so the database core cannot tell the
difference; what it cannot do is simulate crashes or inject media errors —
those experiments require ``SimFS``.
"""

from __future__ import annotations

import os
import threading

from repro.storage.errors import (
    FileExists,
    FileNotFound,
    InvalidFileName,
    StorageError,
)
from repro.storage.interface import FileSystem
from repro.storage.latency import IoMeter


class LocalFS(FileSystem):
    """Flat-directory file system over a real OS directory.

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` as ``registry`` to
    meter the real I/O this file system performs (``storage_*`` series:
    bytes moved, call counts, fsync latency).
    """

    def __init__(self, directory: str, registry=None) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.RLock()
        self._meter = IoMeter(registry) if registry is not None else None

    def _path(self, name: str) -> str:
        if not name or "/" in name or "\x00" in name or name in (".", ".."):
            raise InvalidFileName(name)
        return os.path.join(self.directory, name)

    # -- namespace -----------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        path = self._path(name)
        with self._lock:
            if exclusive and os.path.exists(path):
                raise FileExists(name)
            with open(path, "wb"):
                pass

    def exists(self, name: str) -> bool:
        return os.path.isfile(self._path(name))

    def delete(self, name: str) -> None:
        path = self._path(name)
        with self._lock:
            try:
                os.unlink(path)
            except FileNotFoundError:
                raise FileNotFound(name) from None

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            try:
                os.replace(self._path(src), self._path(dst))
            except FileNotFoundError:
                raise FileNotFound(src) from None

    def list_names(self) -> list[str]:
        with self._lock:
            return sorted(
                entry
                for entry in os.listdir(self.directory)
                if os.path.isfile(os.path.join(self.directory, entry))
            )

    def fsync_dir(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- data ------------------------------------------------------------------

    def read(self, name: str) -> bytes:
        try:
            with open(self._path(name), "rb") as f:
                data = f.read()
        except FileNotFoundError:
            raise FileNotFound(name) from None
        if self._meter is not None:
            self._meter.note_read(len(data))
        return data

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        try:
            with open(self._path(name), "rb") as f:
                f.seek(offset)
                data = f.read(length)
        except FileNotFoundError:
            raise FileNotFound(name) from None
        if self._meter is not None:
            self._meter.note_read(len(data))
        return data

    def write(self, name: str, data: bytes) -> None:
        with open(self._path(name), "wb") as f:
            f.write(data)
        if self._meter is not None:
            self._meter.note_write(len(data))

    def append(self, name: str, data: bytes) -> None:
        with open(self._path(name), "ab") as f:
            f.write(data)
        if self._meter is not None:
            self._meter.note_write(len(data))

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset")
        path = self._path(name)
        mode = "r+b" if os.path.exists(path) else "w+b"
        with open(path, mode) as f:
            f.seek(0, os.SEEK_END)
            size = f.tell()
            if size < offset:
                f.write(bytes(offset - size))
            f.seek(offset)
            f.write(data)

    def size(self, name: str) -> int:
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            raise FileNotFound(name) from None

    def truncate(self, name: str, new_size: int) -> None:
        if new_size < 0:
            raise ValueError("negative size")
        path = self._path(name)
        if not os.path.isfile(path):
            raise FileNotFound(name)
        if new_size > os.path.getsize(path):
            raise StorageError(
                f"cannot truncate {name!r} to {new_size}: larger than file"
            )
        os.truncate(path, new_size)

    def fsync(self, name: str) -> None:
        path = self._path(name)
        try:
            fd = os.open(path, os.O_RDONLY)
        except FileNotFoundError:
            raise FileNotFound(name) from None
        if self._meter is not None:
            with self._meter.time_fsync():
                self._fsync_fd(fd)
        else:
            self._fsync_fd(fd)

    def _fsync_fd(self, fd: int) -> None:
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        # Make the directory entry durable too, as the paper's
        # "appropriate number of fsync calls" requires.
        self.fsync_dir()
