"""Storage substrate: disks, file systems, latency models, failure injection.

The database core (:mod:`repro.core`) is written against the
:class:`FileSystem` interface and runs identically over:

* :class:`SimFS` — a crash-faithful simulated file system over
  :class:`SimulatedDisk`, with modelled 1987 disk timing, scheduled
  crashes, torn page writes and injectable hard (media) errors; and
* :class:`LocalFS` — a real directory, for embedded use.
"""

from repro.storage.disk import DiskStats, SimulatedDisk
from repro.storage.errors import (
    DiskFull,
    FileExists,
    FileNotFound,
    HandleClosed,
    HardError,
    InvalidFileName,
    MediaError,
    SimulatedCrash,
    StorageError,
)
from repro.storage.failures import (
    FailureInjector,
    FaultyFS,
    MediaFaultInjector,
    NullInjector,
)
from repro.storage.interface import AppendHandle, FileSystem, ReadHandle
from repro.storage.latency import (
    MODERN_SSD,
    NULL_DISK_MODEL,
    RA81_1987,
    DiskModel,
    ThrottledFS,
)
from repro.storage.localfs import LocalFS
from repro.storage.prefix import PrefixedFS
from repro.storage.simfs import SimFS

__all__ = [
    "AppendHandle",
    "DiskFull",
    "DiskModel",
    "DiskStats",
    "FailureInjector",
    "FaultyFS",
    "FileExists",
    "FileNotFound",
    "FileSystem",
    "HandleClosed",
    "HardError",
    "InvalidFileName",
    "LocalFS",
    "MediaError",
    "MediaFaultInjector",
    "MODERN_SSD",
    "NULL_DISK_MODEL",
    "NullInjector",
    "PrefixedFS",
    "RA81_1987",
    "ThrottledFS",
    "ReadHandle",
    "SimFS",
    "SimulatedCrash",
    "SimulatedDisk",
    "StorageError",
]
