"""A simulated page-addressed disk.

This is the bottom of the storage substrate: a flat array of fixed-size
pages with

* a free-page allocator,
* modelled timing (charged to a :class:`~repro.sim.clock.SimClock` through a
  :class:`~repro.storage.latency.DiskModel`),
* torn-write behaviour on a scheduled crash (the page being written is
  destroyed and subsequently reads as a hard error — the disk property the
  paper's log recovery depends on), and
* hard-error injection for media-failure experiments.

The simulated file system (:class:`~repro.storage.simfs.SimFS`) stores file
extents here; everything on this disk is by definition durable — volatile
(unsynced) state lives in the file system layer, so "crash" at this layer
needs no action beyond abandoning the in-flight write.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.sim.clock import Clock, SimClock
from repro.storage.errors import DiskFull, HardError, StorageError
from repro.storage.failures import FailureInjector, NullInjector
from repro.storage.latency import DiskModel, RA81_1987

#: Pattern filling a torn page; never produced by the pickle or log encoders,
#: but recovery must not rely on that — torn pages also read as errors.
_TORN_FILL = b"\xde"


@dataclass
class DiskStats:
    """Counters for disk traffic; the basis of the E7 comparison."""

    page_reads: int = 0
    page_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_calls: int = 0
    write_calls: int = 0
    #: pages destroyed by a crash landing mid-write
    pages_torn: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "page_reads": self.page_reads,
                "page_writes": self.page_writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "read_calls": self.read_calls,
                "write_calls": self.write_calls,
                "pages_torn": self.pages_torn,
            }

    def reset(self) -> None:
        with self._lock:
            self.page_reads = 0
            self.page_writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.read_calls = 0
            self.write_calls = 0
            self.pages_torn = 0


class SimulatedDisk:
    """Fixed-size-page store with modelled latency and failure injection."""

    def __init__(
        self,
        model: DiskModel = RA81_1987,
        clock: Clock | None = None,
        injector: FailureInjector | None = None,
        capacity_pages: int | None = None,
    ) -> None:
        self.model = model
        self.clock = clock if clock is not None else SimClock()
        self.injector = injector if injector is not None else NullInjector()
        #: total pages the device can hold; ``None`` means unbounded.
        self.capacity_pages = capacity_pages
        self.stats = DiskStats()
        self._pages: dict[int, bytes] = {}
        self._bad: set[int] = set()
        self._free: list[int] = []
        self._next_page = 0
        self._lock = threading.RLock()

    @property
    def page_size(self) -> int:
        return self.model.page_size

    # -- allocation --------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a fresh page id (contents undefined until written).

        Raises :class:`DiskFull` when a capacity budget is configured and
        exhausted; freed pages are always reusable.
        """
        with self._lock:
            if self._free:
                return self._free.pop()
            if (
                self.capacity_pages is not None
                and self._next_page >= self.capacity_pages
            ):
                raise DiskFull(
                    f"all {self.capacity_pages} pages of the simulated disk "
                    f"are in use"
                )
            page_id = self._next_page
            self._next_page += 1
            return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the allocator; clears any bad mark."""
        with self._lock:
            self._pages.pop(page_id, None)
            self._bad.discard(page_id)
            self._free.append(page_id)

    def pages_in_use(self) -> int:
        with self._lock:
            return self._next_page - len(self._free)

    # -- I/O ----------------------------------------------------------------

    def write_pages(
        self, writes: list[tuple[int, bytes]], continuation: bool = False
    ) -> None:
        """Durably write a batch of ``(page_id, data)`` pairs in order.

        The batch is charged as one positioning delay plus a sequential
        transfer — this is how the file system expresses "flush these dirty
        pages of one file"; ``continuation=True`` skips the positioning
        delay entirely (the batch continues an earlier one).  Each page
        write is a durable disk event for the failure injector; if the
        scheduled crash lands on a page of this batch, the earlier pages
        of the batch are durable, the page in flight is torn (old contents
        destroyed, reads as an error), and the later pages are untouched.
        """
        if not writes:
            return
        total_bytes = 0
        for index, (page_id, data) in enumerate(writes):
            if len(data) > self.page_size:
                raise StorageError(
                    f"page write of {len(data)} bytes exceeds page size {self.page_size}"
                )
            self.clock.advance(
                self.model.io_seconds(1, len(data), sequential=continuation or index > 0)
            )
            total_bytes += len(data)
            with self._lock:
                if self.injector.crash_is_due_next() and self.injector.tear:
                    # The in-flight page is destroyed: old content gone,
                    # new content incomplete, reads report an error.
                    self._pages[page_id] = _TORN_FILL * self.page_size
                    self._bad.add(page_id)
                    with self.stats._lock:
                        self.stats.pages_torn += 1
                    self.injector.on_event(f"torn write of page {page_id}")
                    raise AssertionError("unreachable: on_event must crash")
                self._pages[page_id] = bytes(data)
                self._bad.discard(page_id)
            # With tear disabled, a crash scheduled on this event fires
            # here, *after* the page write completed cleanly.
            self.injector.on_event(f"page write {page_id}")
        with self.stats._lock:
            self.stats.page_writes += len(writes)
            self.stats.bytes_written += total_bytes
            self.stats.write_calls += 1

    def read_page(self, page_id: int) -> bytes:
        """Read one page; raises :class:`HardError` for damaged pages."""
        return self.read_pages([page_id])[0]

    def read_pages(
        self, page_ids: list[int], continuation: bool = False
    ) -> list[bytes]:
        """Read a batch of pages, charged as one sequential transfer.

        ``continuation=True`` skips the positioning delay entirely — the
        batch continues an earlier sequential read (a streaming scan).
        """
        if not page_ids:
            return []
        out: list[bytes] = []
        nbytes = 0
        for index, page_id in enumerate(page_ids):
            self.clock.advance(
                self.model.io_seconds(
                    1, self.page_size, sequential=continuation or index > 0
                )
            )
            with self._lock:
                if page_id in self._bad:
                    raise HardError(f"page {page_id} is unreadable")
                if page_id not in self._pages:
                    raise StorageError(f"page {page_id} was never written")
                data = self._pages[page_id]
            out.append(data)
            nbytes += len(data)
        with self.stats._lock:
            self.stats.page_reads += len(page_ids)
            self.stats.bytes_read += nbytes
            self.stats.read_calls += 1
        return out

    def metadata_sync(self) -> None:
        """Charge and count one directory-metadata write.

        A crash scheduled on this event fires before the caller applies the
        durable metadata change, modelling a directory update that never
        reached the disk.
        """
        self.clock.advance(self.model.io_seconds(1, self.page_size))
        self.injector.on_event("metadata sync")
        with self.stats._lock:
            self.stats.page_writes += 1
            self.stats.write_calls += 1

    # -- failure injection ---------------------------------------------------

    def mark_bad(self, page_id: int) -> None:
        """Inject a hard (media) error on ``page_id``."""
        with self._lock:
            self._bad.add(page_id)

    def is_bad(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._bad

    def repair(self, page_id: int, data: bytes) -> None:
        """Replace a damaged page (models sector reassignment + restore)."""
        if len(data) > self.page_size:
            raise StorageError("repair data exceeds page size")
        with self._lock:
            self._pages[page_id] = bytes(data)
            self._bad.discard(page_id)
