"""A crash-faithful simulated file system.

``SimFS`` implements the :class:`~repro.storage.interface.FileSystem`
contract over a :class:`~repro.storage.disk.SimulatedDisk` with Unix-like
durability semantics, which is what lets the test suite crash the database
at *every* intermediate disk state and check the paper's recovery claims:

* File contents live in a volatile buffer (the "buffer cache") until
  :meth:`fsync` flushes the dirty pages to the simulated disk.  A crash
  discards everything volatile.

* An fsync flushes only the dirty tail for append-only files (one page for
  a typical log entry — the paper's "one disk write per update") but the
  whole file after an overwrite.

* Flushing rewrites the file's last partial page **in place**.  If a crash
  tears that write, previously durable bytes in that page are destroyed and
  read back as a hard error — the exact hazard the paper's log format
  (length prefix + error-reporting pages) is designed to detect.

* Namespace operations (create/delete/rename) are volatile until
  :meth:`fsync_dir`; :meth:`fsync` of a file also makes that file's own
  directory entry durable.  Rename is atomic.

* :meth:`corrupt` injects a hard (media) error on the page containing a
  given durable offset, for the section-4 hard-failure experiments.

Reads are served from the volatile buffer when present (enquiries never
touch the disk, as the paper stresses); after a crash the first read of a
range fetches pages from the disk, charging modelled I/O time — which is
why simulated restart time is dominated by checkpoint size and log length,
as in the paper.
"""

from __future__ import annotations

import threading

from repro.sim.clock import Clock, SimClock
from repro.storage.disk import SimulatedDisk
from repro.storage.errors import (
    FileExists,
    FileNotFound,
    HardError,
    InvalidFileName,
    StorageError,
)
from repro.storage.failures import FailureInjector, NullInjector
from repro.storage.interface import FileSystem
from repro.storage.latency import DiskModel, RA81_1987


class _Inode:
    """Durable extent of one file: ordered disk pages plus a byte size."""

    __slots__ = ("pages", "size")

    def __init__(self) -> None:
        self.pages: list[int] = []
        self.size: int = 0


class _File:
    """Volatile view of one file."""

    __slots__ = (
        "inode",
        "buffer",
        "synced_size",
        "prefix_dirty",
        "dirty_pages",
        "page_cache",
        "last_faulted_page",
        "shadow_bad",
    )

    def __init__(self, inode: _Inode, buffer: bytearray | None) -> None:
        self.inode = inode
        #: full current contents when known; None right after a crash
        self.buffer = buffer
        #: how many leading bytes of ``buffer`` match the durable content
        self.synced_size = inode.size
        #: True when the file was wholly rewritten since the last flush
        self.prefix_dirty = False
        #: page indexes touched by in-place writes since the last flush
        self.dirty_pages: set[int] = set()
        #: post-crash cache of clean pages read back from disk
        self.page_cache: dict[int, bytes] = {}
        #: last page index faulted in (sequential-scan detection)
        self.last_faulted_page: int | None = None
        #: buffer pages standing in for unreadable disk pages: their
        #: placeholder contents must never be read or partially flushed
        self.shadow_bad: set[int] = set()

    def current_size(self) -> int:
        if self.buffer is not None:
            return len(self.buffer)
        return self.inode.size


class SimFS(FileSystem):
    """Simulated flat-directory file system with crash semantics."""

    def __init__(
        self,
        model: DiskModel = RA81_1987,
        clock: Clock | None = None,
        injector: FailureInjector | None = None,
        capacity_pages: int | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.injector = injector if injector is not None else NullInjector()
        self.disk = SimulatedDisk(
            model=model,
            clock=self.clock,
            injector=self.injector,
            capacity_pages=capacity_pages,
        )
        self._files: dict[str, _File] = {}
        self._durable: dict[str, _Inode] = {}
        self._lock = threading.RLock()
        self.fsync_calls = 0
        self.crashes = 0

    @property
    def page_size(self) -> int:
        return self.disk.page_size

    # -- namespace -----------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        self._check_name(name)
        with self._lock:
            if name in self._files:
                if exclusive:
                    raise FileExists(name)
                self._files[name].buffer = bytearray()
                self._files[name].prefix_dirty = True
                return
            self._files[name] = _File(_Inode(), bytearray())

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._files

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._files:
                raise FileNotFound(name)
            del self._files[name]

    def rename(self, src: str, dst: str) -> None:
        self._check_name(dst)
        with self._lock:
            if src not in self._files:
                raise FileNotFound(src)
            self._files[dst] = self._files.pop(src)

    def list_names(self) -> list[str]:
        with self._lock:
            return sorted(self._files)

    def fsync_dir(self) -> None:
        """Make the whole namespace durable with one metadata write."""
        with self._lock:
            self.disk.metadata_sync()
            self._durable = {name: f.inode for name, f in self._files.items()}
            self._collect_unreferenced()

    # -- data ------------------------------------------------------------------

    def read(self, name: str) -> bytes:
        with self._lock:
            f = self._get(name)
            return bytes(self._read_range(f, 0, f.current_size()))

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        with self._lock:
            f = self._get(name)
            end = min(offset + length, f.current_size())
            if end <= offset:
                return b""
            return bytes(self._read_range(f, offset, end - offset))

    def write(self, name: str, data: bytes) -> None:
        self._check_name(name)
        with self._lock:
            f = self._files.get(name)
            if f is None:
                f = _File(_Inode(), bytearray())
                self._files[name] = f
            f.buffer = bytearray(data)
            f.prefix_dirty = True
            f.page_cache.clear()
            f.shadow_bad.clear()  # a whole-file rewrite replaces everything

    def append(self, name: str, data: bytes) -> None:
        self._check_name(name)
        with self._lock:
            f = self._files.get(name)
            if f is None:
                f = _File(_Inode(), bytearray())
                self._files[name] = f
            if f.buffer is None:
                self._materialize(f)
            assert f.buffer is not None
            if data and len(f.buffer) % self.page_size:
                tail_page = (len(f.buffer) - 1) // self.page_size
                if tail_page in f.shadow_bad:
                    # Appending requires read-modify-write of the partial
                    # tail page, which is unreadable.
                    raise HardError(
                        f"cannot append: tail page {tail_page} is unreadable"
                    )
            f.buffer.extend(data)

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        """In-place overwrite; only the touched pages are flushed."""
        if offset < 0:
            raise ValueError("negative offset")
        self._check_name(name)
        with self._lock:
            f = self._files.get(name)
            if f is None:
                f = _File(_Inode(), bytearray())
                self._files[name] = f
            if f.buffer is None:
                self._materialize(f)
            assert f.buffer is not None
            end = offset + len(data)
            new_size = max(len(f.buffer), end)
            first = offset // self.page_size
            last = (end - 1) // self.page_size if end else first
            healed = []
            for index in range(first, last + 1):
                if index in f.shadow_bad:
                    page_start = index * self.page_size
                    page_end = min((index + 1) * self.page_size, new_size)
                    if offset <= page_start and end >= page_end:
                        healed.append(index)  # fully rewritten below
                    else:
                        raise HardError(
                            f"partial in-place write to unreadable page {index}"
                        )
            if len(f.buffer) < end:
                f.buffer.extend(bytes(end - len(f.buffer)))
            f.buffer[offset:end] = data
            for index in healed:
                f.shadow_bad.discard(index)
            f.dirty_pages.update(range(first, last + 1))

    def size(self, name: str) -> int:
        with self._lock:
            return self._get(name).current_size()

    def truncate(self, name: str, new_size: int) -> None:
        """Discard bytes beyond ``new_size`` (volatile until a later flush).

        Used by log recovery to cut a torn tail off the log.  Truncation to
        a prefix of the durable content is free of disk writes: the durable
        inode keeps its old size until an append is flushed, and a crash in
        between simply makes recovery recompute the same truncation.
        """
        if new_size < 0:
            raise ValueError("negative size")
        with self._lock:
            f = self._get(name)
            if new_size > f.current_size():
                raise StorageError(
                    f"cannot truncate {name!r} to {new_size}: "
                    f"larger than current size {f.current_size()}"
                )
            content = self._read_range(f, 0, new_size)
            f.buffer = bytearray(content)
            f.page_cache.clear()
            f.shadow_bad.clear()  # the read above proved the prefix is clean
            if new_size <= f.synced_size and not f.prefix_dirty:
                f.synced_size = new_size
            else:
                f.prefix_dirty = True

    def fsync(self, name: str) -> None:
        """Flush dirty pages; also make this file's name durable.

        This is where simulated crashes land: the disk's page writes are
        the injector's events, and a torn write destroys the page in
        flight (including any previously durable bytes sharing it).
        """
        with self._lock:
            f = self._get(name)
            self.fsync_calls += 1
            if f.buffer is not None:
                self._flush(f)
            if self._durable.get(name) is not f.inode:
                self.disk.metadata_sync()
                self._durable[name] = f.inode

    # -- crash / failure injection -----------------------------------------------

    def crash(self) -> None:
        """The machine halts: all volatile state is discarded.

        After this, the file system presents exactly what had been made
        durable — the state a restart sequence must recover from.
        """
        with self._lock:
            self.crashes += 1
            # One volatile view per inode: after a rename made durable by
            # fsync(new-name) but not fsync_dir, the old directory entry
            # may survive too, and both names must then alias the same
            # file — a write through one is visible through the other.
            views: dict[int, _File] = {}
            self._files = {}
            for name, inode in self._durable.items():
                f = views.get(id(inode))
                if f is None:
                    f = _File(inode, None)
                    views[id(inode)] = f
                self._files[name] = f
            self._collect_unreferenced()

    def corrupt(self, name: str, offset: int) -> None:
        """Inject a hard error on the durable page containing ``offset``."""
        with self._lock:
            inode = self._durable.get(name)
            if inode is None:
                raise FileNotFound(name)
            index = offset // self.page_size
            if not 0 <= index < len(inode.pages):
                raise StorageError(
                    f"offset {offset} beyond durable size {inode.size} of {name!r}"
                )
            self.disk.mark_bad(inode.pages[index])

    def durable_names(self) -> list[str]:
        """The namespace a crash would leave behind (for tests)."""
        with self._lock:
            return sorted(self._durable)

    def durable_size(self, name: str) -> int:
        with self._lock:
            inode = self._durable.get(name)
            if inode is None:
                raise FileNotFound(name)
            return inode.size

    # -- internals -----------------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if not name or "/" in name or "\x00" in name:
            raise InvalidFileName(name)

    def _get(self, name: str) -> _File:
        f = self._files.get(name)
        if f is None:
            raise FileNotFound(name)
        return f

    def _read_range(self, f: _File, offset: int, length: int) -> bytes:
        """Read from the buffer cache, faulting pages from disk if needed."""
        if f.buffer is not None:
            if f.shadow_bad:
                first = offset // self.page_size
                last = max(first, (offset + length - 1) // self.page_size)
                for index in range(first, last + 1):
                    if index in f.shadow_bad:
                        raise HardError(
                            f"page {index} of the file is unreadable"
                        )
            return bytes(f.buffer[offset : offset + length])
        # Post-crash: assemble from durable pages, caching clean ones.
        end = min(offset + length, f.inode.size)
        if end <= offset:
            return b""
        first = offset // self.page_size
        last = (end - 1) // self.page_size
        missing = [
            i for i in range(first, last + 1) if i not in f.page_cache
        ]
        if missing:
            # A scan reading the file front to back pays positioning once,
            # not per call: the fault that continues exactly after the
            # previous one is a sequential transfer.
            continuation = f.last_faulted_page is not None and (
                missing[0] == f.last_faulted_page + 1
            )
            contents = self.disk.read_pages(
                [f.inode.pages[i] for i in missing], continuation=continuation
            )
            for i, content in zip(missing, contents):
                f.page_cache[i] = content
            f.last_faulted_page = missing[-1]
        chunks = []
        for i in range(first, last + 1):
            page = f.page_cache[i]
            lo = offset - i * self.page_size if i == first else 0
            hi = end - i * self.page_size if i == last else self.page_size
            chunks.append(page[lo:hi])
        return b"".join(chunks)

    def _materialize(self, f: _File) -> None:
        """Rebuild the full volatile buffer from durable pages.

        Unreadable pages get zero placeholders and are remembered in
        ``shadow_bad``: reading them still raises, and only a write
        covering the whole page heals them — a file with a torn page can
        therefore still be appended to or have other pages rewritten,
        just as on a real file system.
        """
        size = f.inode.size
        total_pages = (size + self.page_size - 1) // self.page_size
        parts: list[bytes] = []
        for index in range(total_pages):
            content = f.page_cache.get(index)
            if content is None:
                try:
                    content = self.disk.read_pages([f.inode.pages[index]])[0]
                    f.page_cache[index] = content
                except HardError:
                    content = bytes(self.page_size)
                    f.shadow_bad.add(index)
            if len(content) < self.page_size:
                content = content + bytes(self.page_size - len(content))
            parts.append(content)
        f.buffer = bytearray(b"".join(parts)[:size])
        f.synced_size = size
        f.prefix_dirty = False

    def _flush(self, f: _File) -> None:
        """Write the dirty portion of ``f.buffer`` to disk, then the inode."""
        assert f.buffer is not None
        size = len(f.buffer)
        total_pages = (size + self.page_size - 1) // self.page_size
        if f.prefix_dirty:
            # Whole-file rewrite: every page goes out, and the durable
            # size tracks the watermark from zero (a crash mid-rewrite
            # loses the old content beyond the watermark — the known
            # fragility of rewriting files in place).
            pages = list(range(total_pages))
            rewrite = True
        else:
            # Incremental: in-place dirty pages plus the appended tail
            # (whose first page is a partial-page rewrite in place).
            if size > f.synced_size:
                first_tail = f.synced_size // self.page_size
                tail = set(range(first_tail, total_pages))
            else:
                tail = set()
            pages = sorted(i for i in f.dirty_pages | tail if i < total_pages)
            rewrite = False
        if not pages:
            # No data to write, but the size may still have shrunk
            # (truncate or rewrite-to-empty): that is an inode update,
            # durable after one metadata write — as ftruncate+fsync is.
            f.dirty_pages.clear()
            if f.inode.size != size:
                self.disk.metadata_sync()
                f.inode.size = size
            f.synced_size = size
            f.prefix_dirty = False
            return
        # The extent only ever grows; shrinking it here could free pages
        # still holding durable data if a crash interrupted the flush.
        # Unreferenced pages are reclaimed when the whole inode dies.
        while len(f.inode.pages) < total_pages:
            f.inode.pages.append(self.disk.allocate())
        # Pages go out one at a time, and the durable size advances with
        # each page — as on real Unix, where the inode can reach the disk
        # covering blocks whose data write then tears.  A crash therefore
        # leaves a *visible* partial (possibly torn) tail, which is
        # precisely what the log format's length+checksum must detect.
        # Contiguous page runs are charged as sequential transfers;
        # scattered in-place writes pay positioning per run.
        previous = None
        for i in pages:
            lo = i * self.page_size
            chunk = bytes(f.buffer[lo : lo + self.page_size])
            watermark = min(size, lo + self.page_size)
            if rewrite:
                f.inode.size = watermark
            else:
                f.inode.size = max(f.inode.size, watermark)
            self.disk.write_pages(
                [(f.inode.pages[i], chunk)],
                continuation=previous is not None and i == previous + 1,
            )
            previous = i
        f.inode.size = size
        f.synced_size = size
        f.prefix_dirty = False
        f.dirty_pages.clear()
        f.page_cache.clear()

    def _collect_unreferenced(self) -> None:
        """Free disk pages no longer reachable from any live inode."""
        referenced: set[int] = set()
        for f in self._files.values():
            referenced.update(f.inode.pages)
        for inode in self._durable.values():
            referenced.update(inode.pages)
        for page_id in self._allocated_pages():
            if page_id not in referenced:
                self.disk.free(page_id)

    def _allocated_pages(self) -> set[int]:
        with self.disk._lock:
            allocated = set(range(self.disk._next_page)) - set(self.disk._free)
        return allocated
