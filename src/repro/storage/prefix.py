"""A namespace adapter: many databases in one flat directory.

``PrefixedFS`` exposes the :class:`FileSystem` interface over a slice of
another file system's namespace: every name gains a ``prefix.`` on the
way down and loses it on the way up.  This is what lets a
:class:`~repro.core.sharding.ShardedDatabase` keep N independent
checkpoint/log/version triples in a single directory, each invisible to
the others' version-file protocol.
"""

from __future__ import annotations

from repro.storage.errors import InvalidFileName
from repro.storage.interface import FileSystem


class PrefixedFS(FileSystem):
    """A view of ``base`` restricted to names starting ``prefix.``."""

    def __init__(self, base: FileSystem, prefix: str) -> None:
        if not prefix or "/" in prefix or "." in prefix:
            raise InvalidFileName(prefix)
        self.base = base
        self.prefix = prefix
        self._full = f"{prefix}."
        # The simulated substrate's attributes pass through so databases
        # built on a prefixed view still find the clock and page size.
        self.clock = getattr(base, "clock", None)
        self.page_size = getattr(base, "page_size", 512)

    def _wrap(self, name: str) -> str:
        if not name:
            raise InvalidFileName(name)
        return self._full + name

    # -- namespace -----------------------------------------------------------

    def create(self, name: str, exclusive: bool = False) -> None:
        self.base.create(self._wrap(name), exclusive)

    def exists(self, name: str) -> bool:
        return self.base.exists(self._wrap(name))

    def delete(self, name: str) -> None:
        self.base.delete(self._wrap(name))

    def rename(self, src: str, dst: str) -> None:
        self.base.rename(self._wrap(src), self._wrap(dst))

    def list_names(self) -> list[str]:
        return sorted(
            name[len(self._full):]
            for name in self.base.list_names()
            if name.startswith(self._full)
        )

    def fsync_dir(self) -> None:
        self.base.fsync_dir()

    # -- data ------------------------------------------------------------------

    def read(self, name: str) -> bytes:
        return self.base.read(self._wrap(name))

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        return self.base.read_range(self._wrap(name), offset, length)

    def write(self, name: str, data: bytes) -> None:
        self.base.write(self._wrap(name), data)

    def append(self, name: str, data: bytes) -> None:
        self.base.append(self._wrap(name), data)

    def write_at(self, name: str, offset: int, data: bytes) -> None:
        self.base.write_at(self._wrap(name), offset, data)

    def size(self, name: str) -> int:
        return self.base.size(self._wrap(name))

    def truncate(self, name: str, new_size: int) -> None:
        self.base.truncate(self._wrap(name), new_size)

    def fsync(self, name: str) -> None:
        self.base.fsync(self._wrap(name))
