"""Disk latency models.

The paper's measurements were taken on a MicroVAX II with a contemporary
winchester disk behind the Taos file system.  We model a disk I/O as

    positioning (seek + half a rotation, skipped for sequential transfers)
    + per-call file system overhead
    + per-page scheduling overhead
    + bytes / transfer-rate

and calibrate the :data:`RA81_1987` preset so that the two disk costs the
paper reports come out right:

* a small log-entry write through the file system ≈ 20 ms,
* streaming the ~1 MB pickled checkpoint to disk ≈ 5 s.

The model is charged against the simulation clock by
:class:`~repro.storage.disk.SimulatedDisk`; with a
:class:`~repro.sim.clock.WallClock` the charges are no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters for a simulated disk."""

    #: size of one disk page (the atom of tearing and hard errors)
    page_size: int = 512
    #: average seek time, seconds
    average_seek_seconds: float = 0.0
    #: time for one full platter rotation, seconds
    rotation_seconds: float = 0.0
    #: sustained transfer rate, bytes per second (0 means infinite)
    transfer_bytes_per_second: float = 0.0
    #: fixed file system / driver overhead per I/O call
    per_call_overhead_seconds: float = 0.0
    #: per-page scheduling overhead within a multi-page transfer
    per_page_overhead_seconds: float = 0.0

    def positioning_seconds(self) -> float:
        """Seek plus average rotational delay before a random transfer."""
        return self.average_seek_seconds + self.rotation_seconds / 2.0

    def transfer_seconds(self, nbytes: int) -> float:
        if self.transfer_bytes_per_second <= 0:
            return 0.0
        return nbytes / self.transfer_bytes_per_second

    def io_seconds(self, npages: int, nbytes: int, sequential: bool = False) -> float:
        """Modelled time for one I/O of ``npages`` pages / ``nbytes`` bytes.

        ``sequential`` I/Os (the continuation of a streaming transfer) skip
        the positioning delay.
        """
        if npages <= 0:
            return 0.0
        seconds = self.per_call_overhead_seconds
        if not sequential:
            seconds += self.positioning_seconds()
        seconds += npages * self.per_page_overhead_seconds
        seconds += self.transfer_seconds(nbytes)
        return seconds

    def pages_for(self, nbytes: int) -> int:
        """Number of pages needed to hold ``nbytes``."""
        if nbytes <= 0:
            return 0
        return (nbytes + self.page_size - 1) // self.page_size


#: Calibrated to the paper's MicroVAX II measurements: a one-page log write
#: costs ~20 ms and a 1 MB sequential checkpoint write costs ~5 s.
RA81_1987 = DiskModel(
    page_size=512,
    average_seek_seconds=0.010,
    rotation_seconds=0.0167,  # 3600 rpm
    transfer_bytes_per_second=230_000.0,
    per_call_overhead_seconds=0.0015,
    per_page_overhead_seconds=0.0003,
)

#: A roughly 2020s NVMe device, for what-if comparisons.
MODERN_SSD = DiskModel(
    page_size=4096,
    average_seek_seconds=0.0,
    rotation_seconds=0.0,
    transfer_bytes_per_second=2_000_000_000.0,
    per_call_overhead_seconds=0.00002,
    per_page_overhead_seconds=0.0,
)

#: A free disk for logic-only tests.
NULL_DISK_MODEL = DiskModel(page_size=512)


class ThrottledFS:
    """Charge a :class:`DiskModel`'s commit cost in *wall-clock* time.

    ``SimulatedDisk`` charges the model against a SimClock; on a real
    directory with a WallClock those charges vanish, and a container's
    page cache makes a local fsync so cheap (~0.3 ms) that a "durable
    commit" benchmark would measure Python overhead instead of the
    architecture.  This wrapper restores device fidelity the honest way:
    every ``fsync`` additionally sleeps the model's one-page commit cost,
    so a commit-bound workload behaves as it would against a disk (or a
    network-replicated volume) with that latency — and, crucially for the
    cluster benchmarks, N processes overlap their commit *waits* even on
    one CPU, exactly as N spindles would.

    Reads and in-memory writes pass through untouched — only the
    durability point is modelled, matching the paper's accounting where
    the log force is the dominant update cost.
    """

    def __init__(self, base, model: DiskModel | None = None,
                 fsync_seconds: float | None = None) -> None:
        import time

        self.base = base
        if fsync_seconds is not None:
            self._fsync_seconds = float(fsync_seconds)
        elif model is not None:
            self._fsync_seconds = model.io_seconds(1, model.page_size)
        else:
            self._fsync_seconds = 0.0
        self._sleep = time.sleep
        self.clock = getattr(base, "clock", None)
        self.page_size = getattr(base, "page_size", 512)

    def __getattr__(self, name: str):
        return getattr(self.base, name)

    def fsync(self, name: str) -> None:
        self.base.fsync(name)
        if self._fsync_seconds > 0:
            self._sleep(self._fsync_seconds)

    def fsync_dir(self) -> None:
        self.base.fsync_dir()
        if self._fsync_seconds > 0:
            self._sleep(self._fsync_seconds)


class IoMeter:
    """Routes storage-layer I/O volume and latency into a metrics registry.

    File system implementations that sit on real devices (``LocalFS``)
    attach one of these so the bytes they move and the fsyncs they issue
    appear in the unified export next to the core and RPC metrics.  All
    series share the ``storage_`` prefix.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._read_bytes = registry.counter(
            "storage_read_bytes_total", "Bytes read from storage."
        )
        self._written_bytes = registry.counter(
            "storage_write_bytes_total", "Bytes written to storage."
        )
        self._read_calls = registry.counter(
            "storage_read_calls_total", "Storage read calls."
        )
        self._write_calls = registry.counter(
            "storage_write_calls_total", "Storage write/append calls."
        )
        self._fsyncs = registry.counter(
            "storage_fsyncs_total", "fsync calls issued to storage."
        )
        self._fsync_seconds = registry.histogram(
            "storage_fsync_seconds", "Latency of storage fsync calls."
        )

    def note_read(self, nbytes: int) -> None:
        self._read_calls.inc()
        self._read_bytes.inc(nbytes)

    def note_write(self, nbytes: int) -> None:
        self._write_calls.inc()
        self._written_bytes.inc(nbytes)

    def time_fsync(self):
        """Context manager: counts the fsync and observes its latency."""
        self._fsyncs.inc()
        return self._fsync_seconds.time()
