"""Errors raised by the database core."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for database core errors."""


class DatabaseClosed(DatabaseError):
    """The database has been closed; no further operations are allowed."""


class DatabasePoisoned(DatabaseError):
    """An update failed *after* its log entry was committed.

    The in-memory state may disagree with the log, so the only safe path
    is a restart (which replays the log deterministically).  This only
    happens when an operation violates its contract: the precondition
    passed but the apply raised.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(
            "database poisoned: an operation's apply raised after its log "
            f"entry committed ({cause!r}); restart to recover"
        )
        self.cause = cause


class DatabaseDegraded(DatabaseError):
    """The database is running read-only because its disk is failing.

    A persistent media fault on the log write path seals the log: updates
    are refused with this error, while enquiries keep being served from
    virtual memory (the paper's core property).  Carries a single message
    string so the RPC layer can reconstruct it client-side.
    """


class CheckpointFailed(DatabaseError):
    """A checkpoint attempt aborted cleanly before its commit point.

    The previous version remains current, no partial version is committed,
    and a retry is scheduled; the log keeps growing in the meantime.
    """


class PreconditionFailed(DatabaseError):
    """An update's precondition rejected it; nothing was logged or applied.

    Raise this from an operation's precondition (or apply, before any
    mutation) to abort the update cleanly — e.g. "name already bound",
    "no such account", or an access-control denial.
    """


class UnknownOperation(DatabaseError):
    """An update names an operation absent from the registry.

    During replay this usually means the process registered a different
    set of operations than the one that wrote the log.
    """

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown operation {name!r}")
        self.name = name


class OperationExists(DatabaseError):
    """An operation name was registered twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"operation {name!r} is already registered")
        self.name = name


class RecoveryError(DatabaseError):
    """The restart sequence could not reconstruct a database state."""


class LogDamaged(RecoveryError):
    """The log contains damage that the configured policy will not skip."""
