"""The database: a typed structure in virtual memory, a log and checkpoints.

This class is the paper's contribution, assembled from the substrates:

* the whole database is an ordinary Python object graph (the *root*),
  organised however the application likes;
* an **enquiry** is any read-only function of the root, run under the
  shared lock — it never touches the disk;
* an **update** is a registered single-shot transaction, executed with the
  paper's three-step protocol (verify preconditions under the update lock,
  commit the pickled parameters to the log, apply to virtual memory under
  the exclusive lock);
* a **checkpoint** pickles the entire root under the update lock —
  consistent, yet never blocking enquiries — and installs it with the
  atomic version-file switch;
* **restart** recovers the newest committed state from the disk files.

Example::

    from repro.core import Database, OperationRegistry
    from repro.storage import LocalFS

    ops = OperationRegistry()

    @ops.operation("deposit")
    def deposit(root, account, amount):
        root[account] = root.get(account, 0) + amount

    db = Database(LocalFS("/tmp/bank"), initial=dict, operations=ops)
    db.update("deposit", "alice", 100)
    balance = db.enquire(lambda root: root["alice"])
    db.checkpoint()
    db.close()
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.concurrency.locks import SUELock
from repro.core.checkpoint import write_checkpoint
from repro.core.commit import DURABILITY_MODES, CommitCoordinator, CommitPolicy
from repro.core.errors import (
    CheckpointFailed,
    DatabaseClosed,
    DatabaseDegraded,
    DatabaseError,
    DatabasePoisoned,
    PreconditionFailed,
)
from repro.core.health import HealthMonitor
from repro.core.log import LogEntry, LogWriter
from repro.core.policy import CheckpointPolicy, Never
from repro.core.recovery import recover
from repro.core.stats import DatabaseStats
from repro.core.transactions import DEFAULT_OPERATIONS, OperationRegistry
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, child_span, maybe_span
from repro.core.version import (
    NEWVERSION_FILE,
    VERSION_FILE,
    checkpoint_name,
    commit_new_version,
    finalize_switch,
    logfile_name,
)
from repro.pickles import DEFAULT_REGISTRY, TypeRegistry, pickle_write
from repro.sim.clock import Clock, Stopwatch, WallClock
from repro.sim.costmodel import NULL_COST_MODEL, CostModel
from repro.storage.errors import MediaError, StorageError
from repro.storage.interface import FileSystem


class Database:
    """A small database: main-memory structure + redo log + checkpoints."""

    def __init__(
        self,
        fs: FileSystem,
        initial: Callable[[], object] = dict,
        operations: OperationRegistry | None = None,
        pickle_registry: TypeRegistry | None = None,
        clock: Clock | None = None,
        cost_model: CostModel | None = None,
        policy: CheckpointPolicy | None = None,
        keep_versions: int = 1,
        pad_log_to_page: bool = True,
        ignore_damaged_log: bool = False,
        paranoid_enquiries: bool = False,
        durability: str = "group",
        commit_policy: CommitPolicy | None = None,
        auto_open: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        spare_fs: FileSystem | None = None,
        fault_retries: int = 2,
        flight: FlightRecorder | None = None,
    ) -> None:
        """Create (and by default open) a database over ``fs``.

        ``initial`` builds the root for a brand-new database; it is not
        called when committed state already exists on disk.

        ``keep_versions=2`` retains the previous checkpoint+log pair, the
        paper's optional redundancy against hard errors in the current
        checkpoint.

        ``pad_log_to_page=False`` reproduces the paper's exact log layout,
        in which a torn append can damage the previously committed entry
        sharing its page; the default pads entries to page boundaries.

        ``durability`` selects the commit protocol (see
        :mod:`repro.core.commit`): ``"group"`` (default) batches
        concurrent updates into shared fsyncs while staying durable on
        return; ``"immediate"`` is the seed's one-fsync-per-update
        protocol; ``"relaxed"`` returns before the fsync and relies on a
        later flush.  ``commit_policy`` tunes the group-commit batch size
        and hold time.

        ``registry`` is the metrics registry that every number this
        database records flows into (``stats`` is a view over it); one on
        the database's clock is created when not supplied.  ``tracer``
        enables root spans for updates/checkpoints; even without one,
        updates executed under a traced RPC dispatch contribute child
        spans to the caller's trace.

        ``spare_fs`` is an optional spare directory (on a *different*
        device) that receives an emergency checkpoint of the in-memory
        state when a persistent media fault degrades the database to
        read-only; ``fault_retries`` bounds how many extra attempts a
        faulted log append or fsync gets before degrading (a transient
        device hiccup then costs a retry, not the server).

        ``flight`` is the always-on :class:`~repro.obs.flight.\
FlightRecorder` black box; one on the database's clock is created when
        not supplied.  Commit fsyncs, storage faults, health transitions
        and checkpoint switches all become ring events, and on
        degradation the ring is dumped next to the emergency snapshot so
        a postmortem can reconstruct the final moments.
        """
        self.fs = fs
        self.initial = initial
        self.operations = operations if operations is not None else DEFAULT_OPERATIONS
        self.pickle_registry = (
            pickle_registry if pickle_registry is not None else DEFAULT_REGISTRY
        )
        self.clock = clock if clock is not None else getattr(fs, "clock", None) or WallClock()
        self.cost_model = cost_model if cost_model is not None else NULL_COST_MODEL
        self.policy = policy if policy is not None else Never()
        if keep_versions < 1:
            raise ValueError("keep_versions must be at least 1")
        self.keep_versions = keep_versions
        self.pad_log_to_page = pad_log_to_page
        self.ignore_damaged_log = ignore_damaged_log
        #: debug mode: verify that enquiries really are read-only by
        #: comparing a pickle of the root before and after each one.
        self.paranoid_enquiries = paranoid_enquiries
        self.page_size = getattr(fs, "page_size", 512)
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, not {durability!r}"
            )
        self.durability = durability
        self.commit_policy = (
            commit_policy if commit_policy is not None else CommitPolicy()
        )

        if fault_retries < 0:
            raise ValueError("fault_retries cannot be negative")
        self.spare_fs = spare_fs
        self.fault_retries = fault_retries

        self.lock = SUELock()
        self.registry = (
            registry if registry is not None else MetricsRegistry(clock=self.clock)
        )
        self.tracer = tracer
        self.stats = DatabaseStats(self.registry)
        self.flight = (
            flight if flight is not None else FlightRecorder(clock=self.clock)
        )
        self.health_monitor = HealthMonitor(self.registry, flight=self.flight)
        self._checkpoint_failures = self.registry.counter(
            "db_checkpoint_failures_total",
            "checkpoint attempts aborted cleanly before their commit point",
        )
        self._checkpoint_retry_pending = False
        self.last_checkpoint_time = self.clock.now()
        self.entries_since_checkpoint = 0

        self._root: object = None
        self._log: LogWriter | None = None
        self._commit: CommitCoordinator | None = None
        self._version = 0
        self._open = False
        self._poisoned: BaseException | None = None
        # Atomic check-and-claim of the checkpoint-policy trigger: two
        # committers crossing a threshold together must not both fire.
        self._trigger_lock = threading.Lock()
        self._trigger_claimed = False

        if auto_open:
            self.open()

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> None:
        """Run the restart sequence (or bootstrap a brand-new database)."""
        if self._open:
            return
        watch = Stopwatch(self.clock)
        state = recover(
            self.fs,
            self.operations,
            self.pickle_registry,
            self.clock,
            self.cost_model,
            keep_versions=self.keep_versions,
            ignore_damaged_log=self.ignore_damaged_log,
            metrics=self.registry,
        )
        if state is None:
            self._bootstrap()
            self.stats.record_restart(watch.elapsed(), 0)
            self._open = True
            return
        self._root = state.root
        self._version = state.version
        # The writer resumes at the file's true end: recovery has already
        # truncated any torn tail in strict mode, and in ignore mode the
        # padded framing realigns the next entry to a page boundary.
        self._log = LogWriter(
            self.fs,
            logfile_name(state.version),
            page_size=self.page_size,
            pad_to_page=self.pad_log_to_page,
            start_seq=state.next_seq,
            clock=self.clock,
            sync_observer=self._note_fsync,
            flight=self.flight,
        )
        self._commit = self._make_coordinator(self._log)
        self.entries_since_checkpoint = state.entries_replayed
        self.stats.record_restart(watch.elapsed(), state.entries_replayed)
        self.last_recovery = state
        self._open = True
        if state.entries_skipped or state.used_previous_checkpoint:
            # Damaged files served this recovery; retire them immediately
            # by checkpointing the recovered state to a fresh version.
            try:
                self.checkpoint()
            except CheckpointFailed:
                # The retry is scheduled; the recovered state still serves.
                pass

    def _bootstrap(self) -> None:
        """First ever start: write version 1 from the initial root."""
        self._root = self.initial()
        self._version = 1
        payload = pickle_write(self._root, self.pickle_registry)
        self.cost_model.charge_pickle(self.clock, len(payload))
        write_checkpoint(self.fs, checkpoint_name(1), payload)
        self.fs.create(logfile_name(1))
        self.fs.fsync(logfile_name(1))
        self.fs.write(VERSION_FILE, b"1")
        self.fs.fsync(VERSION_FILE)
        self._log = LogWriter(
            self.fs,
            logfile_name(1),
            page_size=self.page_size,
            pad_to_page=self.pad_log_to_page,
            clock=self.clock,
            sync_observer=self._note_fsync,
            flight=self.flight,
        )
        self._commit = self._make_coordinator(self._log)
        self.last_recovery = None

    def _make_coordinator(self, writer: LogWriter) -> CommitCoordinator:
        return CommitCoordinator(
            writer,
            self.clock,
            self.commit_policy,
            self.stats,
            sync_retries=self.fault_retries,
            fault_observer=self.health_monitor.note_fault,
            flight=self.flight,
        )

    def close(self) -> None:
        """Shut down cleanly.

        Strict-mode commits are already durable; any relaxed-mode backlog
        is flushed here so a clean shutdown never loses an update that
        returned.
        """
        if self._open and self._commit is not None and self._commit.pending():
            try:
                self._commit.flush()
            except MediaError as exc:
                self._open = False
                self._degrade_now("fsync", exc, holding_update_lock=False)
                raise DatabaseDegraded(
                    f"close could not flush staged commits: {exc}"
                ) from exc
        self._open = False

    def __enter__(self) -> "Database":
        self.open()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def enquire(self, fn: Callable, *args: object, **kwargs: object) -> object:
        """Run a read-only function of the root under the shared lock.

        ``fn`` must not mutate the root: mutations outside :meth:`update`
        are invisible to the log and will not survive a restart.  With
        ``paranoid_enquiries=True`` that rule is *checked* — the root is
        pickled before and after, and a difference raises — at a cost
        that makes it a debug/test mode, not a production one.
        """
        self._check_usable()
        with self.lock.shared():
            self.cost_model.charge_enquiry(self.clock)
            if self.paranoid_enquiries:
                before = pickle_write(self._root, self.pickle_registry)
            result = fn(self._root, *args, **kwargs)
            if self.paranoid_enquiries:
                after = pickle_write(self._root, self.pickle_registry)
                if before != after:
                    raise DatabaseError(
                        "enquiry mutated the root; such changes are not "
                        "logged and would vanish on restart — use update()"
                    )
        self.stats.record_enquiry()
        return result

    def update(self, op_name: str, *args: object, **kwargs: object) -> object:
        """Execute one single-shot transaction; durable on return.

        The paper's three steps: (1) verify preconditions against virtual
        memory; (2) commit the parameters to the log; (3) apply to
        virtual memory under the exclusive lock.

        Where the commit point sits depends on the durability mode: in
        ``"immediate"`` mode it is an fsync inside the update lock (the
        seed protocol); in ``"group"`` mode the entry is staged unsynced
        and the commit point is a *shared* fsync on the commit barrier,
        awaited outside the locks so concurrent updates batch into one
        disk write — still durable on return; in ``"relaxed"`` mode the
        call returns after staging, before any fsync.
        """
        self._check_writable()
        with maybe_span(self.tracer, "db.update", op=op_name) as span:
            return self._update_traced(span, op_name, args, kwargs)

    def _update_traced(
        self, span, op_name: str, args: tuple, kwargs: dict
    ) -> object:
        op = self.operations.get(op_name)
        assert self._log is not None
        with self.lock.update():
            span.event("update_lock_acquired")
            # Re-checked under the lock: another updater may have hit a
            # persistent fault and sealed the log while we queued.
            self._check_writable()
            watch = Stopwatch(self.clock)
            with child_span("db.explore"):
                try:
                    op.check(self._root, *args, **kwargs)
                except PreconditionFailed:
                    self.stats.record_rejected_update()
                    raise
                self.cost_model.charge_explore(self.clock)
            explore_s = watch.restart()

            with child_span("db.pickle"):
                payload = pickle_write(
                    (op_name, args, kwargs), self.pickle_registry
                )
                self.cost_model.charge_pickle(self.clock, len(payload))
            pickle_s = watch.restart()

            with child_span("db.log_append", bytes=len(payload)):
                if self.durability == "immediate":
                    entry = self._append_entry(payload)
                    self._sync_log()  # the commit point
                    ticket = None
                else:
                    entry = self._append_entry(payload)
                    assert self._commit is not None
                    ticket = self._commit.note_append()
            log_write_s = watch.restart()

            with child_span("db.apply"):
                self.lock.upgrade()
                try:
                    try:
                        result = op.apply(self._root, *args, **kwargs)
                    except Exception as exc:
                        # The log says this update happened; memory disagrees.
                        self._poisoned = exc
                        raise DatabasePoisoned(exc) from exc
                    self.cost_model.charge_modify(self.clock)
                finally:
                    self.lock.downgrade()
            apply_s = watch.restart()
            # Counted under the update lock: a concurrent checkpoint's
            # reset must order strictly before or after this update.
            self.entries_since_checkpoint += 1

        commit_wait_s = 0.0
        if ticket is None:
            self.stats.record_commit_batch(1)
        elif self.durability == "relaxed":
            self.stats.record_relaxed_updates(1)
        else:
            # The commit point (group mode): one leader fsyncs for the
            # whole batch before any member's update() returns.  The
            # leader's fsync appears as a commit.fsync child span here.
            with child_span("db.commit_barrier"):
                commit_wait_s = self._wait_durable(ticket)

        self.stats.record_update(
            explore_s,
            pickle_s,
            log_write_s + commit_wait_s,
            apply_s,
            entry.length,
            len(payload),
            commit_wait_seconds=commit_wait_s,
        )
        self.maybe_checkpoint()
        return result

    def update_many(self, batch: list[tuple]) -> list[object]:
        """Group commit: several single-shot transactions, one disk write.

        ``batch`` holds ``(op_name, args)`` or ``(op_name, args, kwargs)``
        tuples.  This is the paper's suggested improvement — "arranging
        to record multiple commit records in a single log entry" — with
        its semantics made precise:

        * durability is amortised: all entries share one fsync;
        * atomicity stays **per update**: a crash during the commit can
          durably retain a prefix of the batch (each entry is separately
          framed and replayed);
        * preconditions are evaluated against the pre-batch state, so the
          batched updates must be mutually independent;
        * no intermediate state is visible to enquiries: the in-memory
          applications all happen under one exclusive section after the
          commit.
        """
        self._check_writable()
        if not batch:
            return []
        plan = []
        for item in batch:
            if len(item) == 2:
                op_name, args = item
                kwargs: dict = {}
            else:
                op_name, args, kwargs = item
            plan.append((self.operations.get(op_name), op_name, tuple(args), kwargs))
        assert self._log is not None
        with self.lock.update():
            self._check_writable()
            watch = Stopwatch(self.clock)
            for op, _name, args, kwargs in plan:
                try:
                    op.check(self._root, *args, **kwargs)
                except PreconditionFailed:
                    self.stats.record_rejected_update()
                    raise
                self.cost_model.charge_explore(self.clock)
            explore_s = watch.restart() / len(plan)

            payloads = []
            for _op, name, args, kwargs in plan:
                payload = pickle_write((name, args, kwargs), self.pickle_registry)
                self.cost_model.charge_pickle(self.clock, len(payload))
                payloads.append(payload)
            pickle_s = watch.restart() / len(plan)

            if self.durability == "immediate":
                entries = [self._append_entry(p) for p in payloads]
                self._sync_log()  # one commit fsync
                ticket = None
            else:
                # Stage every entry and wait once on the commit barrier;
                # the shared fsync may also absorb concurrent updaters.
                assert self._commit is not None
                entries = [self._append_entry(p) for p in payloads]
                ticket = 0
                for _ in entries:
                    ticket = self._commit.note_append()
            log_write_s = watch.restart() / len(plan)

            results: list[object] = []
            self.lock.upgrade()
            try:
                for op, _name, args, kwargs in plan:
                    try:
                        results.append(op.apply(self._root, *args, **kwargs))
                    except Exception as exc:
                        self._poisoned = exc
                        raise DatabasePoisoned(exc) from exc
                    self.cost_model.charge_modify(self.clock)
            finally:
                self.lock.downgrade()
            apply_s = watch.restart() / len(plan)
            self.entries_since_checkpoint += len(plan)

        commit_wait_s = 0.0
        if ticket is None:
            self.stats.record_commit_batch(len(plan))
        elif self.durability == "relaxed":
            self.stats.record_relaxed_updates(len(plan))
        else:
            commit_wait_s = self._wait_durable(ticket)  # one commit fsync
        per_entry_wait = commit_wait_s / len(plan)

        for entry, payload in zip(entries, payloads):
            self.stats.record_update(
                explore_s, pickle_s, log_write_s + per_entry_wait, apply_s,
                entry.length, len(payload),
                commit_wait_seconds=per_entry_wait,
            )
        self.maybe_checkpoint()
        return results

    def checkpoint(self) -> int:
        """Write a checkpoint and reset the log; returns the new version.

        Runs under the update lock: concurrent updates wait (the paper's
        availability cost, measured in E8/E10), enquiries proceed.

        A storage fault before the commit point aborts the switch
        *cleanly*: the partial new version is removed, the old version
        stays current (no update is lost — the log keeps growing), a
        retry is scheduled for the next policy trigger, and
        :class:`CheckpointFailed` is raised.  A fault after the commit
        point is tolerated: the switch is durable via ``newversion`` and
        a restart completes the tidy-up.
        """
        self._check_writable()
        with maybe_span(self.tracer, "db.checkpoint"), self.lock.update():
            watch = Stopwatch(self.clock)
            if self._commit is not None:
                # Retire any unsynced tail (relaxed-mode backlog) before
                # this log file is superseded: holding the update lock
                # guarantees nothing new can be staged meanwhile.
                try:
                    self._commit.flush()
                except MediaError as exc:
                    self._degrade_now("fsync", exc, holding_update_lock=True)
                    raise DatabaseDegraded(
                        f"checkpoint could not flush staged commits: {exc}"
                    ) from exc
            self._before_log_reset(self._version)
            new_version = self._version + 1
            payload = pickle_write(self._root, self.pickle_registry)
            self.cost_model.charge_pickle(self.clock, len(payload))
            try:
                write_checkpoint(self.fs, checkpoint_name(new_version), payload)
                self.fs.create(logfile_name(new_version))
                self.fs.fsync(logfile_name(new_version))
                commit_new_version(self.fs, new_version)  # the commit point
            except StorageError as exc:
                self._abort_checkpoint(new_version)
                self._checkpoint_retry_pending = True
                self._checkpoint_failures.inc()
                self.health_monitor.note_fault("checkpoint", exc)
                self.flight.record(
                    "checkpoint_aborted",
                    version=new_version,
                    error=type(exc).__name__,
                )
                raise CheckpointFailed(
                    f"checkpoint to version {new_version} aborted before "
                    f"its commit point; version {self._version} remains "
                    f"current ({exc})"
                ) from exc
            try:
                finalize_switch(self.fs, new_version, self.keep_versions)
            except StorageError as exc:
                # Past the commit point: newversion durably names the new
                # version, so a restart finishes the tidy-up.
                self.health_monitor.note_fault("finalize_switch", exc)
            self._log = LogWriter(
                self.fs,
                logfile_name(new_version),
                page_size=self.page_size,
                pad_to_page=self.pad_log_to_page,
                clock=self.clock,
                sync_observer=self._note_fsync,
                flight=self.flight,
            )
            if self._commit is not None:
                self._commit.rebind(self._log)
            self._version = new_version
            self.entries_since_checkpoint = 0
            self._checkpoint_retry_pending = False
            self.last_checkpoint_time = self.clock.now()
            elapsed = watch.elapsed()
            self.flight.record("checkpoint_switch", version=new_version)
        self.stats.record_checkpoint(elapsed, len(payload))
        self.policy.note_checkpoint(self)
        return new_version

    def _abort_checkpoint(self, new_version: int) -> None:
        """Best-effort removal of a failed switch's partial files.

        The old version remains committed whatever happens here; anything
        this cannot delete (the device may still be refusing writes) is a
        "partial newer version" that restart cleanup and ``fsck --repair``
        both remove.
        """
        for name in (
            NEWVERSION_FILE,
            checkpoint_name(new_version),
            logfile_name(new_version),
        ):
            try:
                self.fs.delete_if_exists(name)
            except StorageError:
                pass
        try:
            self.fs.fsync_dir()
        except StorageError:
            pass

    def maybe_checkpoint(self, policy: CheckpointPolicy | None = None) -> bool:
        """Atomically check-and-claim the checkpoint-policy trigger.

        Evaluates ``policy`` (the database's own by default) and runs one
        checkpoint when it fires.  The check and the claim happen under
        one mutex, so concurrent committers — or a
        :class:`~repro.core.daemon.CheckpointDaemon` racing them — cannot
        all trigger for the same threshold crossing and stack redundant
        checkpoints back to back.  Returns True when this caller ran the
        checkpoint.

        A checkpoint aborted earlier by a storage fault stays *pending*:
        it is retried at the next trigger evaluation even if the policy
        itself would not fire, until one attempt succeeds.  While the
        database is not HEALTHY no checkpoint is attempted at all.
        """
        if not self.health_monitor.healthy:
            return False
        chosen = policy if policy is not None else self.policy
        with self._trigger_lock:
            due = self._checkpoint_retry_pending or chosen.should_checkpoint(self)
            if self._trigger_claimed or not due:
                return False
            self._trigger_claimed = True
        try:
            self.checkpoint()
        except CheckpointFailed:
            return False  # still pending; the next trigger retries
        finally:
            with self._trigger_lock:
                self._trigger_claimed = False
        return True

    def flush(self) -> None:
        """Force every staged commit durable (a group-commit barrier).

        A no-op unless updates are pending — which only happens in
        ``"relaxed"`` mode, or transiently while strict group commits are
        in flight on other threads.
        """
        self._check_usable()
        if self._commit is not None:
            try:
                self._commit.flush()
            except MediaError as exc:
                self._degrade_now("fsync", exc, holding_update_lock=False)
                raise DatabaseDegraded(
                    f"flush could not commit the staged tail: {exc}"
                ) from exc

    def pending_commits(self) -> int:
        """Updates staged in the log but not yet covered by an fsync."""
        return self._commit.pending() if self._commit is not None else 0

    def _note_fsync(self, seconds: float, nbytes: int) -> None:
        """LogWriter sync observer: fsync latency flows to the registry
        (counts come from the commit path, which knows batch sizes)."""
        self.stats.record_fsync(seconds)

    # -- storage-fault handling ------------------------------------------------

    def _append_entry(self, payload: bytes) -> LogEntry:
        """Append one unsynced entry, riding out transient media faults.

        Each faulted attempt is retried only while the writer's tail is
        clean — :class:`~repro.core.log.LogWriter` cuts a short write back
        off the file on failure; if even that failed, appending again
        would put a committed entry beyond damage that strict recovery
        truncates away, so the database degrades instead.
        """
        assert self._log is not None
        attempts = 0
        while True:
            try:
                return self._log.append_unsynced(payload)
            except MediaError as exc:
                self.health_monitor.note_fault("append", exc)
                if self._log.tail_damaged or attempts >= self.fault_retries:
                    self._degrade_now("append", exc, holding_update_lock=True)
                    raise DatabaseDegraded(
                        f"updates refused: log append failed ({exc})"
                    ) from exc
                attempts += 1

    def _sync_log(self) -> None:
        """The immediate-mode commit fsync, with bounded retries."""
        assert self._log is not None
        attempts = 0
        while True:
            try:
                self._log.sync()
                return
            except MediaError as exc:
                self.health_monitor.note_fault("fsync", exc)
                if attempts >= self.fault_retries:
                    self._degrade_now("fsync", exc, holding_update_lock=True)
                    raise DatabaseDegraded(
                        f"updates refused: commit fsync failed ({exc})"
                    ) from exc
                attempts += 1

    def _wait_durable(self, ticket: int) -> float:
        """Group-mode barrier wait; a leader's media failure degrades us.

        The coordinator already retried the shared fsync
        ``fault_retries`` times (reporting each fault to the health
        monitor) before poisoning the barrier, so a ``MediaError`` here
        means the fault persisted.
        """
        assert self._commit is not None
        try:
            return self._commit.wait_durable(ticket)
        except MediaError as exc:
            self._degrade_now("fsync", exc, holding_update_lock=False)
            raise DatabaseDegraded(
                f"updates refused: commit fsync failed ({exc})"
            ) from exc

    def _degrade_now(
        self, op: str, exc: BaseException, holding_update_lock: bool
    ) -> None:
        """Seal the log and enter DEGRADED_READ_ONLY (first caller only).

        The log writer is abandoned where it stands, an emergency
        checkpoint of the in-memory state is attempted to the spare
        directory, and from here on updates are refused while enquiries
        keep being served from virtual memory.  The flight ring is
        dumped as a black box *after* the snapshot — the snapshot clears
        the spare first — so the spare holds both the preserved state
        and the story of how we got here.
        """
        if not self.health_monitor.degrade(f"{op}: {exc}"):
            return
        self._emergency_preserve(holding_update_lock)
        self._dump_blackbox()

    def _dump_blackbox(self) -> None:
        """Best effort: persist the flight ring next to the snapshot.

        The spare may itself be absent or failing — a dump failure must
        never mask the degradation that triggered it.
        """
        if self.spare_fs is None:
            return
        try:
            self.flight.dump_to(self.spare_fs)
        except Exception:
            pass

    def _emergency_preserve(self, holding_update_lock: bool) -> None:
        if self.spare_fs is None:
            self.health_monitor.note_emergency("no_spare")
            return
        try:
            if holding_update_lock:
                self._write_emergency_snapshot()
            else:
                # The SUE lock is not reentrant; callers tell us whether
                # they already hold the update side.
                with self.lock.update():
                    self._write_emergency_snapshot()
        except Exception as exc:
            self.health_monitor.note_emergency("failed")
            self.health_monitor.fail(f"emergency checkpoint failed: {exc}")
        else:
            self.health_monitor.note_emergency("written")

    def _write_emergency_snapshot(self) -> None:
        from repro.core.backup import emergency_snapshot

        payload = pickle_write(self._root, self.pickle_registry)
        emergency_snapshot(self.spare_fs, payload, self._version)

    def _before_log_reset(self, old_version: int) -> None:
        """Hook: runs under the update lock just before a checkpoint
        supersedes ``logfile{old_version}``.

        The base database does nothing; :class:`~repro.core.audit.\
        ArchivingDatabase` copies the log to its archive name here, while
        no update can slip past it.
        """

    # -- introspection ------------------------------------------------------------

    @property
    def version(self) -> int:
        """The current checkpoint version number."""
        return self._version

    @property
    def health(self) -> str:
        """``"healthy"``, ``"degraded_read_only"`` or ``"failed"``."""
        return self.health_monitor.state

    def health_detail(self) -> dict[str, object]:
        """The health state plus the cause of any degradation."""
        detail = self.health_monitor.snapshot()
        detail["checkpoint_retry_pending"] = self._checkpoint_retry_pending
        return detail

    def log_size(self) -> int:
        """Bytes currently in the log file."""
        return self._log.size() if self._log is not None else 0

    def log_entry_count(self) -> int:
        return self.entries_since_checkpoint

    def _check_usable(self) -> None:
        if not self._open:
            raise DatabaseClosed("database is not open")
        if self._poisoned is not None:
            raise DatabasePoisoned(self._poisoned)

    def _check_writable(self) -> None:
        """Refuse updates (not enquiries) once the database has degraded."""
        self._check_usable()
        if not self.health_monitor.healthy:
            raise DatabaseDegraded(
                f"database is {self.health_monitor.state} "
                f"({self.health_monitor.cause}); updates are refused, "
                f"enquiries still served"
            )
