"""The audit trail: retained log files as a complete update history.

The paper, section 4:

    There are other potential benefits from the existence of a complete
    update log, although we have not explored them.  For example, the
    log files form a complete audit trail for the database, and could be
    retained if desired.

This module explores them.  With ``ArchivingDatabase`` (or by passing
``archive_logs=True`` where supported), a checkpoint *archives* the log
it supersedes instead of deleting it, under the name ``archive{N}`` —
``logfileN`` frozen at the moment checkpoint ``N+1`` was cut.  The
:class:`AuditReader` then iterates the entire update history of the
database, across every archived epoch plus the live log, as decoded
``(epoch, seq, operation, args, kwargs)`` records.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.database import Database
from repro.core.errors import RecoveryError
from repro.core.log import LogScan
from repro.core.version import logfile_name
from repro.pickles import TypeRegistry, pickle_read
from repro.storage.interface import FileSystem

_ARCHIVE = re.compile(r"^archive(\d+)$")


def archive_name(version: int) -> str:
    return f"archive{version}"


@dataclass(frozen=True)
class AuditRecord:
    """One committed update, as read back from the audit trail."""

    epoch: int  # the checkpoint version whose log contained it
    seq: int  # sequence number within that epoch's log
    operation: str
    args: tuple
    kwargs: dict

    def describe(self) -> str:
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"[{self.epoch}:{self.seq}] {self.operation}({', '.join(parts)})"


class ArchivingDatabase(Database):
    """A database whose checkpoints retain superseded logs as archives.

    Identical to :class:`Database` except that each checkpoint first
    copies the log it is about to supersede to ``archive{old_version}``.
    The copy happens under the update lock (via the ``_before_log_reset``
    hook), so no committed update can miss the trail, and the live log is
    untouched until the ordinary atomic switch deletes it — a crash at
    any point leaves recovery exactly as safe as without archiving (a
    partial archive is simply overwritten by the next attempt).
    Archives are never read by recovery; they are pure history.
    """

    def _before_log_reset(self, old_version: int) -> None:
        old_log = logfile_name(old_version)
        if self.fs.exists(old_log):
            self.fs.write(archive_name(old_version), self.fs.read(old_log))
            self.fs.fsync(archive_name(old_version))


def archived_epochs(fs: FileSystem) -> list[int]:
    """Versions with a retained archive, ascending."""
    found = []
    for name in fs.list_names():
        match = _ARCHIVE.match(name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


class AuditReader:
    """Iterates the complete update history of a database directory."""

    def __init__(
        self,
        fs: FileSystem,
        pickle_registry: TypeRegistry | None = None,
    ) -> None:
        self.fs = fs
        self.registry = pickle_registry

    def epochs(self) -> list[tuple[int, str]]:
        """(epoch, file name) pairs in chronological order."""
        trail = [(epoch, archive_name(epoch)) for epoch in archived_epochs(self.fs)]
        from repro.core.version import read_current_version

        current = read_current_version(self.fs)
        if current is not None:
            trail.append((current.number, logfile_name(current.number)))
        return trail

    def records(self) -> Iterator[AuditRecord]:
        """Every committed update, oldest first."""
        for epoch, file_name in self.epochs():
            if not self.fs.exists(file_name):
                continue
            scan = LogScan(self.fs, file_name)
            for entry in scan:
                try:
                    operation, args, kwargs = pickle_read(
                        entry.payload, self.registry
                    )
                except Exception as exc:
                    raise RecoveryError(
                        f"audit record {epoch}:{entry.seq} does not decode: "
                        f"{exc!r}"
                    ) from exc
                yield AuditRecord(epoch, entry.seq, operation, tuple(args), kwargs)

    def history_of(self, predicate: Callable[[AuditRecord], bool]) -> list[AuditRecord]:
        """All records matching ``predicate`` (e.g. touching one key)."""
        return [record for record in self.records() if predicate(record)]

    def count(self) -> int:
        return sum(1 for _ in self.records())

    def replay_onto(self, root: object, operations) -> int:
        """Rebuild any state by replaying the full trail onto ``root``.

        This is time-travel: replaying a *prefix* of the audit trail
        reconstructs the database as of any past update.
        """
        applied = 0
        for record in self.records():
            operations.get(record.operation).apply(
                root, *record.args, **record.kwargs
            )
            applied += 1
        return applied
