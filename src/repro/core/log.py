"""The redo log: incremental updates on disk.

Entry format (all durable byte layouts in this package are versioned by
their magic bytes and never changed in place)::

    entry  := MAGIC(1 byte, 0xA5)
              seq      varint      -- 1, 2, 3, … within one log file
              length   varint      -- payload byte count
              payload  bytes       -- pickled (operation, args, kwargs)
              crc32    4 bytes     -- big-endian, over seq+length+payload
    filler := 0x00 bytes           -- pad to a page boundary (optional)

The paper detects a partially written entry from "the log entry's length
on the first page of the entry, combined with the known property of our
disk hardware that a partially written page will report an error when it
is read".  Both mechanisms exist here: the simulated disk raises
``HardError`` for torn pages, and the CRC catches any byte-level damage a
different substrate might let through.

Padding (``pad_to_page=True``, the default) aligns every entry to a page
boundary so that a later torn append can never destroy a previously
committed entry sharing its page.  ``pad_to_page=False`` is the paper's
exact layout; the crash sweep demonstrates the difference (design note D2
in DESIGN.md).

The **commit point** is :meth:`LogWriter.append`'s fsync, exactly as in
the paper: "if we crash before the write occurs on the disk, the update is
not visible after a restart; if we crash after the write completes, the
entire update will be completed after a restart."
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.pickles.wire import WireReader, encode_varint
from repro.storage.errors import HardError, StorageError
from repro.storage.interface import FileSystem

MAGIC = 0xA5
FILLER = 0x00
_CRC_BYTES = 4
#: generous upper bound on header size: magic + two 10-byte varints
_MAX_HEADER = 21


def encode_entry(seq: int, payload: bytes) -> bytes:
    """Build the on-disk bytes of one log entry."""
    if seq < 1:
        raise ValueError("log sequence numbers start at 1")
    body = bytearray()
    encode_varint(seq, body)
    encode_varint(len(payload), body)
    body.extend(payload)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    entry = bytearray([MAGIC])
    entry.extend(body)
    entry.extend(crc.to_bytes(_CRC_BYTES, "big"))
    return bytes(entry)


@dataclass(frozen=True)
class LogEntry:
    """One committed update as read back from the log."""

    seq: int
    payload: bytes
    offset: int  # where the entry starts in the file
    length: int  # total on-disk length including header, crc and padding


@dataclass
class ScanOutcome:
    """What a full scan of a log file concluded."""

    entries: int = 0
    damaged_skipped: int = 0
    good_length: int = 0
    #: None for a clean scan; otherwise why scanning stopped early
    damage: str | None = None
    last_seq: int = 0

    @property
    def truncated(self) -> bool:
        return self.damage is not None


class LogWriter:
    """Appends committed updates to a log file.

    One instance owns one log file; the database swaps in a fresh writer
    when a checkpoint resets the log.
    """

    def __init__(
        self,
        fs: FileSystem,
        name: str,
        page_size: int = 512,
        pad_to_page: bool = True,
        start_seq: int = 1,
        start_offset: int | None = None,
        clock=None,
        sync_observer=None,
        flight=None,
    ) -> None:
        self.fs = fs
        self.name = name
        self.page_size = page_size
        self.pad_to_page = pad_to_page
        self.next_seq = start_seq
        if not fs.exists(name):
            fs.create(name)
        self.offset = fs.size(name) if start_offset is None else start_offset
        self.entries_written = 0
        #: When both are set, ``sync()`` is timed on ``clock`` and
        #: ``sync_observer(seconds, bytes_since_last_sync)`` is invoked —
        #: how fsync count/latency reach the metrics registry without the
        #: writer knowing about metrics.
        self.clock = clock
        self.sync_observer = sync_observer
        #: optional :class:`~repro.obs.flight.FlightRecorder`: tail
        #: repairs after a failed append are worth remembering — the
        #: black box then shows whether the log was cut back cleanly or
        #: left damaged before a degradation.
        self.flight = flight
        self._unsynced_bytes = 0
        #: True when a failed append left bytes we could not cut back off
        #: the file.  Appending after damage is unsafe: strict recovery
        #: truncates at the damage, which would silently drop any entry
        #: committed beyond it — callers must stop using this writer.
        self.tail_damaged = False

    def append(self, payload: bytes) -> LogEntry:
        """Durably append one entry; returns after the commit fsync.

        Bookkeeping advances with the *write*, not the fsync: if the
        fsync raises (a hard error, or a simulated crash the harness
        chooses to continue past), ``offset``/``next_seq`` still match
        the file contents, so a retried append cannot frame a duplicate
        sequence number at a stale offset.
        """
        entry = self.append_unsynced(payload)
        self.sync()  # the commit point
        return entry

    def append_unsynced(self, payload: bytes) -> LogEntry:
        """Append without forcing; pair with :meth:`sync` (group commit)."""
        framed, prefix_len = self._build(payload)
        before = self.offset
        try:
            self.fs.append(self.name, framed)
        except StorageError:
            # A runtime media fault: the process keeps running, so try to
            # cut the short write back off the file — then a retried
            # append starts from a clean tail.
            self._discard_partial_append(before)
            raise
        except BaseException:
            # A simulated crash (or interrupt): nothing may run now except
            # the harness.  Just realign the tracked offset with reality so
            # recovery sees at worst one damaged region.
            self._resync_offset_from_file()
            raise
        return self._note_written(payload, framed, prefix_len)

    def append_many(self, payloads: list[bytes]) -> list[LogEntry]:
        """Group commit: several entries, one fsync.

        The paper notes that "the only schemes that will perform better
        than this involve arranging to record multiple commit records in a
        single log entry"; this is that scheme.
        """
        entries = [self.append_unsynced(payload) for payload in payloads]
        if entries:
            self.sync()
        return entries

    def sync(self) -> None:
        if self.clock is None or self.sync_observer is None:
            self.fs.fsync(self.name)
            self._unsynced_bytes = 0
            return
        synced = self._unsynced_bytes
        started = self.clock.now()
        self.fs.fsync(self.name)
        self._unsynced_bytes = 0
        self.sync_observer(self.clock.now() - started, synced)

    def _discard_partial_append(self, before: int) -> None:
        """Cut whatever a failed append left back off the file.

        On success the file ends exactly where it did before the append,
        so the log stays clean and a retry is safe.  If even the truncate
        fails the tail is marked damaged: appending past it would put a
        committed entry beyond bytes strict recovery truncates away.
        """
        try:
            if self.fs.size(self.name) > before:
                self.fs.truncate(self.name, before)
            self.offset = before
        except StorageError:
            self._resync_offset_from_file()
            self.tail_damaged = True
            if self.flight is not None:
                self.flight.record(
                    "log_tail_damaged", file=self.name, offset=before
                )
        else:
            if self.flight is not None:
                self.flight.record(
                    "log_tail_repaired", file=self.name, offset=before
                )

    def _resync_offset_from_file(self) -> None:
        """Re-learn the true end of file after a failed append."""
        try:
            self.offset = self.fs.size(self.name)
        except Exception:
            # Even the size is unreadable; keep the stale offset — the
            # next append will fail against the same broken substrate.
            pass

    def size(self) -> int:
        return self.offset

    def _build(self, payload: bytes) -> tuple[bytes, int]:
        """Frame one entry; returns (bytes to append, leading filler size).

        In padded mode the entry is preceded by filler up to the next page
        boundary when the current offset is unaligned (which happens after
        recovering a log with a discarded damaged region), and followed by
        filler up to the next boundary.
        """
        prefix_len = 0
        if self.pad_to_page:
            misalign = self.offset % self.page_size
            if misalign:
                prefix_len = self.page_size - misalign
        entry = encode_entry(self.next_seq, payload)
        framed = bytes(prefix_len) + entry
        if self.pad_to_page:
            remainder = (self.offset + len(framed)) % self.page_size
            if remainder:
                framed += bytes(self.page_size - remainder)
        return framed, prefix_len

    def _note_written(
        self, payload: bytes, framed: bytes, prefix_len: int
    ) -> LogEntry:
        record = LogEntry(
            seq=self.next_seq,
            payload=payload,
            offset=self.offset + prefix_len,
            length=len(framed) - prefix_len,
        )
        self.next_seq += 1
        self.offset += len(framed)
        self.entries_written += 1
        self._unsynced_bytes += len(framed)
        return record


class LogScan:
    """Iterates the entries of a log file, stopping safely at damage.

    Usage::

        scan = LogScan(fs, "logfile35")
        for entry in scan:
            replay(entry)
        if scan.outcome.truncated:
            fs.truncate("logfile35", scan.outcome.good_length)

    With ``ignore_damaged=True`` damage confined to some entries is
    *skipped* rather than ending the scan — the paper's suggested
    hard-error recovery "if the semantics of the application are such that
    updates are typically independent".  Two skip mechanisms compose:

    * an entry whose header is readable but whose payload pages are not is
      skipped using its declared length;
    * an unreadable or unparseable region is skipped by resynchronising at
      the next page boundary, which is where entries start in a padded
      log (CRCs and magic bytes validate whatever is found there).

    Sequence-number continuity is enforced in strict mode and relaxed to
    "monotonically consistent after a skip" in ignore mode.
    """

    def __init__(
        self,
        fs: FileSystem,
        name: str,
        expect_first_seq: int = 1,
        ignore_damaged: bool = False,
        page_size: int | None = None,
    ) -> None:
        self.fs = fs
        self.name = name
        self.ignore_damaged = ignore_damaged
        self.outcome = ScanOutcome()
        self._expected_seq: int | None = expect_first_seq
        self._size = fs.size(name)
        self._page_size = (
            page_size if page_size is not None else getattr(fs, "page_size", 512)
        )
        self._consumed = False
        #: inside a run of page resyncs through one damaged region
        self._in_damaged_run = False

    def _resync_offset(self, offset: int) -> int:
        """The next page boundary, where a padded log's entries start."""
        return (offset // self._page_size + 1) * self._page_size

    def _note_resync_skip(self) -> None:
        """Count a damaged region once, however many page resyncs it takes.

        Every skip mechanism must feed :attr:`ScanOutcome.damaged_skipped`
        or recovery under-reports damage; resync-based skips advance one
        page at a time, so consecutive resyncs are one region, closed only
        by the next successfully parsed entry.  A length-based skip counts
        its entry and *keeps the run open*: the skipped entry's declared
        end may land inside the same damaged pages.
        """
        if not self._in_damaged_run:
            self.outcome.damaged_skipped += 1
            self._in_damaged_run = True

    def __iter__(self):
        if self._consumed:
            # Re-iterating would double-count the outcome counters and
            # replay entries twice; demand a fresh scan instead.
            raise RuntimeError("a LogScan is single-use; construct a new one")
        self._consumed = True
        offset = 0
        while True:
            entry, next_offset = self._read_entry(offset)
            if entry is None:
                if next_offset is None:
                    return  # clean end or recorded damage
                offset = next_offset  # damaged entry skipped
                continue
            self.outcome.entries += 1
            self.outcome.last_seq = entry.seq
            self.outcome.good_length = entry.offset + entry.length
            offset = next_offset
            yield entry

    def _stop(self, reason: str | None) -> tuple[None, None]:
        self.outcome.damage = reason
        return None, None

    def _read_entry(self, offset: int) -> tuple[LogEntry | None, int | None]:
        size = self._size
        # Skip filler bytes (padding after the previous entry), reading in
        # chunks so padded logs do not cost one call per filler byte.
        while offset < size:
            try:
                chunk = self.fs.read_range(self.name, offset, 4096)
            except HardError:
                # The big read may have touched a bad page belonging to a
                # later entry; the byte at `offset` itself may be fine.
                try:
                    chunk = self.fs.read_range(self.name, offset, 1)
                except HardError:
                    if self.ignore_damaged:
                        self._note_resync_skip()
                        offset = self._resync_offset(offset)
                        self._expected_seq = None
                        continue
                    return self._stop(f"unreadable page at offset {offset}")
            if not chunk:
                return self._stop(None)
            advance = 0
            while advance < len(chunk) and chunk[advance] == FILLER:
                advance += 1
            offset += advance
            if advance < len(chunk):
                if chunk[advance] == MAGIC:
                    break
                if self.ignore_damaged:
                    self._note_resync_skip()
                    offset = self._resync_offset(offset)
                    self._expected_seq = None
                    continue
                return self._stop(
                    f"bad magic byte {chunk[advance]:#x} at offset {offset}"
                )
        if offset >= size:
            return self._stop(None)  # clean end of log

        try:
            header = self.fs.read_range(self.name, offset, _MAX_HEADER)
        except HardError:
            if self.ignore_damaged:
                self._note_resync_skip()
                self._expected_seq = None
                return None, self._resync_offset(offset)
            return self._stop(f"unreadable entry header at offset {offset}")
        reader = WireReader(header, 1)  # past the magic byte
        try:
            seq = reader.read_varint()
            length = reader.read_varint()
        except Exception:
            if self.ignore_damaged:
                self._note_resync_skip()
                self._expected_seq = None
                return None, self._resync_offset(offset)
            return self._stop(f"truncated entry header at offset {offset}")
        body_start = offset + reader.offset
        end = body_start + length + _CRC_BYTES
        if end > size:
            if self.ignore_damaged:
                self._note_resync_skip()
                self._expected_seq = None
                return None, self._resync_offset(offset)
            return self._stop(f"entry at offset {offset} extends past end of log")

        try:
            body = self.fs.read_range(
                self.name, offset + 1, reader.offset - 1 + length + _CRC_BYTES
            )
        except HardError:
            if self.ignore_damaged:
                self.outcome.damaged_skipped += 1
                # The declared end may still sit inside the damaged pages;
                # any immediate resync continues this already-counted run.
                self._in_damaged_run = True
                self._expected_seq = None  # type: ignore[assignment]
                return None, end
            return self._stop(f"unreadable entry body at offset {offset}")
        crc_stored = int.from_bytes(body[-_CRC_BYTES:], "big")
        crc_actual = zlib.crc32(body[:-_CRC_BYTES]) & 0xFFFFFFFF
        if crc_stored != crc_actual:
            if self.ignore_damaged:
                self.outcome.damaged_skipped += 1
                # As above: stay in the counted run until a good entry.
                self._in_damaged_run = True
                self._expected_seq = None  # type: ignore[assignment]
                return None, end
            return self._stop(f"checksum mismatch at offset {offset}")
        if self._expected_seq is not None and seq != self._expected_seq:
            if not self.ignore_damaged:
                return self._stop(
                    f"sequence discontinuity at offset {offset}: "
                    f"expected {self._expected_seq}, found {seq}"
                )
            # Ignore mode: a gap after skipped damage is expected.
        self._expected_seq = seq + 1
        self._in_damaged_run = False  # a good entry closes any damaged region
        payload = bytes(body[reader.offset - 1 : reader.offset - 1 + length])
        return LogEntry(seq, payload, offset, end - offset), end
