"""Checkpoint files: a complete pickled database state.

File format::

    MAGIC    4 bytes  b"SDB1"
    length   varint   payload byte count
    payload  bytes    PickleWrite of the database root
    crc32    4 bytes  big-endian, over the payload

The checksum stands in for the paper's assumption that "our disks and
virtual memory give either correct data or an error": over ``SimFS`` a
torn or damaged page already raises ``HardError``, but over a real
directory (``LocalFS``) the CRC is what turns silent corruption into a
detected error so recovery can fall back to an older checkpoint or a
replica.

Checkpoint files are written once and never modified — the atomicity of a
checkpoint *switch* comes from the version-file protocol in
:mod:`repro.core.version`, not from anything in this module.
"""

from __future__ import annotations

import zlib

from repro.core.errors import RecoveryError
from repro.pickles.wire import WireReader, encode_varint
from repro.storage.interface import FileSystem

MAGIC = b"SDB1"
_CRC_BYTES = 4
#: stream the body in pieces so huge checkpoints do not double memory
_CHUNK = 256 * 1024


class CheckpointDamaged(RecoveryError):
    """The checkpoint file is unreadable or fails validation."""

    def __init__(self, name: str, detail: str) -> None:
        super().__init__(f"checkpoint {name!r} damaged: {detail}")
        self.name = name
        self.detail = detail


def write_checkpoint(fs: FileSystem, name: str, payload: bytes) -> int:
    """Write and fsync a checkpoint file; returns bytes written.

    The caller produces ``payload`` with PickleWrite (and charges its CPU
    cost); this function owns the framing and durability.
    """
    header = bytearray(MAGIC)
    encode_varint(len(payload), header)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    fs.create(name)
    fs.append(name, bytes(header))
    for start in range(0, len(payload), _CHUNK):
        fs.append(name, payload[start : start + _CHUNK])
    fs.append(name, crc.to_bytes(_CRC_BYTES, "big"))
    fs.fsync(name)
    return len(header) + len(payload) + _CRC_BYTES


def read_checkpoint(fs: FileSystem, name: str) -> bytes:
    """Read and validate a checkpoint file; returns the pickled payload.

    Raises :class:`CheckpointDamaged` on any validation failure and lets
    the substrate's ``HardError`` propagate for media damage — recovery
    treats both as "try the previous checkpoint / a replica".
    """
    data = fs.read(name)
    if len(data) < len(MAGIC) + 1 + _CRC_BYTES:
        raise CheckpointDamaged(name, f"too short ({len(data)} bytes)")
    if data[: len(MAGIC)] != MAGIC:
        raise CheckpointDamaged(name, "bad magic")
    reader = WireReader(data, len(MAGIC))
    try:
        length = reader.read_varint()
    except Exception as exc:
        raise CheckpointDamaged(name, f"bad length header: {exc}") from exc
    body_start = reader.offset
    expected_size = body_start + length + _CRC_BYTES
    if expected_size != len(data):
        raise CheckpointDamaged(
            name,
            f"size mismatch: header says {expected_size} bytes, file has {len(data)}",
        )
    payload = data[body_start : body_start + length]
    crc_stored = int.from_bytes(data[-_CRC_BYTES:], "big")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc_stored:
        raise CheckpointDamaged(name, "checksum mismatch")
    return payload
