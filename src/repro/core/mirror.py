"""Mirroring: redundancy on a separate disk (paper section 4).

    Recovery from a hard error in the checkpoint could be achieved by
    keeping one previous checkpoint and log (preferably on a separate
    disk with a separate controller) […] Such redundancy measures cost
    disk space, but do not affect the performance for normal enquiries,
    updates, checkpoints or restarts.

``keep_versions=2`` implements the same-disk variant; this module adds
the separate-disk one.  A :class:`MirroringDatabase` copies each freshly
committed checkpoint (and the now-frozen previous log) to a second file
system right after every switch.  The mirror is a *cold* copy:

* normal updates never touch it — the paper's "do not affect the
  performance" property holds by construction;
* it lags the primary by up to one checkpoint interval, so restoring
  from it loses at most the updates logged since the mirrored epoch —
  the same bound as replica restoration;
* :func:`restore_from_mirror` rebuilds a destroyed primary directory
  from it in one call.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.errors import RecoveryError
from repro.core.version import (
    VERSION_FILE,
    checkpoint_name,
    logfile_name,
    read_current_version,
)
from repro.storage.interface import FileSystem


class MirroringDatabase(Database):
    """A database that copies each checkpoint epoch to a second disk.

    Construct with ``mirror=<FileSystem>`` in addition to the normal
    :class:`Database` arguments.  After every checkpoint the new
    checkpoint file, the superseded (complete) log and a version marker
    are durably copied to the mirror.
    """

    def __init__(self, fs: FileSystem, *args: object, mirror: FileSystem,
                 **kwargs: object) -> None:
        self.mirror = mirror
        self._pending_previous_log: bytes | None = None
        super().__init__(fs, *args, **kwargs)

    def _before_log_reset(self, old_version: int) -> None:
        # Snapshot the about-to-be-superseded log while the update lock
        # guarantees it is complete and quiescent.
        name = logfile_name(old_version)
        self._pending_previous_log = (
            self.fs.read(name) if self.fs.exists(name) else b""
        )

    def checkpoint(self) -> int:
        new_version = super().checkpoint()
        self._mirror_epoch(new_version)
        return new_version

    def _mirror_epoch(self, version: int) -> None:
        """Copy checkpoint ``version`` (and the frozen previous log)."""
        previous_log = self._pending_previous_log
        self._pending_previous_log = None
        checkpoint = checkpoint_name(version)
        self.mirror.write(checkpoint, self.fs.read(checkpoint))
        self.mirror.fsync(checkpoint)
        if previous_log is not None:
            frozen = logfile_name(version - 1)
            self.mirror.write(frozen, previous_log)
            self.mirror.fsync(frozen)
        # An empty log for the mirrored epoch itself, so the directory is
        # a valid recoverable state on its own.
        log = logfile_name(version)
        self.mirror.write(log, b"")
        self.mirror.fsync(log)
        # Commit the mirror's view last: if copying died part-way, the
        # marker still names the previous complete epoch.
        self.mirror.write(VERSION_FILE, str(version).encode("ascii"))
        self.mirror.fsync(VERSION_FILE)
        self._prune_mirror(version)

    def _prune_mirror(self, current: int) -> None:
        from repro.core.version import numbered_files

        for number, kinds in numbered_files(self.mirror).items():
            for kind in kinds:
                # Keep the current checkpoint+log and the frozen previous
                # log (the epoch the mirror bridges); everything older —
                # and the superseded checkpoint — goes.
                keep = number == current or (
                    kind == "logfile" and number == current - 1
                )
                if not keep:
                    self.mirror.delete_if_exists(f"{kind}{number}")
        self.mirror.fsync_dir()


def restore_from_mirror(primary: FileSystem, mirror: FileSystem) -> None:
    """Rebuild a destroyed primary directory from the mirror.

    Every file of the mirror's current epoch is copied back; the restored
    database then recovers normally and is missing only the updates
    logged after the last mirrored checkpoint — the paper's stated cost
    of cold redundancy.
    """
    current = read_current_version(mirror)
    if current is None:
        raise RecoveryError("the mirror holds no complete epoch")
    for name in list(primary.list_names()):
        primary.delete(name)
    for name in mirror.list_names():
        primary.write(name, mirror.read(name))
        primary.fsync(name)
    primary.fsync_dir()
