"""A background checkpoint daemon.

The paper's name server checkpoints "from time to time" — in practice a
nightly job.  The inline policy check (after each update) cannot fire
during quiet periods; this daemon moves the decision off the update path
entirely: a thread polls the policy and runs the checkpoint itself, so an
idle database still gets its nightly checkpoint, and the update that tips
a threshold never pays the checkpoint latency.

Thread-safety comes from the database's own lock protocol: the daemon's
``checkpoint()`` takes the update lock like any other writer, so it
serialises naturally against updates and never blocks enquiries.
"""

from __future__ import annotations

import threading

from repro.core.database import Database
from repro.core.errors import DatabaseClosed
from repro.core.policy import CheckpointPolicy


class CheckpointDaemon:
    """Runs checkpoints in the background when a policy says so."""

    def __init__(
        self,
        db: Database,
        policy: CheckpointPolicy | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        """``policy`` defaults to the database's own policy.

        ``poll_interval`` is real (wall-clock) seconds between policy
        evaluations; with a simulated database clock the policy still
        reads simulated time, the daemon merely re-checks it on a wall
        cadence.
        """
        self.db = db
        self.policy = policy if policy is not None else db.policy
        self.poll_interval = poll_interval
        self.checkpoints_taken = 0
        self.last_error: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "CheckpointDaemon":
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._run, name="checkpoint-daemon", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                # The atomic check-and-claim in maybe_checkpoint keeps the
                # daemon from double-firing against an inline trigger that
                # saw the same threshold crossing.
                if self.db.maybe_checkpoint(self.policy):
                    self.checkpoints_taken += 1
            except DatabaseClosed:
                return
            except BaseException as exc:  # noqa: BLE001 - surfaced via attribute
                self.last_error = exc
                return
            self._stop.wait(self.poll_interval)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop polling and wait for any in-flight checkpoint to finish."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "CheckpointDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class GroupCommitDaemon:
    """A background committer for ``durability="relaxed"`` databases.

    Relaxed updates return before their fsync; this daemon bounds the
    at-risk window by flushing the staged backlog every
    ``flush_interval`` (wall-clock) seconds.  With it running, the
    weakened guarantee tightens to "durable within roughly one flush
    interval" while the disk still sees batched writes.  Strict modes
    never accumulate a backlog, so the daemon idles there.
    """

    def __init__(self, db: Database, flush_interval: float = 0.01) -> None:
        self.db = db
        self.flush_interval = flush_interval
        self.flushes = 0
        self.last_error: BaseException | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "GroupCommitDaemon":
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._run, name="group-commit-daemon", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                if self.db.pending_commits():
                    self.db.flush()
                    self.flushes += 1
            except DatabaseClosed:
                return
            except BaseException as exc:  # noqa: BLE001 - surfaced via attribute
                self.last_error = exc
                return
            self._stop.wait(self.flush_interval)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop polling; flush one final time so nothing stays at risk."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        try:
            if self.db.pending_commits():
                self.db.flush()
                self.flushes += 1
        except DatabaseClosed:
            pass

    def __enter__(self) -> "GroupCommitDaemon":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
