"""Instrumentation for the database core.

Every quantity the paper reports in section 5 is measured here: counts of
enquiries/updates/checkpoints/restarts, and the per-phase breakdown of an
update (explore, pickle, log write, modify) that reproduces the paper's
"54 msecs = 6 + 22 + 20 + 6" decomposition.  Timings are taken on whatever
clock the database runs on, so under a :class:`~repro.sim.clock.SimClock`
they are modelled 1987 times and under a wall clock they are real times.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class PhaseBreakdown:
    """Accumulated and last-observed durations of one update's phases."""

    explore_seconds: float = 0.0
    pickle_seconds: float = 0.0
    log_write_seconds: float = 0.0
    apply_seconds: float = 0.0

    def total(self) -> float:
        return (
            self.explore_seconds
            + self.pickle_seconds
            + self.log_write_seconds
            + self.apply_seconds
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "explore_seconds": self.explore_seconds,
            "pickle_seconds": self.pickle_seconds,
            "log_write_seconds": self.log_write_seconds,
            "apply_seconds": self.apply_seconds,
            "total_seconds": self.total(),
        }


@dataclass
class DatabaseStats:
    """Counters and timing accumulators for one database instance."""

    enquiries: int = 0
    updates: int = 0
    updates_rejected: int = 0
    checkpoints: int = 0
    restarts: int = 0
    entries_replayed: int = 0
    log_entries_written: int = 0
    log_bytes_written: int = 0
    pickle_bytes_written: int = 0
    checkpoint_bytes_written: int = 0
    last_checkpoint_seconds: float = 0.0
    last_restart_seconds: float = 0.0
    #: commit-point fsyncs on the log (one per immediate-mode update, one
    #: per coordinator batch); checkpoint-file fsyncs are not included
    log_fsyncs: int = 0
    #: how many entries each commit fsync covered: {batch size: count}
    commit_batch_histogram: dict[int, int] = field(default_factory=dict)
    max_commit_batch: int = 0
    #: seconds updates spent blocked on the commit barrier (cumulative)
    commit_wait_seconds: float = 0.0
    last_commit_wait_seconds: float = 0.0
    #: updates that returned before their fsync (durability="relaxed")
    relaxed_updates: int = 0
    cumulative: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    last_update: PhaseBreakdown = field(default_factory=PhaseBreakdown)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_enquiry(self) -> None:
        with self._lock:
            self.enquiries += 1

    def record_rejected_update(self) -> None:
        with self._lock:
            self.updates_rejected += 1

    def record_update(
        self,
        explore_seconds: float,
        pickle_seconds: float,
        log_write_seconds: float,
        apply_seconds: float,
        entry_bytes: int,
        payload_bytes: int,
        commit_wait_seconds: float = 0.0,
    ) -> None:
        with self._lock:
            self.updates += 1
            self.log_entries_written += 1
            self.log_bytes_written += entry_bytes
            self.pickle_bytes_written += payload_bytes
            self.commit_wait_seconds += commit_wait_seconds
            self.last_commit_wait_seconds = commit_wait_seconds
            self.last_update = PhaseBreakdown(
                explore_seconds, pickle_seconds, log_write_seconds, apply_seconds
            )
            self.cumulative.explore_seconds += explore_seconds
            self.cumulative.pickle_seconds += pickle_seconds
            self.cumulative.log_write_seconds += log_write_seconds
            self.cumulative.apply_seconds += apply_seconds

    def record_commit_batch(self, size: int) -> None:
        """One commit fsync just covered ``size`` log entries."""
        with self._lock:
            self.log_fsyncs += 1
            self.commit_batch_histogram[size] = (
                self.commit_batch_histogram.get(size, 0) + 1
            )
            if size > self.max_commit_batch:
                self.max_commit_batch = size

    def record_relaxed_updates(self, count: int = 1) -> None:
        with self._lock:
            self.relaxed_updates += count

    def mean_commit_batch(self) -> float:
        """Average entries per commit fsync (0.0 before any fsync)."""
        with self._lock:
            return self._mean_commit_batch_locked()

    def record_checkpoint(self, seconds: float, nbytes: int) -> None:
        with self._lock:
            self.checkpoints += 1
            self.last_checkpoint_seconds = seconds
            self.checkpoint_bytes_written += nbytes

    def record_restart(self, seconds: float, entries_replayed: int) -> None:
        with self._lock:
            self.restarts += 1
            self.last_restart_seconds = seconds
            self.entries_replayed += entries_replayed

    def mean_update_breakdown(self) -> PhaseBreakdown:
        """Average per-update phase times over the life of the instance."""
        with self._lock:
            if not self.updates:
                return PhaseBreakdown()
            n = self.updates
            return PhaseBreakdown(
                self.cumulative.explore_seconds / n,
                self.cumulative.pickle_seconds / n,
                self.cumulative.log_write_seconds / n,
                self.cumulative.apply_seconds / n,
            )

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "enquiries": self.enquiries,
                "updates": self.updates,
                "updates_rejected": self.updates_rejected,
                "checkpoints": self.checkpoints,
                "restarts": self.restarts,
                "entries_replayed": self.entries_replayed,
                "log_entries_written": self.log_entries_written,
                "log_bytes_written": self.log_bytes_written,
                "pickle_bytes_written": self.pickle_bytes_written,
                "checkpoint_bytes_written": self.checkpoint_bytes_written,
                "last_checkpoint_seconds": self.last_checkpoint_seconds,
                "last_restart_seconds": self.last_restart_seconds,
                "log_fsyncs": self.log_fsyncs,
                "commit_batch_histogram": dict(self.commit_batch_histogram),
                "max_commit_batch": self.max_commit_batch,
                "mean_commit_batch": self._mean_commit_batch_locked(),
                "commit_wait_seconds": self.commit_wait_seconds,
                "last_commit_wait_seconds": self.last_commit_wait_seconds,
                "relaxed_updates": self.relaxed_updates,
                "last_update": self.last_update.as_dict(),
            }

    def _mean_commit_batch_locked(self) -> float:
        total = sum(s * n for s, n in self.commit_batch_histogram.items())
        fsyncs = sum(self.commit_batch_histogram.values())
        return total / fsyncs if fsyncs else 0.0
