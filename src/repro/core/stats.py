"""Instrumentation for the database core.

Every quantity the paper reports in section 5 is measured here: counts of
enquiries/updates/checkpoints/restarts, and the per-phase breakdown of an
update (explore, pickle, log write, modify) that reproduces the paper's
"54 msecs = 6 + 22 + 20 + 6" decomposition.  Timings are taken on whatever
clock the database runs on, so under a :class:`~repro.sim.clock.SimClock`
they are modelled 1987 times and under a wall clock they are real times.

Since the observability subsystem (:mod:`repro.obs`) landed, the numbers
live in a :class:`~repro.obs.metrics.MetricsRegistry` and this class is a
*view*: the ``record_*`` methods write registry metrics and the familiar
attributes (``stats.updates``, ``stats.log_bytes_written``…) read them
back, so each quantity has exactly one source of truth and shows up in
the Prometheus/JSON exports for free.  The historical API — every field,
method, and ``snapshot()`` key — is preserved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, SIZE_BUCKETS

_PHASES = ("explore", "pickle", "log_write", "apply")


@dataclass
class PhaseBreakdown:
    """Accumulated and last-observed durations of one update's phases."""

    explore_seconds: float = 0.0
    pickle_seconds: float = 0.0
    log_write_seconds: float = 0.0
    apply_seconds: float = 0.0

    def total(self) -> float:
        return (
            self.explore_seconds
            + self.pickle_seconds
            + self.log_write_seconds
            + self.apply_seconds
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "explore_seconds": self.explore_seconds,
            "pickle_seconds": self.pickle_seconds,
            "log_write_seconds": self.log_write_seconds,
            "apply_seconds": self.apply_seconds,
            "total_seconds": self.total(),
        }


class DatabaseStats:
    """Counters and timing accumulators for one database instance.

    A thin view over ``registry`` (one is created if not supplied, so
    standalone construction keeps working).  ``_lock`` serialises the
    multi-metric record methods against ``snapshot()`` so a snapshot
    never shows an update half-recorded.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        r = self.registry
        self._enquiries = r.counter(
            "db_enquiries_total", "Read-only enquiries served."
        )
        self._updates = r.counter(
            "db_updates_total", "Updates applied (and logged)."
        )
        self._updates_rejected = r.counter(
            "db_updates_rejected_total", "Updates rejected before logging."
        )
        self._checkpoints = r.counter(
            "db_checkpoints_total", "Checkpoints written."
        )
        self._restarts = r.counter(
            "db_restarts_total", "Recoveries (database opens with replay)."
        )
        self._entries_replayed = r.counter(
            "db_entries_replayed_total", "Log entries replayed during recovery."
        )
        self._log_entries_written = r.counter(
            "db_log_entries_written_total", "Log entries appended."
        )
        self._log_bytes_written = r.counter(
            "db_log_bytes_written_total", "Bytes appended to the log."
        )
        self._pickle_bytes_written = r.counter(
            "db_pickle_bytes_written_total", "Pickled payload bytes logged."
        )
        self._checkpoint_bytes_written = r.counter(
            "db_checkpoint_bytes_written_total", "Bytes written by checkpoints."
        )
        self._last_checkpoint_seconds = r.gauge(
            "db_last_checkpoint_seconds", "Duration of the last checkpoint."
        )
        self._last_restart_seconds = r.gauge(
            "db_last_restart_seconds", "Duration of the last recovery."
        )
        self._checkpoint_seconds = r.histogram(
            "db_checkpoint_seconds", "Checkpoint durations."
        )
        self._restart_seconds = r.histogram(
            "db_restart_seconds", "Recovery durations."
        )
        self._log_fsyncs = r.counter(
            "db_log_fsyncs_total",
            "Commit-point fsyncs on the log (one per immediate-mode update, "
            "one per coordinator batch); checkpoint-file fsyncs not included.",
        )
        self._fsync_seconds = r.histogram(
            "db_fsync_seconds", "Log fsync durations at commit points."
        )
        self._commit_batches = r.counter(
            "db_commit_batch_total",
            "Commit fsyncs by how many log entries each covered.",
            labelnames=("size",),
        )
        self._commit_batch_size = r.histogram(
            "db_commit_batch_size",
            "Distribution of entries per commit fsync.",
            buckets=SIZE_BUCKETS,
        )
        self._max_commit_batch = r.gauge(
            "db_max_commit_batch", "Largest commit batch seen."
        )
        self._commit_wait_seconds = r.counter(
            "db_commit_wait_seconds_total",
            "Seconds updates spent blocked on the commit barrier.",
        )
        self._last_commit_wait_seconds = r.gauge(
            "db_last_commit_wait_seconds", "Commit wait of the last update."
        )
        self._relaxed_updates = r.counter(
            "db_relaxed_updates_total",
            "Updates that returned before their fsync (durability=relaxed).",
        )
        self._update_seconds = r.histogram(
            "db_update_seconds", "End-to-end update durations (sum of phases)."
        )
        self._phase_seconds = r.counter(
            "db_update_phase_seconds_total",
            "Cumulative update time by phase (explore/pickle/log_write/apply).",
            labelnames=("phase",),
        )
        self._last_phase_seconds = r.gauge(
            "db_update_phase_seconds_last",
            "Phase times of the last update.",
            labelnames=("phase",),
        )
        # Materialise the per-phase series now so exports show them at zero.
        self._phase_totals = {p: self._phase_seconds.labels(p) for p in _PHASES}
        self._phase_lasts = {p: self._last_phase_seconds.labels(p) for p in _PHASES}

    # -- recorded quantities, read back from the registry --------------------

    @property
    def enquiries(self) -> int:
        return int(self._enquiries.value)

    @property
    def updates(self) -> int:
        return int(self._updates.value)

    @property
    def updates_rejected(self) -> int:
        return int(self._updates_rejected.value)

    @property
    def checkpoints(self) -> int:
        return int(self._checkpoints.value)

    @property
    def restarts(self) -> int:
        return int(self._restarts.value)

    @property
    def entries_replayed(self) -> int:
        return int(self._entries_replayed.value)

    @property
    def log_entries_written(self) -> int:
        return int(self._log_entries_written.value)

    @property
    def log_bytes_written(self) -> int:
        return int(self._log_bytes_written.value)

    @property
    def pickle_bytes_written(self) -> int:
        return int(self._pickle_bytes_written.value)

    @property
    def checkpoint_bytes_written(self) -> int:
        return int(self._checkpoint_bytes_written.value)

    @property
    def last_checkpoint_seconds(self) -> float:
        return self._last_checkpoint_seconds.value

    @property
    def last_restart_seconds(self) -> float:
        return self._last_restart_seconds.value

    @property
    def log_fsyncs(self) -> int:
        return int(self._log_fsyncs.value)

    @property
    def commit_batch_histogram(self) -> dict[int, int]:
        """How many entries each commit fsync covered: {batch size: count}."""
        return {
            int(series.labels[0]): int(series.value)
            for series in sorted(
                self._commit_batches.series(), key=lambda s: int(s.labels[0])
            )
        }

    @property
    def max_commit_batch(self) -> int:
        return int(self._max_commit_batch.value)

    @property
    def commit_wait_seconds(self) -> float:
        return self._commit_wait_seconds.value

    @property
    def last_commit_wait_seconds(self) -> float:
        return self._last_commit_wait_seconds.value

    @property
    def relaxed_updates(self) -> int:
        return int(self._relaxed_updates.value)

    @property
    def cumulative(self) -> PhaseBreakdown:
        return PhaseBreakdown(*(self._phase_totals[p].value for p in _PHASES))

    @property
    def last_update(self) -> PhaseBreakdown:
        return PhaseBreakdown(*(self._phase_lasts[p].value for p in _PHASES))

    # -- recording ------------------------------------------------------------

    def record_enquiry(self) -> None:
        self._enquiries.inc()

    def record_rejected_update(self) -> None:
        self._updates_rejected.inc()

    def record_update(
        self,
        explore_seconds: float,
        pickle_seconds: float,
        log_write_seconds: float,
        apply_seconds: float,
        entry_bytes: int,
        payload_bytes: int,
        commit_wait_seconds: float = 0.0,
    ) -> None:
        phases = (explore_seconds, pickle_seconds, log_write_seconds, apply_seconds)
        with self._lock:
            self._updates.inc()
            self._log_entries_written.inc()
            self._log_bytes_written.inc(entry_bytes)
            self._pickle_bytes_written.inc(payload_bytes)
            self._commit_wait_seconds.inc(commit_wait_seconds)
            self._last_commit_wait_seconds.set(commit_wait_seconds)
            self._update_seconds.observe(sum(phases))
            for phase, seconds in zip(_PHASES, phases):
                self._phase_totals[phase].inc(seconds)
                self._phase_lasts[phase].set(seconds)

    def record_commit_batch(self, size: int) -> None:
        """One commit fsync just covered ``size`` log entries."""
        with self._lock:
            self._log_fsyncs.inc()
            self._commit_batches.labels(size).inc()
            self._commit_batch_size.observe(size)
            if size > self._max_commit_batch.value:
                self._max_commit_batch.set(size)

    def record_fsync(self, seconds: float) -> None:
        """One log fsync took ``seconds`` (latency only; counts come from
        :meth:`record_commit_batch`, the commit-point source of truth)."""
        self._fsync_seconds.observe(seconds)

    def record_relaxed_updates(self, count: int = 1) -> None:
        self._relaxed_updates.inc(count)

    def mean_commit_batch(self) -> float:
        """Average entries per commit fsync (0.0 before any fsync)."""
        with self._lock:
            return self._mean_commit_batch_locked()

    def record_checkpoint(self, seconds: float, nbytes: int) -> None:
        with self._lock:
            self._checkpoints.inc()
            self._last_checkpoint_seconds.set(seconds)
            self._checkpoint_seconds.observe(seconds)
            self._checkpoint_bytes_written.inc(nbytes)

    def record_restart(self, seconds: float, entries_replayed: int) -> None:
        with self._lock:
            self._restarts.inc()
            self._last_restart_seconds.set(seconds)
            self._restart_seconds.observe(seconds)
            self._entries_replayed.inc(entries_replayed)

    # -- derived views ---------------------------------------------------------

    def mean_update_breakdown(self) -> PhaseBreakdown:
        """Average per-update phase times over the life of the instance."""
        with self._lock:
            n = self.updates
            if not n:
                return PhaseBreakdown()
            return PhaseBreakdown(
                *(self._phase_totals[p].value / n for p in _PHASES)
            )

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "enquiries": self.enquiries,
                "updates": self.updates,
                "updates_rejected": self.updates_rejected,
                "checkpoints": self.checkpoints,
                "restarts": self.restarts,
                "entries_replayed": self.entries_replayed,
                "log_entries_written": self.log_entries_written,
                "log_bytes_written": self.log_bytes_written,
                "pickle_bytes_written": self.pickle_bytes_written,
                "checkpoint_bytes_written": self.checkpoint_bytes_written,
                "last_checkpoint_seconds": self.last_checkpoint_seconds,
                "last_restart_seconds": self.last_restart_seconds,
                "log_fsyncs": self.log_fsyncs,
                "commit_batch_histogram": self.commit_batch_histogram,
                "max_commit_batch": self.max_commit_batch,
                "mean_commit_batch": self._mean_commit_batch_locked(),
                "commit_wait_seconds": self.commit_wait_seconds,
                "last_commit_wait_seconds": self.last_commit_wait_seconds,
                "relaxed_updates": self.relaxed_updates,
                "last_update": self.last_update.as_dict(),
            }

    def _mean_commit_batch_locked(self) -> float:
        histogram = self.commit_batch_histogram
        total = sum(s * n for s, n in histogram.items())
        fsyncs = sum(histogram.values())
        return total / fsyncs if fsyncs else 0.0
