"""The commit coordinator: transparent group commit for concurrent updates.

The paper is explicit that one disk write per update is the floor for the
naive protocol, and that "the only schemes that will perform better than
this involve arranging to record multiple commit records in a single log
entry".  :meth:`Database.update_many` is the *manual* form of that scheme;
this module is the *automatic* one: concurrent ``update()`` callers share
commit fsyncs without any API change.

Protocol (leader/follower group commit):

1. each update validates its preconditions, appends its log entry
   **unsynced** and applies it to virtual memory, all under the usual lock
   protocol, then takes a ticket from a :class:`~repro.concurrency.locks.\
CommitBarrier`;
2. outside the locks, the updater waits on the barrier.  The first waiter
   becomes the *leader*: it (optionally) holds for up to
   ``max_hold_seconds`` while more updaters stage entries, then performs
   **one** fsync covering every staged ticket and publishes the
   completion watermark;
3. every waiter whose ticket the watermark covers returns — so each
   ``update()`` still returns only after its entry is durable ("durable
   on return" is preserved), but N concurrent updates share one disk
   write.

Durability modes (``Database(durability=...)``):

``"immediate"``
    The seed behaviour: every update pays its own fsync under the update
    lock.  The commit point is inside the lock, so enquiries never
    observe a non-durable state.

``"group"`` (the default)
    The coordinator protocol above.  Durable on return; the in-memory
    apply happens *before* the shared fsync, so an enquiry racing an
    in-flight update can observe state whose log entry is not yet on
    disk.  A crash loses only updates whose callers had not returned,
    and recovery always yields a clean prefix (the crash sweep in
    ``tests/core/test_commit_crash.py`` proves this at every disk state).

``"relaxed"``
    Opt-in: ``update()`` returns after staging, *before* any fsync.  The
    entry becomes durable at the next shared fsync — a later strict
    committer, an explicit :meth:`Database.flush`, a checkpoint, a clean
    :meth:`Database.close`, or a background
    :class:`~repro.core.daemon.GroupCommitDaemon`.  A crash may lose
    updates that already returned; use only when the workload tolerates
    a bounded at-risk window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.concurrency.locks import CommitBarrier
from repro.core.errors import DatabaseError
from repro.obs.tracing import child_span
from repro.sim.clock import Clock, Stopwatch
from repro.storage.errors import MediaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.log import LogWriter
    from repro.core.stats import DatabaseStats

#: the values accepted by ``Database(durability=...)``
DURABILITY_MODES = ("immediate", "group", "relaxed")


@dataclass(frozen=True)
class CommitPolicy:
    """Tunables for the commit coordinator.

    ``max_batch`` caps how many staged entries one fsync may cover before
    the leader stops absorbing joiners.

    ``max_hold_seconds`` lets a leader wait for joiners before paying the
    fsync, trading commit latency for batch size.  The hold is bounded in
    real time (a ``Condition`` wait); its duration is *reported* on the
    database's :class:`~repro.sim.clock.Clock`, which coincides for the
    wall-clock deployments where holding matters.  The default of zero
    never delays a commit: batching then emerges purely from absorption —
    entries staged while a leader's fsync is in flight join the next
    batch.
    """

    max_batch: int = 64
    max_hold_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_hold_seconds < 0:
            raise ValueError("max_hold_seconds cannot be negative")


class CommitCoordinator:
    """Batches staged log appends into shared fsyncs (leader/follower).

    One instance serves one database.  The database stages entries with
    :meth:`LogWriter.append_unsynced` and takes a ticket per entry with
    :meth:`note_append` (both under the update lock); callers then block
    in :meth:`wait_durable` outside the locks.  When a checkpoint swaps
    in a fresh log writer it must :meth:`flush` first and then
    :meth:`rebind` — the coordinator never syncs a superseded file.
    """

    def __init__(
        self,
        writer: "LogWriter",
        clock: Clock,
        policy: CommitPolicy | None = None,
        stats: "DatabaseStats | None" = None,
        sync_retries: int = 0,
        fault_observer=None,
        flight=None,
    ) -> None:
        self.writer = writer
        self.clock = clock
        self.policy = policy if policy is not None else CommitPolicy()
        self.stats = stats
        #: extra attempts a leader makes when the shared fsync reports a
        #: media fault, before poisoning the barrier.  A transient device
        #: hiccup then costs a retry, not a sealed log.
        self.sync_retries = sync_retries
        #: called as ``fault_observer(op, exc)`` for each media fault the
        #: leader sees (how faults reach the health metrics).
        self.fault_observer = fault_observer
        #: optional :class:`~repro.obs.flight.FlightRecorder`: every
        #: shared fsync (and every poisoned barrier) becomes a black-box
        #: event, so a postmortem shows the commit pipeline's last acts.
        self.flight = flight
        self.barrier = CommitBarrier()

    # -- staging and waiting ---------------------------------------------------

    def note_append(self) -> int:
        """Take a ticket for an entry just staged (call under the update
        lock, immediately after ``append_unsynced``)."""
        return self.barrier.issue()

    def wait_durable(self, ticket: int) -> float:
        """Block until ``ticket``'s entry is durable; lead if needed.

        Returns the seconds spent waiting, measured on the database's
        clock.  Re-raises a leader's failure (including a simulated
        crash) rather than reporting durability that never happened.
        """
        watch = Stopwatch(self.clock)
        while not self.barrier.is_complete(ticket):
            claim = self.barrier.try_lead()
            if claim is None:
                self.barrier.wait_progress(ticket)
                continue
            self._lead(claim)
        return watch.elapsed()

    def _lead(self, claim: int) -> None:
        """Perform one shared fsync covering every ticket up to ``claim``."""
        try:
            if (
                self.policy.max_hold_seconds > 0
                and claim - self.barrier.completed() < self.policy.max_batch
            ):
                claim = self.barrier.hold(
                    self.policy.max_batch, self.policy.max_hold_seconds
                )
            batch = claim - self.barrier.completed()
            with child_span("commit.fsync", batch=batch):
                self._sync_with_retry()
        except BaseException as exc:
            # Nobody can prove the staged tail durable any more; poison
            # the barrier so waiters unwind instead of hanging.
            if self.flight is not None:
                self.flight.record(
                    "commit_barrier_poisoned", error=type(exc).__name__
                )
            self.barrier.fail(exc)
            raise
        self.barrier.finish(claim)
        if self.flight is not None:
            self.flight.record("commit_fsync", batch=batch, ticket=claim)
        if self.stats is not None:
            self.stats.record_commit_batch(batch)

    def _sync_with_retry(self) -> None:
        attempts = 0
        while True:
            try:
                self.writer.sync()
                return
            except MediaError as exc:
                if self.fault_observer is not None:
                    self.fault_observer("fsync", exc)
                if attempts >= self.sync_retries:
                    raise
                attempts += 1

    # -- maintenance -----------------------------------------------------------

    def flush(self) -> None:
        """Make every staged entry durable before returning.

        Used by checkpoints (before superseding the log file), by
        :meth:`Database.flush` / :meth:`Database.close` for relaxed-mode
        backlogs, and by the :class:`~repro.core.daemon.GroupCommitDaemon`.
        """
        target = self.barrier.issued()
        if target:
            self.wait_durable(target)

    def pending(self) -> int:
        """Entries staged but not yet covered by a shared fsync."""
        return self.barrier.pending()

    def rebind(self, writer: "LogWriter") -> None:
        """Point at a fresh log writer after a checkpoint reset.

        Tickets are monotonic across rebinds; the only requirement is
        that nothing is still pending against the old file — the caller
        must :meth:`flush` first.
        """
        if self.barrier.pending():
            raise DatabaseError(
                "cannot rebind the commit coordinator with entries still "
                "pending against the old log file; flush first"
            )
        self.writer = writer
