"""Sharded databases: the paper's own scaling suggestion (section 7).

    However, it seems likely that many larger databases (for example the
    directories of a large file system) could be handled by considering
    them as multiple separate databases for the purpose of writing
    checkpoints.  In that case, we could either use multiple log files or
    a single log file with more complicated rules for flushing the log.

``ShardedDatabase`` takes the first option: N fully independent
:class:`~repro.core.database.Database` instances — each with its own
checkpoint, log and version files — living in one directory through
:class:`~repro.storage.prefix.PrefixedFS` namespaces.  A deterministic
hash of the application-supplied shard key routes every update; enquiries
can address one shard or gather across all of them.

What this buys (experiment E12): a checkpoint now blocks only 1/N of the
key space at a time, and ``checkpoint_all`` staggers the shards, so the
worst-case update-blocking *window* shrinks by N while total checkpoint
work stays the same.  Restart parallelism would shrink restart time the
same way; here shards restart sequentially but each replays only its own
log.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.core.database import Database
from repro.storage.interface import FileSystem
from repro.storage.prefix import PrefixedFS


def default_hash(key: object) -> int:
    """A deterministic, process-independent shard hash."""
    return zlib.crc32(repr(key).encode("utf-8"))


class ShardedDatabase:
    """N independent checkpoint+log databases behind one update API.

    ``shard_key(*args, **kwargs)`` extracts the routing key from an
    update's arguments (default: the first positional argument).  The
    mapping must be stable across restarts — it is part of the schema,
    like the operation registry.
    """

    def __init__(
        self,
        fs: FileSystem,
        num_shards: int = 4,
        shard_key: Callable | None = None,
        **db_options: object,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.fs = fs
        self.num_shards = num_shards
        self._shard_key = shard_key if shard_key is not None else _first_argument
        self.shards = [
            Database(PrefixedFS(fs, f"shard{index}"), **db_options)
            for index in range(num_shards)
        ]

    # -- routing --------------------------------------------------------------

    def shard_of(self, *args: object, **kwargs: object) -> int:
        key = self._shard_key(*args, **kwargs)
        return default_hash(key) % self.num_shards

    def shard(self, index: int) -> Database:
        return self.shards[index]

    # -- operations --------------------------------------------------------------

    def update(self, op_name: str, *args: object, **kwargs: object) -> object:
        """Route a single-shot transaction to its shard."""
        index = self.shard_of(*args, **kwargs)
        return self.shards[index].update(op_name, *args, **kwargs)

    def enquire(self, fn: Callable, *args: object, **kwargs: object) -> object:
        """Run an enquiry against the shard owning the key in ``args``."""
        index = self.shard_of(*args, **kwargs)
        return self.shards[index].enquire(fn, *args, **kwargs)

    def enquire_all(self, fn: Callable) -> list[object]:
        """Run a read-only function on every shard root, in shard order.

        There is no cross-shard snapshot: each shard is read under its
        own shared lock.  Cross-shard invariants are the application's
        problem — exactly the trade the paper's suggestion makes.
        """
        return [db.enquire(fn) for db in self.shards]

    def gather(self, fn: Callable) -> list[object]:
        """``enquire_all`` flattened: fn must return an iterable."""
        results: list[object] = []
        for partial in self.enquire_all(fn):
            results.extend(partial)
        return results

    # -- maintenance --------------------------------------------------------------

    def checkpoint_all(self) -> list[int]:
        """Checkpoint the shards one at a time (staggered).

        Each shard's update blocking window is its own checkpoint only;
        updates routed to other shards proceed meanwhile.
        """
        return [db.checkpoint() for db in self.shards]

    def checkpoint_shard(self, index: int) -> int:
        return self.shards[index].checkpoint()

    def log_sizes(self) -> list[int]:
        return [db.log_size() for db in self.shards]

    def total_entries_since_checkpoint(self) -> int:
        return sum(db.entries_since_checkpoint for db in self.shards)

    def close(self) -> None:
        for db in self.shards:
            db.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _first_argument(*args: object, **kwargs: object) -> object:
    if not args:
        raise ValueError(
            "the default shard key uses the first positional argument; "
            "pass shard_key= for keyless operations"
        )
    return args[0]
