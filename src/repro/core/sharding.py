"""Sharded databases: the paper's own scaling suggestion (section 7).

    However, it seems likely that many larger databases (for example the
    directories of a large file system) could be handled by considering
    them as multiple separate databases for the purpose of writing
    checkpoints.  In that case, we could either use multiple log files or
    a single log file with more complicated rules for flushing the log.

``ShardedDatabase`` takes the first option: N fully independent
:class:`~repro.core.database.Database` instances — each with its own
checkpoint, log and version files — living in one directory through
:class:`~repro.storage.prefix.PrefixedFS` namespaces.  A deterministic
hash of the application-supplied shard key routes every update; enquiries
can address one shard or gather across all of them.

What this buys (experiment E12): a checkpoint now blocks only 1/N of the
key space at a time, and ``checkpoint_all`` staggers the shards, so the
worst-case update-blocking *window* shrinks by N while total checkpoint
work stays the same.  Restart parallelism would shrink restart time the
same way; here shards restart sequentially but each replays only its own
log.

Placement is **range based**, not modulo: the 32-bit hash space is cut
into contiguous half-open ranges ``[lo, hi)`` and a key lands on the
shard whose range covers its hash.  For N equal shards this gives the
same balance as ``hash % N`` — but ranges can also be split and moved
one at a time, which is what the cluster subsystem
(:mod:`repro.cluster`) builds on for online shard migration.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.core.database import Database
from repro.storage.interface import FileSystem
from repro.storage.prefix import PrefixedFS

#: the shard hash space: [0, HASH_SPACE) — 32-bit CRC values
HASH_BITS = 32
HASH_SPACE = 1 << HASH_BITS


def encode_shard_key(key: object) -> bytes:
    """Canonical bytes for a shard key — the *stability contract*.

    The shard hash is part of the schema: it must produce the same value
    for the same key in every process, on every Python version, across
    restarts — otherwise data written by one process is unfindable by the
    next.  ``repr()`` offers no such guarantee (it is documented as
    implementation-defined output for debugging), so keys are encoded
    explicitly with a one-byte type tag:

    ========  =========================================================
    ``s:``    str, UTF-8 encoded
    ``b:``    bytes, as-is
    ``B:``    bool (tagged before int: ``True`` must not collide with 1)
    ``i:``    int, decimal ASCII
    ``f:``    float, ``repr`` (shortest round-trip form, stable per IEEE)
    ``n:``    None
    ``t:``    tuple/list, length-prefixed concatenation of encoded items
    ========  =========================================================

    Any other type raises ``TypeError`` — an unhashable-by-contract key
    must fail loudly rather than hash differently across processes.
    """
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, bool):  # before int: bool is an int subclass
        return b"B:1" if key else b"B:0"
    if isinstance(key, int):
        return b"i:%d" % key
    if isinstance(key, float):
        return b"f:" + repr(key).encode("ascii")
    if key is None:
        return b"n:"
    if isinstance(key, (tuple, list)):
        parts = [encode_shard_key(item) for item in key]
        return b"t:" + b"".join(
            len(part).to_bytes(4, "big") + part for part in parts
        )
    raise TypeError(
        f"shard keys must be str, bytes, int, float, bool, None or a "
        f"tuple/list of those, not {type(key).__name__}"
    )


def default_hash(key: object) -> int:
    """A deterministic, process-independent shard hash in [0, 2**32).

    CRC-32 over :func:`encode_shard_key` — both sides are pinned by
    standards (IEEE CRC-32, UTF-8), so the value is reproducible across
    processes, platforms and Python versions.
    """
    return zlib.crc32(encode_shard_key(key)) & 0xFFFFFFFF


def shard_ranges(num_shards: int) -> list[tuple[int, int]]:
    """Cut the hash space into ``num_shards`` contiguous half-open ranges.

    Boundaries are ``ceil(i * HASH_SPACE / num_shards)``, so the ranges
    are within one unit of equal width, tile [0, HASH_SPACE) exactly, and
    agree with the closed-form :func:`shard_index` (with floor boundaries
    the two would disagree *at* a boundary whenever the division is
    inexact).
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    bounds = [
        (i * HASH_SPACE + num_shards - 1) // num_shards
        for i in range(num_shards + 1)
    ]
    return [(bounds[i], bounds[i + 1]) for i in range(num_shards)]


def shard_index(hash_value: int, num_shards: int) -> int:
    """The index of the equal-width range covering ``hash_value``.

    The closed form of a range lookup over :func:`shard_ranges` — used on
    the hot routing path where a scan would be wasteful.
    """
    if not 0 <= hash_value < HASH_SPACE:
        raise ValueError(f"hash {hash_value!r} outside [0, 2**{HASH_BITS})")
    return hash_value * num_shards // HASH_SPACE


class ShardedDatabase:
    """N independent checkpoint+log databases behind one update API.

    ``shard_key(*args, **kwargs)`` extracts the routing key from an
    update's arguments (default: the first positional argument).  The
    mapping must be stable across restarts — it is part of the schema,
    like the operation registry.
    """

    def __init__(
        self,
        fs: FileSystem,
        num_shards: int = 4,
        shard_key: Callable | None = None,
        **db_options: object,
    ) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.fs = fs
        self.num_shards = num_shards
        self.ranges = shard_ranges(num_shards)
        self._shard_key = shard_key if shard_key is not None else _first_argument
        self.shards = [
            Database(PrefixedFS(fs, f"shard{index}"), **db_options)
            for index in range(num_shards)
        ]

    # -- routing --------------------------------------------------------------

    def shard_of(self, *args: object, **kwargs: object) -> int:
        key = self._shard_key(*args, **kwargs)
        return shard_index(default_hash(key), self.num_shards)

    def shard(self, index: int) -> Database:
        return self.shards[index]

    # -- operations --------------------------------------------------------------

    def update(self, op_name: str, *args: object, **kwargs: object) -> object:
        """Route a single-shot transaction to its shard."""
        index = self.shard_of(*args, **kwargs)
        return self.shards[index].update(op_name, *args, **kwargs)

    def enquire(self, fn: Callable, *args: object, **kwargs: object) -> object:
        """Run an enquiry against the shard owning the key in ``args``."""
        index = self.shard_of(*args, **kwargs)
        return self.shards[index].enquire(fn, *args, **kwargs)

    def enquire_all(self, fn: Callable) -> list[object]:
        """Run a read-only function on every shard root, in shard order.

        There is no cross-shard snapshot: each shard is read under its
        own shared lock.  Cross-shard invariants are the application's
        problem — exactly the trade the paper's suggestion makes.
        """
        return [db.enquire(fn) for db in self.shards]

    def gather(self, fn: Callable) -> list[object]:
        """``enquire_all`` flattened: fn must return an iterable."""
        results: list[object] = []
        for partial in self.enquire_all(fn):
            results.extend(partial)
        return results

    # -- maintenance --------------------------------------------------------------

    def checkpoint_all(self) -> list[int]:
        """Checkpoint the shards one at a time (staggered).

        Each shard's update blocking window is its own checkpoint only;
        updates routed to other shards proceed meanwhile.
        """
        return [db.checkpoint() for db in self.shards]

    def checkpoint_shard(self, index: int) -> int:
        return self.shards[index].checkpoint()

    def log_sizes(self) -> list[int]:
        return [db.log_size() for db in self.shards]

    def total_entries_since_checkpoint(self) -> int:
        return sum(db.entries_since_checkpoint for db in self.shards)

    def close(self) -> None:
        for db in self.shards:
            db.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _first_argument(*args: object, **kwargs: object) -> object:
    if not args:
        raise ValueError(
            "the default shard key uses the first positional argument; "
            "pass shard_key= for keyless operations"
        )
    return args[0]
