"""The restart sequence: checkpoint restore + log replay.

The paper, section 3:

    Restarting the system from its disk files consists of three steps:
    determine which is the current checkpoint (and discard any partially
    written ones, old ones or old logs); read the current checkpoint to
    obtain an old version of the virtual memory data structure; replay
    the updates from the log and apply them to the virtual memory
    structure to obtain the most recent state of the database.

Plus the section-4 failure handling:

* a partially written (torn) trailing log entry is detected and discarded;
* a damaged current checkpoint falls back, when ``keep_versions > 1``, to
  "reloading the previous checkpoint, replaying the previous log, then
  replaying the current log";
* with ``ignore_damaged_log=True``, a hard error confined to one log
  entry's pages skips just that entry (for applications whose updates are
  independent — the name server's are).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checkpoint import CheckpointDamaged, read_checkpoint
from repro.core.errors import RecoveryError, UnknownOperation
from repro.core.log import LogScan
from repro.core.transactions import OperationRegistry
from repro.core.version import (
    CurrentVersion,
    checkpoint_name,
    cleanup_after_restart,
    complete_versions,
    logfile_name,
    read_current_version,
)
from repro.obs.metrics import MetricsRegistry
from repro.pickles import TypeRegistry, pickle_read
from repro.sim.clock import Clock
from repro.sim.costmodel import CostModel
from repro.storage.errors import HardError
from repro.storage.interface import FileSystem


@dataclass
class RecoveredState:
    """Everything :class:`~repro.core.database.Database` needs to resume."""

    root: object
    version: int
    next_seq: int
    log_offset: int
    entries_replayed: int
    log_truncated: bool
    damage_note: str | None
    entries_skipped: int
    used_previous_checkpoint: bool


def recover(
    fs: FileSystem,
    operations: OperationRegistry,
    registry: TypeRegistry,
    clock: Clock,
    cost_model: CostModel,
    keep_versions: int = 1,
    ignore_damaged_log: bool = False,
    metrics: MetricsRegistry | None = None,
) -> RecoveredState | None:
    """Run the restart sequence; ``None`` means no committed state exists.

    Raises :class:`RecoveryError` when a state exists but cannot be
    reconstructed locally (the paper's answer at that point is "restore
    from a replica" — see :mod:`repro.nameserver.replication`).

    ``metrics`` is an observability registry (distinct from ``registry``,
    the *pickle* type registry): when given, recovery publishes its
    replay rate and bytes scanned there.
    """
    current = read_current_version(fs)
    if current is None:
        return None
    cleanup_after_restart(fs, current, keep_versions)
    watch_start = clock.now()

    used_previous = False
    try:
        root = _load_checkpoint(fs, current.number, registry, clock, cost_model)
    except (CheckpointDamaged, HardError) as exc:
        root, used_previous = _fall_back_to_previous(
            fs,
            current,
            operations,
            registry,
            clock,
            cost_model,
            ignore_damaged_log,
            cause=exc,
        )

    outcome, replayed, skipped = _replay_log(
        fs,
        logfile_name(current.number),
        root,
        operations,
        registry,
        clock,
        cost_model,
        ignore_damaged_log,
    )
    if outcome.truncated:
        # Cut the torn or damaged tail off so the writer can resume
        # appending cleanly after it.
        fs.truncate(logfile_name(current.number), outcome.good_length)

    if metrics is not None:
        _publish_metrics(
            metrics, clock.now() - watch_start, replayed, outcome.good_length
        )
    return RecoveredState(
        root=root,
        version=current.number,
        next_seq=outcome.last_seq + 1,
        log_offset=outcome.good_length,
        entries_replayed=replayed,
        log_truncated=outcome.truncated,
        damage_note=outcome.damage,
        entries_skipped=skipped,
        used_previous_checkpoint=used_previous,
    )


def _publish_metrics(
    metrics, elapsed_seconds: float, replayed: int, log_bytes: int
) -> None:
    """Record one recovery's replay rate and scan volume in the registry."""
    metrics.counter(
        "db_recovery_log_bytes_total", "Committed log bytes scanned by recovery."
    ).inc(log_bytes)
    metrics.gauge(
        "db_recovery_replay_entries_per_second",
        "Replay rate of the most recent recovery (0 when instantaneous).",
    ).set(replayed / elapsed_seconds if elapsed_seconds > 0 else 0.0)
    metrics.histogram(
        "db_recovery_seconds", "Durations of full restart sequences."
    ).observe(elapsed_seconds)


def _load_checkpoint(
    fs: FileSystem,
    version: int,
    registry: TypeRegistry,
    clock: Clock,
    cost_model: CostModel,
) -> object:
    payload = read_checkpoint(fs, checkpoint_name(version))
    cost_model.charge_unpickle(clock, len(payload))
    return pickle_read(payload, registry)


def _fall_back_to_previous(
    fs: FileSystem,
    current: CurrentVersion,
    operations: OperationRegistry,
    registry: TypeRegistry,
    clock: Clock,
    cost_model: CostModel,
    ignore_damaged_log: bool,
    cause: Exception,
) -> tuple[object, bool]:
    """Section 4's hard-error recipe using the retained previous pair."""
    previous_candidates = [
        v for v in complete_versions(fs) if v < current.number
    ]
    if not previous_candidates:
        raise RecoveryError(
            f"checkpoint {current.number} is damaged and no previous "
            f"checkpoint is retained; restore from a replica or backup"
        ) from cause
    previous = previous_candidates[-1]
    try:
        root = _load_checkpoint(fs, previous, registry, clock, cost_model)
    except (CheckpointDamaged, HardError) as second:
        raise RecoveryError(
            f"checkpoints {current.number} and {previous} are both damaged"
        ) from second
    # Replay the *previous* log in full to reach the state the damaged
    # checkpoint captured, before the caller replays the current log.
    outcome, _, _ = _replay_log(
        fs,
        logfile_name(previous),
        root,
        operations,
        registry,
        clock,
        cost_model,
        ignore_damaged_log,
    )
    if outcome.truncated:
        raise RecoveryError(
            f"previous log {logfile_name(previous)!r} is damaged "
            f"({outcome.damage}); cannot bridge to the current log"
        ) from cause
    return root, True


def _replay_log(
    fs: FileSystem,
    name: str,
    root: object,
    operations: OperationRegistry,
    registry: TypeRegistry,
    clock: Clock,
    cost_model: CostModel,
    ignore_damaged: bool,
):
    """Apply every committed update in ``name`` to ``root``."""
    scan = LogScan(fs, name, ignore_damaged=ignore_damaged)
    replayed = 0
    for entry in scan:
        cost_model.charge_unpickle(clock, len(entry.payload))
        try:
            op_name, args, kwargs = pickle_read(entry.payload, registry)
        except Exception as exc:
            raise RecoveryError(
                f"log entry seq {entry.seq} of {name!r} does not decode: {exc!r}"
            ) from exc
        try:
            op = operations.get(op_name)
        except UnknownOperation as exc:
            raise RecoveryError(
                f"log entry seq {entry.seq} of {name!r} names unknown "
                f"operation {op_name!r}; the replaying process must register "
                f"the same operations as the writer"
            ) from exc
        try:
            op.apply(root, *args, **kwargs)
        except Exception as exc:
            raise RecoveryError(
                f"replaying seq {entry.seq} ({op_name!r}) of {name!r} "
                f"raised {exc!r}; operations must be deterministic"
            ) from exc
        # Replay applies without re-verifying preconditions, so only the
        # modify phase's CPU is charged (plus the unpickle above).
        cost_model.charge_modify(clock)
        replayed += 1
    return scan.outcome, replayed, scan.outcome.damaged_skipped
