"""Online backup: a consistent copy of a *live* database.

The paper's rivals lean on backups ("reliability in the face of hard
errors depends entirely on keeping backup copies of the complete
database"); the checkpoint+log design makes taking one almost trivial,
because the on-disk state is always a consistent pair of write-once
files plus an append-only log:

* the backup runs under the **update** lock, so the log cannot move and
  the version cannot switch while the files are copied — but enquiries
  proceed throughout, the same availability property checkpoints have;
* what is copied is the current checkpoint, the *entire* current log and
  the version marker, so the backup is exact as of the moment the lock
  was held — zero update loss, unlike the cold mirror's
  one-checkpoint-epoch lag;
* restoring is just putting the three files in an empty directory and
  opening it.

``backup_database`` is the one-shot operator verb;
:func:`verify_backup` runs the same validation fsck applies, against the
backup copy.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.errors import RecoveryError
from repro.core.version import (
    VERSION_FILE,
    checkpoint_name,
    logfile_name,
    read_current_version,
)
from repro.storage.interface import FileSystem


def backup_database(db: Database, target: FileSystem) -> dict[str, int]:
    """Copy the live database's current consistent state to ``target``.

    Returns ``{file name: bytes copied}``.  The target directory is
    cleared first — a backup directory holds one backup.
    """
    with db.lock.update():
        version = db.version
        names = [checkpoint_name(version), logfile_name(version)]
        copied: dict[str, int] = {}
        for name in list(target.list_names()):
            target.delete(name)
        for name in names:
            payload = db.fs.read(name)
            target.write(name, payload)
            target.fsync(name)
            copied[name] = len(payload)
        # The marker goes last: a half-finished backup has no version
        # file and is recognisably incomplete.
        target.write(VERSION_FILE, str(version).encode("ascii"))
        target.fsync(VERSION_FILE)
        copied[VERSION_FILE] = len(str(version))
    target.fsync_dir()
    return copied


def verify_backup(target: FileSystem) -> int:
    """Validate a backup directory; returns the number of log entries.

    Raises :class:`RecoveryError` if the backup is unusable.
    """
    from repro.core.checkpoint import read_checkpoint
    from repro.core.log import LogScan

    current = read_current_version(target)
    if current is None:
        raise RecoveryError("backup has no committed version")
    read_checkpoint(target, checkpoint_name(current.number))
    scan = LogScan(target, logfile_name(current.number))
    entries = sum(1 for _ in scan)
    if scan.outcome.damage is not None:
        raise RecoveryError(f"backup log damaged: {scan.outcome.damage}")
    return entries
