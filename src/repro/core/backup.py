"""Online backup: a consistent copy of a *live* database.

The paper's rivals lean on backups ("reliability in the face of hard
errors depends entirely on keeping backup copies of the complete
database"); the checkpoint+log design makes taking one almost trivial,
because the on-disk state is always a consistent pair of write-once
files plus an append-only log:

* the backup runs under the **update** lock, so the log cannot move and
  the version cannot switch while the files are copied — but enquiries
  proceed throughout, the same availability property checkpoints have;
* what is copied is the current checkpoint, the *entire* current log and
  the version marker, so the backup is exact as of the moment the lock
  was held — zero update loss, unlike the cold mirror's
  one-checkpoint-epoch lag;
* restoring is just putting the three files in an empty directory and
  opening it.

``backup_database`` is the one-shot operator verb;
:func:`verify_backup` runs the same validation fsck applies, against the
backup copy.  A ``manifest`` file written alongside the copy records what
the log looked like at copy time, so verification also catches a backup
whose log was *truncated after copying* — a clean-framing scan alone
cannot distinguish that from a legitimately shorter log.

:func:`emergency_snapshot` is the degraded-mode sibling: when the primary
device starts refusing writes, the database preserves its in-memory state
to a spare directory using the same three-file layout, so the state
survives a subsequent process death even though the primary log is sealed.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.errors import RecoveryError
from repro.core.version import (
    VERSION_FILE,
    checkpoint_name,
    logfile_name,
    read_current_version,
)
from repro.storage.interface import FileSystem

#: backup metadata: what the copied log looked like at copy time
MANIFEST_FILE = "manifest"


def _write_manifest(
    target: FileSystem, version: int, log_bytes: int, entries: int, last_seq: int
) -> int:
    text = (
        f"version {version}\n"
        f"log_bytes {log_bytes}\n"
        f"log_entries {entries}\n"
        f"last_seq {last_seq}\n"
    )
    target.write(MANIFEST_FILE, text.encode("ascii"))
    target.fsync(MANIFEST_FILE)
    return len(text)


def read_manifest(target: FileSystem) -> dict[str, int] | None:
    """Parse a backup manifest; ``None`` when absent or unparseable.

    Unparseable is treated like absent (the manifest is corroborating
    evidence, not the backup itself); verification then falls back to
    framing checks alone, as for pre-manifest backups.
    """
    if not target.exists(MANIFEST_FILE):
        return None
    try:
        text = target.read(MANIFEST_FILE).decode("ascii")
        fields = dict(line.split(" ", 1) for line in text.splitlines() if line)
        return {key: int(value) for key, value in fields.items()}
    except Exception:
        return None


def backup_database(db: Database, target: FileSystem) -> dict[str, int]:
    """Copy the live database's current consistent state to ``target``.

    Returns ``{file name: bytes copied}``.  The target directory is
    cleared first — a backup directory holds one backup.
    """
    from repro.core.log import LogScan

    with db.lock.update():
        version = db.version
        names = [checkpoint_name(version), logfile_name(version)]
        copied: dict[str, int] = {}
        for name in list(target.list_names()):
            target.delete(name)
        for name in names:
            payload = db.fs.read(name)
            target.write(name, payload)
            target.fsync(name)
            copied[name] = len(payload)
        # The manifest scans the *copy* (the source may keep moving once
        # the lock drops) and goes in before the marker.
        scan = LogScan(target, logfile_name(version))
        entries = sum(1 for _ in scan)
        copied[MANIFEST_FILE] = _write_manifest(
            target,
            version,
            target.size(logfile_name(version)),
            entries,
            scan.outcome.last_seq,
        )
        # The marker goes last: a half-finished backup has no version
        # file and is recognisably incomplete.
        target.write(VERSION_FILE, str(version).encode("ascii"))
        target.fsync(VERSION_FILE)
        copied[VERSION_FILE] = len(str(version))
    target.fsync_dir()
    return copied


def verify_backup(target: FileSystem) -> int:
    """Validate a backup directory; returns the number of log entries.

    Raises :class:`RecoveryError` if the backup is unusable — including a
    log that was shortened after the copy was taken, which the manifest
    (when present) detects even though the remaining frames are valid.
    """
    from repro.core.checkpoint import read_checkpoint
    from repro.core.log import LogScan

    current = read_current_version(target)
    if current is None:
        raise RecoveryError("backup has no committed version")
    read_checkpoint(target, checkpoint_name(current.number))
    scan = LogScan(target, logfile_name(current.number))
    entries = sum(1 for _ in scan)
    if scan.outcome.damage is not None:
        raise RecoveryError(f"backup log damaged: {scan.outcome.damage}")
    manifest = read_manifest(target)
    if manifest is not None:
        found = {
            "version": current.number,
            "log_bytes": target.size(logfile_name(current.number)),
            "log_entries": entries,
            "last_seq": scan.outcome.last_seq,
        }
        for key, expected in manifest.items():
            if key in found and found[key] != expected:
                raise RecoveryError(
                    f"backup does not match its manifest: {key} is "
                    f"{found[key]}, manifest says {expected} (the backup "
                    f"was modified after it was taken)"
                )
    return entries


def emergency_snapshot(target: FileSystem, payload: bytes, version: int) -> None:
    """Write a degraded-mode checkpoint of in-memory state to a spare.

    The spare directory ends up a complete, recoverable database at
    ``version`` with an empty log — exactly what :func:`~repro.core.\
recovery.recover` expects — holding the pickled root ``payload``.  The
    target is cleared first: the spare holds the latest emergency state,
    nothing else.
    """
    from repro.core.checkpoint import write_checkpoint

    for name in list(target.list_names()):
        target.delete(name)
    write_checkpoint(target, checkpoint_name(version), payload)
    target.create(logfile_name(version))
    target.fsync(logfile_name(version))
    target.write(VERSION_FILE, str(version).encode("ascii"))
    target.fsync(VERSION_FILE)
    target.fsync_dir()

