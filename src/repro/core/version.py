"""The version-file protocol: atomic checkpoint switch over a plain FS.

This is a faithful implementation of the paper's section-3 recipe:

    In the normal quiescent state the directory contains a version-
    numbered checkpoint, with a file title such as ``checkpoint35``, a
    matching log file named ``logfile35``, and a file named ``version``
    containing the characters "35".  We switch to a new checkpoint by
    writing it to the file ``checkpoint36``, creating an empty file
    ``logfile36``, then writing the characters "36" to a new file called
    ``newversion``.  This is the commit point (after an appropriate number
    of Unix "fsync" calls).  Finally, we delete ``checkpoint35``,
    ``logfile35`` and ``version``, then rename ``newversion`` to be
    ``version``.

    On a restart, we read the version number from ``newversion`` if the
    file exists and has a valid version number in it, or from ``version``
    otherwise, and delete any redundant files.

With ``keep_versions > 1`` the switch retains older checkpoint/log pairs,
the paper's hard-error redundancy option: "recovery from a hard error in
the checkpoint could be achieved by keeping one previous checkpoint and
log".
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.storage.errors import HardError, StorageError
from repro.storage.interface import FileSystem

VERSION_FILE = "version"
NEWVERSION_FILE = "newversion"
_NUMBERED = re.compile(r"^(checkpoint|logfile)(\d+)$")


def checkpoint_name(version: int) -> str:
    """The checkpoint file name for a version number."""
    return f"checkpoint{version}"


def logfile_name(version: int) -> str:
    """The log file name for a version number."""
    return f"logfile{version}"


def numbered_files(fs: FileSystem) -> dict[int, set[str]]:
    """Map version number → the kinds ("checkpoint"/"logfile") present."""
    found: dict[int, set[str]] = {}
    for name in fs.list_names():
        match = _NUMBERED.match(name)
        if match:
            found.setdefault(int(match.group(2)), set()).add(match.group(1))
    return found


def complete_versions(fs: FileSystem) -> list[int]:
    """Versions with both a checkpoint and a log file, ascending."""
    return sorted(
        version
        for version, kinds in numbered_files(fs).items()
        if kinds == {"checkpoint", "logfile"}
    )


@dataclass(frozen=True)
class CurrentVersion:
    """The version a restart should load, and which file named it."""

    number: int
    source: str  # "newversion" or "version"


def _read_version_number(fs: FileSystem, name: str) -> int | None:
    """Parse a version file; None for missing, unreadable or invalid."""
    if not fs.exists(name):
        return None
    try:
        text = fs.read(name)
    except HardError:
        return None
    if not text or not text.isdigit():
        return None
    return int(text)


def read_current_version(fs: FileSystem) -> CurrentVersion | None:
    """The paper's restart rule: prefer a valid ``newversion``.

    A version file is only honoured if its checkpoint and log files both
    exist — the protocol guarantees they do for any committed version, so
    a dangling number means the file is stale or damaged and the other
    version file is consulted instead.
    """
    for source in (NEWVERSION_FILE, VERSION_FILE):
        number = _read_version_number(fs, source)
        if number is None:
            continue
        if fs.exists(checkpoint_name(number)) and fs.exists(logfile_name(number)):
            return CurrentVersion(number, source)
    return None


def commit_new_version(fs: FileSystem, version: int) -> None:
    """Write and fsync ``newversion`` — the switch's commit point.

    The caller must already have written and fsynced the new checkpoint
    and its empty log file.
    """
    if fs.exists(NEWVERSION_FILE):
        raise StorageError("newversion already exists; previous switch unfinished")
    fs.write(NEWVERSION_FILE, str(version).encode("ascii"))
    fs.fsync(NEWVERSION_FILE)


def finalize_switch(fs: FileSystem, version: int, keep_versions: int = 1) -> None:
    """The post-commit tidy-up: delete superseded files, install ``version``.

    Crash-safe at every step: until the rename completes, restarts are
    served by ``newversion``; afterwards by ``version``.  ``keep_versions``
    counts how many committed checkpoint/log pairs remain (1 = current
    only; 2 = current + previous for hard-error redundancy).
    """
    if keep_versions < 1:
        raise ValueError("keep_versions must be at least 1")
    keep = _versions_to_keep(fs, version, keep_versions)
    for number, kinds in numbered_files(fs).items():
        if number in keep:
            continue
        for kind in kinds:
            fs.delete_if_exists(f"{kind}{number}")
    fs.delete_if_exists(VERSION_FILE)
    fs.rename(NEWVERSION_FILE, VERSION_FILE)
    fs.fsync_dir()


def cleanup_after_restart(
    fs: FileSystem, current: CurrentVersion, keep_versions: int = 1
) -> None:
    """Delete redundant files left by an interrupted switch.

    If the crash landed between the commit point and the rename, this
    *completes* the interrupted switch; if it landed before the commit
    point, it deletes the partially written next version.
    """
    keep = _versions_to_keep(fs, current.number, keep_versions)
    for number, kinds in numbered_files(fs).items():
        if number in keep:
            continue
        for kind in kinds:
            fs.delete_if_exists(f"{kind}{number}")
    if current.source == NEWVERSION_FILE:
        # Crash after commit, before rename: finish the job.
        fs.delete_if_exists(VERSION_FILE)
        fs.rename(NEWVERSION_FILE, VERSION_FILE)
    else:
        # Any surviving newversion is stale or invalid.
        fs.delete_if_exists(NEWVERSION_FILE)
    fs.fsync_dir()


def _versions_to_keep(fs: FileSystem, current: int, keep_versions: int) -> set[int]:
    """The current version plus up to ``keep_versions - 1`` predecessors.

    Only *complete* older pairs count as redundancy; partial leftovers of
    an interrupted checkpoint are never worth keeping.
    """
    keep = {current}
    if keep_versions > 1:
        older = [v for v in complete_versions(fs) if v < current]
        keep.update(older[-(keep_versions - 1) :])
    return keep
