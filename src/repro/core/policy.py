"""Checkpoint policies: *when* to pay the checkpoint cost.

The paper leaves this to "the implementor (or the system manager)", noting
the trade-off: frequent checkpoints block updates and burn time; rare
checkpoints grow the log, and "restart time (which is mostly proportional
to the log size) will be too long".  Their conclusion for 10k updates/day
is "a simple scheme of making a checkpoint each night will suffice".

The database consults its policy after every committed update.  Policies
read, never mutate, the database.  Experiment E8 sweeps these policies to
regenerate the availability-versus-restart-time trade-off curve.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.database import Database


class CheckpointPolicy:
    """Decides, after each committed update, whether to checkpoint now."""

    def should_checkpoint(self, db: "Database") -> bool:
        raise NotImplementedError

    def note_checkpoint(self, db: "Database") -> None:
        """Called after any checkpoint completes (manual ones included)."""


class Never(CheckpointPolicy):
    """Only explicit :meth:`Database.checkpoint` calls (the default)."""

    def should_checkpoint(self, db: "Database") -> bool:
        return False


class EveryNUpdates(CheckpointPolicy):
    """Checkpoint after every ``n`` committed updates."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be at least 1")
        self.n = n

    def should_checkpoint(self, db: "Database") -> bool:
        return db.entries_since_checkpoint >= self.n


class LogSizeThreshold(CheckpointPolicy):
    """Checkpoint when the log exceeds ``max_bytes`` on disk."""

    def __init__(self, max_bytes: int) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes

    def should_checkpoint(self, db: "Database") -> bool:
        return db.log_size() >= self.max_bytes


class Periodic(CheckpointPolicy):
    """Checkpoint when ``interval_seconds`` have passed on the db's clock.

    Under a simulated clock, ``Periodic(86400.0)`` is exactly the paper's
    "checkpoint each night" once a day of virtual time has been charged.
    """

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.interval_seconds = interval_seconds

    def should_checkpoint(self, db: "Database") -> bool:
        return db.clock.now() - db.last_checkpoint_time >= self.interval_seconds


class AnyOf(CheckpointPolicy):
    """Checkpoint when any member policy says so."""

    def __init__(self, *policies: CheckpointPolicy) -> None:
        if not policies:
            raise ValueError("AnyOf needs at least one policy")
        self.policies = policies

    def should_checkpoint(self, db: "Database") -> bool:
        return any(policy.should_checkpoint(db) for policy in self.policies)


def nightly() -> Periodic:
    """The paper's recommendation: one checkpoint per (virtual) day."""
    return Periodic(86_400.0)
