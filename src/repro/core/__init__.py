"""The database core: the paper's main-memory log+checkpoint technique."""

from repro.core.audit import (
    ArchivingDatabase,
    AuditReader,
    AuditRecord,
    archive_name,
    archived_epochs,
)
from repro.core.checkpoint import (
    CheckpointDamaged,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.backup import (
    backup_database,
    emergency_snapshot,
    read_manifest,
    verify_backup,
)
from repro.core.commit import DURABILITY_MODES, CommitCoordinator, CommitPolicy
from repro.core.daemon import CheckpointDaemon, GroupCommitDaemon
from repro.core.database import Database
from repro.core.health import (
    DEGRADED_READ_ONLY,
    FAILED,
    HEALTHY,
    RECOVERING,
    HealthMonitor,
)
from repro.core.mirror import MirroringDatabase, restore_from_mirror
from repro.core.sharding import (
    HASH_SPACE,
    ShardedDatabase,
    default_hash,
    encode_shard_key,
    shard_index,
    shard_ranges,
)
from repro.core.errors import (
    CheckpointFailed,
    DatabaseClosed,
    DatabaseDegraded,
    DatabaseError,
    DatabasePoisoned,
    LogDamaged,
    OperationExists,
    PreconditionFailed,
    RecoveryError,
    UnknownOperation,
)
from repro.core.log import LogEntry, LogScan, LogWriter, ScanOutcome, encode_entry
from repro.core.policy import (
    AnyOf,
    CheckpointPolicy,
    EveryNUpdates,
    LogSizeThreshold,
    Never,
    Periodic,
    nightly,
)
from repro.core.recovery import RecoveredState, recover
from repro.core.stats import DatabaseStats, PhaseBreakdown
from repro.core.transactions import (
    DEFAULT_OPERATIONS,
    Operation,
    OperationRegistry,
    operation,
)
from repro.core.version import (
    CurrentVersion,
    checkpoint_name,
    cleanup_after_restart,
    commit_new_version,
    complete_versions,
    finalize_switch,
    logfile_name,
    numbered_files,
    read_current_version,
)

__all__ = [
    "AnyOf",
    "ArchivingDatabase",
    "AuditReader",
    "AuditRecord",
    "CheckpointDaemon",
    "CheckpointDamaged",
    "CheckpointFailed",
    "CommitCoordinator",
    "CommitPolicy",
    "DEGRADED_READ_ONLY",
    "DURABILITY_MODES",
    "FAILED",
    "GroupCommitDaemon",
    "HEALTHY",
    "RECOVERING",
    "HealthMonitor",
    "MirroringDatabase",
    "ShardedDatabase",
    "restore_from_mirror",
    "archive_name",
    "archived_epochs",
    "backup_database",
    "emergency_snapshot",
    "read_manifest",
    "verify_backup",
    "default_hash",
    "encode_shard_key",
    "shard_index",
    "shard_ranges",
    "HASH_SPACE",
    "CheckpointPolicy",
    "CurrentVersion",
    "DEFAULT_OPERATIONS",
    "Database",
    "DatabaseClosed",
    "DatabaseDegraded",
    "DatabaseError",
    "DatabasePoisoned",
    "DatabaseStats",
    "EveryNUpdates",
    "LogDamaged",
    "LogEntry",
    "LogScan",
    "LogSizeThreshold",
    "LogWriter",
    "Never",
    "Operation",
    "OperationExists",
    "OperationRegistry",
    "Periodic",
    "PhaseBreakdown",
    "PreconditionFailed",
    "RecoveredState",
    "RecoveryError",
    "ScanOutcome",
    "UnknownOperation",
    "checkpoint_name",
    "cleanup_after_restart",
    "commit_new_version",
    "complete_versions",
    "encode_entry",
    "finalize_switch",
    "logfile_name",
    "nightly",
    "numbered_files",
    "operation",
    "read_checkpoint",
    "read_current_version",
    "recover",
    "write_checkpoint",
]
