"""The database health state machine for runtime storage faults.

The paper's availability story treats media failure as something recovery
handles *offline*; a live server needs a policy too.  The policy here is a
one-way state machine:

``HEALTHY``
    Normal operation.  Media faults on the log path are retried a bounded
    number of times (a transient fault costs a retry, nothing else).

``DEGRADED_READ_ONLY``
    A fault persisted: the log is sealed, an emergency checkpoint of the
    in-memory state was attempted to a configured spare directory, and
    updates are refused with :class:`~repro.core.errors.DatabaseDegraded`.
    Enquiries keep being served from virtual memory — the paper's core
    property that reads never need the disk.

``FAILED``
    Degradation itself failed (the emergency checkpoint could not be
    written, so the spare holds nothing trustworthy).  Enquiries are still
    served; everything else is refused.

``RECOVERING``
    The paper's way back: "restore the database from another replica".
    A degraded (or failed) node under a
    :class:`~repro.nameserver.recover.ReplicaRecoverer` enters this state
    while a peer's checkpoint and log tail stream in; the single forward
    edge out of it is :meth:`recovered` (→ ``HEALTHY``), and a recovery
    that itself faults falls back via :meth:`recovery_failed`.

The fault transitions are one-way (the process never un-degrades itself)
and idempotent under concurrency: only the first caller performs the
degrade work.  The only path back to ``HEALTHY`` is an explicit replica
recovery — never a spontaneous retry.

Metrics (in the database's registry):

* ``db_health_state`` — gauge: 0 healthy, 1 degraded read-only, 2 failed;
* ``storage_faults_total{op}`` — every media fault seen, including retried
  ones;
* ``db_degradations_total{reason}`` — transitions out of HEALTHY;
* ``db_emergency_checkpoints_total{outcome}`` — spare-directory snapshot
  attempts ("written" / "failed" / "no_spare").

Faulted operations are also annotated on the active trace span (a
``storage_fault`` event), so a trace of a degraded update shows exactly
which disk operation failed.

Every observation and transition is additionally recorded as a
first-class event on the database's :class:`~repro.obs.flight.\
FlightRecorder` (``storage_fault``, ``health_transition``,
``emergency_checkpoint``), so the black box dumped on degradation
contains the full causal story, not just aggregated counters.
"""

from __future__ import annotations

import threading

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import current_span

HEALTHY = "healthy"
DEGRADED_READ_ONLY = "degraded_read_only"
FAILED = "failed"
RECOVERING = "recovering"

#: numeric encoding used by the ``db_health_state`` gauge
HEALTH_CODES = {HEALTHY: 0, DEGRADED_READ_ONLY: 1, FAILED: 2, RECOVERING: 3}


class HealthMonitor:
    """Tracks one database's health state and publishes it as metrics."""

    def __init__(
        self, registry: MetricsRegistry, flight: FlightRecorder | None = None
    ) -> None:
        self._lock = threading.Lock()
        self.state = HEALTHY
        self.cause: str | None = None
        self.flight = flight
        self._gauge = registry.gauge(
            "db_health_state",
            "database health: 0 healthy, 1 degraded read-only, 2 failed, "
            "3 recovering",
        )
        self._faults = registry.counter(
            "storage_faults_total",
            "runtime media faults seen on the storage path",
            labelnames=("op",),
        )
        self._degradations = registry.counter(
            "db_degradations_total",
            "transitions out of the HEALTHY state",
            labelnames=("reason",),
        )
        self._emergency = registry.counter(
            "db_emergency_checkpoints_total",
            "emergency checkpoint attempts to the spare directory",
            labelnames=("outcome",),
        )
        self._gauge.set(HEALTH_CODES[HEALTHY])

    # -- observations ----------------------------------------------------------

    def note_fault(self, op: str, exc: BaseException) -> None:
        """Record one media fault (retried or fatal) on operation ``op``."""
        self._faults.labels(op=op).inc()
        if self.flight is not None:
            self.flight.record(
                "storage_fault",
                op=op,
                error=type(exc).__name__,
                detail=str(exc),
            )
        span = current_span()
        if span is not None:
            span.event("storage_fault", op=op, error=type(exc).__name__)

    def note_emergency(self, outcome: str) -> None:
        self._emergency.labels(outcome=outcome).inc()
        if self.flight is not None:
            self.flight.record("emergency_checkpoint", outcome=outcome)

    # -- transitions -----------------------------------------------------------

    def degrade(self, cause: str, reason: str = "media_fault") -> bool:
        """HEALTHY → DEGRADED_READ_ONLY; returns whether *this* call won.

        Only the winner performs the degrade work (sealing the log,
        emergency checkpoint); losers observe the state and refuse.
        """
        with self._lock:
            if self.state != HEALTHY:
                return False
            self.state = DEGRADED_READ_ONLY
            self.cause = cause
        self._gauge.set(HEALTH_CODES[DEGRADED_READ_ONLY])
        self._degradations.labels(reason=reason).inc()
        if self.flight is not None:
            self.flight.record(
                "health_transition",
                from_state=HEALTHY,
                to_state=DEGRADED_READ_ONLY,
                cause=cause,
                reason=reason,
            )
        return True

    def fail(self, cause: str) -> None:
        """Any state → FAILED (degradation itself went wrong)."""
        with self._lock:
            if self.state == FAILED:
                return
            previous = self.state
            self.state = FAILED
            self.cause = cause
        self._gauge.set(HEALTH_CODES[FAILED])
        if self.flight is not None:
            self.flight.record(
                "health_transition",
                from_state=previous,
                to_state=FAILED,
                cause=cause,
            )

    # -- recovery --------------------------------------------------------------

    def begin_recovery(self, source: str) -> bool:
        """DEGRADED_READ_ONLY | FAILED → RECOVERING; False if not eligible.

        ``source`` names the peer (or mechanism) performing the repair;
        it lands in the flight record so the black box shows who healed
        us.  A HEALTHY monitor refuses — recovery of a healthy node would
        silently discard its unpropagated local updates.
        """
        with self._lock:
            if self.state not in (DEGRADED_READ_ONLY, FAILED):
                return False
            previous = self.state
            self.state = RECOVERING
            self.cause = f"recovering from {source}"
        self._gauge.set(HEALTH_CODES[RECOVERING])
        if self.flight is not None:
            self.flight.record(
                "health_transition",
                from_state=previous,
                to_state=RECOVERING,
                cause=self.cause,
            )
        return True

    def recovered(self) -> bool:
        """RECOVERING → HEALTHY: the replica repair completed and cut over."""
        with self._lock:
            if self.state != RECOVERING:
                return False
            self.state = HEALTHY
            self.cause = None
        self._gauge.set(HEALTH_CODES[HEALTHY])
        if self.flight is not None:
            self.flight.record(
                "health_transition",
                from_state=RECOVERING,
                to_state=HEALTHY,
                cause="replica_recovery",
            )
        return True

    def recovery_failed(self, cause: str) -> bool:
        """RECOVERING → DEGRADED_READ_ONLY: the repair itself faulted.

        The node is no worse off than before the attempt — the staged
        files are invisible to restarts — so it returns to degraded
        read-only rather than FAILED, and a later attempt may succeed.
        """
        with self._lock:
            if self.state != RECOVERING:
                return False
            self.state = DEGRADED_READ_ONLY
            self.cause = cause
        self._gauge.set(HEALTH_CODES[DEGRADED_READ_ONLY])
        if self.flight is not None:
            self.flight.record(
                "health_transition",
                from_state=RECOVERING,
                to_state=DEGRADED_READ_ONLY,
                cause=cause,
            )
        return True

    # -- views -----------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return self.state == HEALTHY

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {"state": self.state, "cause": self.cause}
