"""Single-shot update transactions.

The paper's databases support exactly one kind of update: a *single-shot
transaction* — "there are no update transactions composed of multiple
client actions, and the database implementation does not make any
intermediate state visible to its clients".

We model one as a named, registered :class:`Operation` with two phases
that mirror the paper's three-step update protocol:

1. ``precondition(root, *args, **kwargs)`` — runs under the *update* lock,
   reads the virtual memory structure, raises
   :class:`~repro.core.errors.PreconditionFailed` to abort cleanly before
   anything reaches the disk;
2. ``apply(root, *args, **kwargs)`` — runs under the *exclusive* lock,
   after the log entry is durable, and performs the mutation.

The **replay contract**: ``apply`` must be a deterministic function of the
root and its (pickleable) arguments, because recovery replays it from the
log.  No wall-clock reads, no randomness, no I/O — pass such values in as
arguments instead.  Preconditions are *not* re-run during replay: the log
only contains updates whose preconditions passed, and replaying them
against the same earlier state must succeed by determinism.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.errors import OperationExists, UnknownOperation


class Operation:
    """A named single-shot transaction type."""

    def __init__(
        self,
        name: str,
        apply: Callable,
        precondition: Callable | None = None,
    ) -> None:
        if not name:
            raise ValueError("operation name must be non-empty")
        self.name = name
        self.apply = apply
        self._precondition = precondition

    def precondition(self, fn: Callable) -> Callable:
        """Decorator attaching a precondition to this operation.

        >>> ops = OperationRegistry()
        >>> @ops.operation("credit")
        ... def credit(root, account, amount):
        ...     root[account] += amount
        >>> @credit.precondition
        ... def _credit_pre(root, account, amount):
        ...     if account not in root:
        ...         raise PreconditionFailed(f"no account {account!r}")
        """
        self._precondition = fn
        return fn

    def check(self, root: object, *args: object, **kwargs: object) -> None:
        """Run the precondition (a no-op when none is attached)."""
        if self._precondition is not None:
            self._precondition(root, *args, **kwargs)

    def __call__(self, root: object, *args: object, **kwargs: object) -> object:
        return self.apply(root, *args, **kwargs)

    def __repr__(self) -> str:
        return f"Operation({self.name!r})"


class OperationRegistry:
    """The set of update operations a database understands.

    The registry must be identical (same names, same semantics) in every
    process that replays a given log — it is the schema of the log.
    """

    def __init__(self) -> None:
        self._operations: dict[str, Operation] = {}
        self._lock = threading.Lock()

    def operation(self, name: str | None = None) -> Callable[[Callable], Operation]:
        """Decorator registering a function as an operation's apply phase."""

        def decorate(fn: Callable) -> Operation:
            return self.register(name if name is not None else fn.__name__, fn)

        return decorate

    def register(
        self,
        name: str,
        apply: Callable,
        precondition: Callable | None = None,
    ) -> Operation:
        op = Operation(name, apply, precondition)
        with self._lock:
            if name in self._operations:
                raise OperationExists(name)
            self._operations[name] = op
        return op

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._operations:
                raise UnknownOperation(name)
            del self._operations[name]

    def get(self, name: str) -> Operation:
        with self._lock:
            op = self._operations.get(name)
        if op is None:
            raise UnknownOperation(name)
        return op

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._operations

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._operations)


#: Default registry used by databases constructed without an explicit one.
DEFAULT_OPERATIONS = OperationRegistry()


def operation(name: str | None = None) -> Callable[[Callable], Operation]:
    """Module-level convenience: register into :data:`DEFAULT_OPERATIONS`."""
    return DEFAULT_OPERATIONS.operation(name)
