"""File directories over a sharded database (the paper's §7 example).

    …it seems likely that many larger databases (for example the
    directories of a large file system) could be handled by considering
    them as multiple separate databases for the purpose of writing
    checkpoints.

``DirectoryService`` stores file-system directory metadata — not file
contents — sharded by top-level directory, so checkpointing one volume's
metadata never blocks operations on another's.  Entries are typed
records; timestamps and inode numbers are passed in as arguments (never
read from the environment inside an operation: the replay contract).

A deliberate, documented limitation mirrors the design's semantics:
renames *across shards* are two single-shot transactions (unlink +
create), not one — the library offers no cross-database transactions,
exactly as the paper's technique offers none.
"""

from __future__ import annotations

from repro.core.errors import PreconditionFailed
from repro.core.sharding import ShardedDatabase
from repro.core.transactions import OperationRegistry
from repro.pickles import pickleable
from repro.storage.interface import FileSystem


class FileDirError(PreconditionFailed):
    """A directory operation's precondition failed."""


@pickleable(name="apps.FileEntry")
class FileEntry:
    """Metadata for one directory entry."""

    def __init__(self, kind: str, inode: int, size: int, mtime: float) -> None:
        self.kind = kind  # "file" | "dir"
        self.inode = inode
        self.size = size
        self.mtime = mtime

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "inode": self.inode,
            "size": self.size,
            "mtime": self.mtime,
        }

    def __repr__(self) -> str:
        return f"FileEntry({self.kind}, ino={self.inode}, {self.size}B)"


FILEDIR_OPS = OperationRegistry()


def _split(path: str) -> list[str]:
    parts = [part for part in path.split("/") if part]
    if not parts:
        raise FileDirError(f"bad path {path!r}")
    return parts


def _walk_to_parent(root: dict, parts: list[str]) -> dict:
    """The containing directory's entry table, or raise."""
    table = root["tree"]
    for depth, part in enumerate(parts[:-1]):
        entry = table.get(part)
        if entry is None or not isinstance(entry, dict):
            raise FileDirError(
                f"no such directory: {'/'.join(parts[: depth + 1])}"
            )
        table = entry
    return table


@FILEDIR_OPS.operation("fd_mkdir")
def _mkdir(root, path):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    table[parts[-1]] = {}


@_mkdir.precondition
def _mkdir_pre(root, path):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    if parts[-1] in table:
        raise FileDirError(f"{path!r} already exists")


@FILEDIR_OPS.operation("fd_create")
def _create(root, path, inode, size, mtime):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    table[parts[-1]] = FileEntry("file", inode, size, mtime)


@_create.precondition
def _create_pre(root, path, inode, size, mtime):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    if parts[-1] in table:
        raise FileDirError(f"{path!r} already exists")


@FILEDIR_OPS.operation("fd_update")
def _update(root, path, size, mtime):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    entry = table[parts[-1]]
    entry.size = size
    entry.mtime = mtime


@_update.precondition
def _update_pre(root, path, size, mtime):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    entry = table.get(parts[-1])
    if not isinstance(entry, FileEntry):
        raise FileDirError(f"{path!r} is not a file")


@FILEDIR_OPS.operation("fd_unlink")
def _unlink(root, path):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    del table[parts[-1]]


@_unlink.precondition
def _unlink_pre(root, path):
    parts = _split(path)
    table = _walk_to_parent(root, parts)
    entry = table.get(parts[-1])
    if entry is None:
        raise FileDirError(f"no such entry: {path!r}")
    if isinstance(entry, dict) and entry:
        raise FileDirError(f"directory {path!r} is not empty")


@FILEDIR_OPS.operation("fd_rename")
def _rename(root, old_path, new_path):
    old_parts = _split(old_path)
    new_parts = _split(new_path)
    source = _walk_to_parent(root, old_parts)
    entry = source.pop(old_parts[-1])
    destination = _walk_to_parent(root, new_parts)
    destination[new_parts[-1]] = entry


@_rename.precondition
def _rename_pre(root, old_path, new_path):
    old_parts = _split(old_path)
    new_parts = _split(new_path)
    source = _walk_to_parent(root, old_parts)
    if old_parts[-1] not in source:
        raise FileDirError(f"no such entry: {old_path!r}")
    destination = _walk_to_parent(root, new_parts)
    if new_parts[-1] in destination:
        raise FileDirError(f"{new_path!r} already exists")


def _fresh_root() -> dict:
    return {"tree": {}}


def _max_inode(table: dict) -> int:
    highest = 0
    for entry in table.values():
        if isinstance(entry, dict):
            highest = max(highest, _max_inode(entry))
        else:
            highest = max(highest, entry.inode)
    return highest


def _top_level(path: str, *rest: object, **kwargs: object) -> str:
    return _split(path)[0]


class DirectoryService:
    """The public API of the file-directory application."""

    def __init__(
        self, fs: FileSystem, num_shards: int = 4, **db_options: object
    ) -> None:
        self.db = ShardedDatabase(
            fs,
            num_shards=num_shards,
            shard_key=_top_level,
            initial=_fresh_root,
            operations=FILEDIR_OPS,
            **db_options,
        )
        # Inode numbers live in the entries; recover the allocator's high
        # water mark from the restarted state so restarts never reuse one.
        self._next_inode = 1 + max(
            self.db.enquire_all(lambda root: _max_inode(root["tree"])),
            default=0,
        )

    # -- updates --------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        self.db.update("fd_mkdir", path)

    def create(self, path: str, size: int = 0, mtime: float = 0.0) -> int:
        """Create a file entry; returns the inode number assigned."""
        inode = self._next_inode
        self._next_inode += 1
        self.db.update("fd_create", path, inode, size, mtime)
        return inode

    def update(self, path: str, size: int, mtime: float) -> None:
        self.db.update("fd_update", path, size, mtime)

    def unlink(self, path: str) -> None:
        self.db.update("fd_unlink", path)

    def rename(self, old_path: str, new_path: str) -> None:
        """Rename; cross-shard renames are two transactions (documented)."""
        if self.db.shard_of(old_path) == self.db.shard_of(new_path):
            self.db.update("fd_rename", old_path, new_path)
            return
        entry = self.stat(old_path)
        if entry["kind"] != "file":
            raise FileDirError(
                f"cross-volume rename of directories is not supported "
                f"({old_path!r} -> {new_path!r})"
            )
        self.db.update(
            "fd_create", new_path, entry["inode"], entry["size"], entry["mtime"]
        )
        self.db.update("fd_unlink", old_path)

    # -- enquiries ------------------------------------------------------------

    def stat(self, path: str) -> dict:
        parts = _split(path)

        def read(root, _path):
            table = _walk_to_parent(root, parts)
            entry = table.get(parts[-1])
            if entry is None:
                raise FileDirError(f"no such entry: {path!r}")
            if isinstance(entry, dict):
                return {"kind": "dir", "entries": len(entry)}
            return entry.as_dict()

        return self.db.enquire(read, path)

    def listdir(self, path: str = "") -> list[str]:
        if not path:
            # The root spans all shards.
            return sorted(
                name
                for names in self.db.enquire_all(lambda root: list(root["tree"]))
                for name in names
            )
        parts = _split(path)

        def read(root, _path):
            parent = _walk_to_parent(root, parts)
            entry = parent.get(parts[-1])
            if not isinstance(entry, dict):
                raise FileDirError(f"{path!r} is not a directory")
            return sorted(entry)

        return self.db.enquire(read, path)

    def exists(self, path: str) -> bool:
        try:
            self.stat(path)
            return True
        except FileDirError:
            return False

    def total_entries(self) -> int:
        def count(table: dict) -> int:
            total = 0
            for entry in table.values():
                total += 1
                if isinstance(entry, dict):
                    total += count(entry)
            return total

        return sum(self.db.enquire_all(lambda root: count(root["tree"])))

    # -- maintenance ------------------------------------------------------------

    def checkpoint_volume(self, top_level: str) -> int:
        """Checkpoint just the shard holding one top-level directory."""
        return self.db.checkpoint_shard(self.db.shard_of(top_level))

    def checkpoint_all(self) -> list[int]:
        return self.db.checkpoint_all()

    def close(self) -> None:
        self.db.close()
