"""Applications: the paper's section-1 examples, built on the library.

    Examples of these operating system databases include records of user
    accounts, network name servers, network configuration information
    and file directories.

The name server lives in :mod:`repro.nameserver`; this package supplies
the other three as complete applications, each exercising a different
part of the library the way a downstream user would:

* :mod:`repro.apps.accounts` — user accounts: typed pickleable records,
  in-state identifier allocation, rich preconditions;
* :mod:`repro.apps.netconfig` — network configuration with a change
  audit trail (who changed what, replayable point-in-time);
* :mod:`repro.apps.filedir` — file directories over a *sharded* database
  (the paper's own suggestion for this very example).
"""

from repro.apps.accounts import Account, AccountError, AccountRegistry
from repro.apps.accounts_rpc import (
    ACCOUNTS_INTERFACE,
    AccountService,
    RemoteAccountRegistry,
)
from repro.apps.filedir import DirectoryService, FileDirError, FileEntry
from repro.apps.netconfig import NetConfig, NetConfigError

__all__ = [
    "ACCOUNTS_INTERFACE",
    "Account",
    "AccountError",
    "AccountRegistry",
    "AccountService",
    "DirectoryService",
    "FileDirError",
    "FileEntry",
    "NetConfig",
    "NetConfigError",
    "RemoteAccountRegistry",
]
