"""Remote access to the accounts registry, with *static* record marshalling.

Where the name server's interface leans on the ``Pickled`` escape hatch
(its values are genuinely dynamic), the accounts service has a fixed
schema — which is exactly what the RPC package's static marshalling is
for.  ``Account`` crosses the wire as a :class:`~repro.rpc.marshal.RecordOf`
with a declared field list: no type tags, no pickling, and a client/server
schema mismatch fails loudly at the marshalling layer.

    service = AccountService(registry)
    rpc.export(ACCOUNTS_INTERFACE, service)
    remote = RemoteAccountRegistry(transport)
"""

from __future__ import annotations

from repro.apps.accounts import Account, AccountError, AccountRegistry
from repro.rpc import (
    Bool,
    Int,
    Interface,
    ListOf,
    OptionalOf,
    RecordOf,
    RpcClient,
    Str,
    Transport,
    Void,
)

#: the static wire schema of one account record
ACCOUNT_RECORD = RecordOf(
    Account,
    [
        ("name", Str),
        ("uid", Int),
        ("home", Str),
        ("shell", Str),
        ("groups", ListOf(Str)),
        ("disabled", Bool),
    ],
)

ACCOUNTS_INTERFACE = Interface("Accounts", version=1)
ACCOUNTS_INTERFACE.method(
    "create",
    params=[("name", Str), ("home", OptionalOf(Str)), ("shell", Str)],
    returns=Int,
)
ACCOUNTS_INTERFACE.method("remove", params=[("name", Str)], returns=Void)
ACCOUNTS_INTERFACE.method(
    "set_shell", params=[("name", Str), ("shell", Str)], returns=Void
)
ACCOUNTS_INTERFACE.method(
    "set_disabled", params=[("name", Str), ("disabled", Bool)], returns=Void
)
ACCOUNTS_INTERFACE.method("create_group", params=[("group", Str)], returns=Void)
ACCOUNTS_INTERFACE.method(
    "add_to_group", params=[("group", Str), ("name", Str)], returns=Void
)
ACCOUNTS_INTERFACE.method(
    "remove_from_group", params=[("group", Str), ("name", Str)], returns=Void
)
ACCOUNTS_INTERFACE.method(
    "fetch", params=[("name", Str)], returns=ACCOUNT_RECORD
)
ACCOUNTS_INTERFACE.method("names", returns=ListOf(Str))
ACCOUNTS_INTERFACE.method(
    "members_of", params=[("group", Str)], returns=ListOf(Str)
)
ACCOUNTS_INTERFACE.method("by_uid", params=[("uid", Int)], returns=Str)
ACCOUNTS_INTERFACE.error(AccountError)


class AccountService:
    """Server-side adapter: registry methods in interface shape."""

    def __init__(self, registry: AccountRegistry) -> None:
        self.registry = registry

    def create(self, name, home, shell):
        return self.registry.create(name, home=home, shell=shell)

    def remove(self, name):
        self.registry.remove(name)

    def set_shell(self, name, shell):
        self.registry.set_shell(name, shell)

    def set_disabled(self, name, disabled):
        if disabled:
            self.registry.disable(name)
        else:
            self.registry.enable(name)

    def create_group(self, group):
        self.registry.create_group(group)

    def add_to_group(self, group, name):
        self.registry.add_to_group(group, name)

    def remove_from_group(self, group, name):
        self.registry.remove_from_group(group, name)

    def fetch(self, name) -> Account:
        """The whole typed record (statically marshalled on the wire)."""
        data = self.registry.get(name)
        account = Account(data["name"], data["uid"], data["home"], data["shell"])
        account.groups = list(data["groups"])
        account.disabled = data["disabled"]
        return account

    def names(self):
        return self.registry.names()

    def members_of(self, group):
        return self.registry.members_of(group)

    def by_uid(self, uid):
        return self.registry.by_uid(uid)


class RemoteAccountRegistry:
    """Client facade: the registry API over generated stubs."""

    def __init__(self, transport: Transport) -> None:
        self._client = RpcClient(ACCOUNTS_INTERFACE, transport)
        self._proxy = self._client.proxy()

    def create(self, name: str, home: str | None = None, shell: str = "/bin/sh") -> int:
        return self._proxy.create(name, home, shell)

    def remove(self, name: str) -> None:
        self._proxy.remove(name)

    def set_shell(self, name: str, shell: str) -> None:
        self._proxy.set_shell(name, shell)

    def disable(self, name: str) -> None:
        self._proxy.set_disabled(name, True)

    def enable(self, name: str) -> None:
        self._proxy.set_disabled(name, False)

    def create_group(self, group: str) -> None:
        self._proxy.create_group(group)

    def add_to_group(self, group: str, name: str) -> None:
        self._proxy.add_to_group(group, name)

    def remove_from_group(self, group: str, name: str) -> None:
        self._proxy.remove_from_group(group, name)

    def fetch(self, name: str) -> Account:
        return self._proxy.fetch(name)

    def names(self) -> list[str]:
        return self._proxy.names()

    def members_of(self, group: str) -> list[str]:
        return self._proxy.members_of(group)

    def by_uid(self, uid: int) -> str:
        return self._proxy.by_uid(uid)

    def close(self) -> None:
        self._client.close()
