"""Network configuration: hosts, addresses and routes, with change audit.

The third of the paper's section-1 examples ("network configuration
information").  Built on :class:`~repro.core.audit.ArchivingDatabase` so
every configuration change is permanently attributable — the §4 audit
trail applied to the database class that most needs one.

Every update carries a ``changed_by`` argument; the audit query
:meth:`NetConfig.changes` renders the who/what history straight from the
retained logs.
"""

from __future__ import annotations

from repro.core.audit import ArchivingDatabase, AuditReader
from repro.core.errors import PreconditionFailed
from repro.core.transactions import OperationRegistry
from repro.storage.interface import FileSystem


class NetConfigError(PreconditionFailed):
    """A network-configuration precondition failed."""


NETCONFIG_OPS = OperationRegistry()


def _fresh_root() -> dict:
    return {"hosts": {}, "addresses": {}, "routes": {}}


def _valid_address(address: str) -> bool:
    parts = address.split(".")
    if len(parts) != 4:
        return False
    try:
        return all(0 <= int(part) <= 255 for part in parts)
    except ValueError:
        return False


@NETCONFIG_OPS.operation("add_host")
def _add_host(root, hostname, address, changed_by):
    root["hosts"][hostname] = {"address": address, "aliases": []}
    root["addresses"][address] = hostname


@_add_host.precondition
def _add_host_pre(root, hostname, address, changed_by):
    if not hostname:
        raise NetConfigError("empty hostname")
    if hostname in root["hosts"]:
        raise NetConfigError(f"host {hostname!r} already exists")
    if not _valid_address(address):
        raise NetConfigError(f"bad address {address!r}")
    if address in root["addresses"]:
        owner = root["addresses"][address]
        raise NetConfigError(f"address {address} already assigned to {owner!r}")


@NETCONFIG_OPS.operation("remove_host")
def _remove_host(root, hostname, changed_by):
    entry = root["hosts"].pop(hostname)
    del root["addresses"][entry["address"]]


@_remove_host.precondition
def _remove_host_pre(root, hostname, changed_by):
    if hostname not in root["hosts"]:
        raise NetConfigError(f"no host {hostname!r}")


@NETCONFIG_OPS.operation("add_alias")
def _add_alias(root, hostname, alias, changed_by):
    root["hosts"][hostname]["aliases"].append(alias)


@_add_alias.precondition
def _add_alias_pre(root, hostname, alias, changed_by):
    if hostname not in root["hosts"]:
        raise NetConfigError(f"no host {hostname!r}")
    if alias in root["hosts"]:
        raise NetConfigError(f"{alias!r} is a hostname")
    for entry in root["hosts"].values():
        if alias in entry["aliases"]:
            raise NetConfigError(f"alias {alias!r} already in use")


@NETCONFIG_OPS.operation("set_route")
def _set_route(root, destination, gateway, changed_by):
    root["routes"][destination] = gateway


@_set_route.precondition
def _set_route_pre(root, destination, gateway, changed_by):
    if not _valid_address(gateway):
        raise NetConfigError(f"bad gateway {gateway!r}")


@NETCONFIG_OPS.operation("drop_route")
def _drop_route(root, destination, changed_by):
    del root["routes"][destination]


@_drop_route.precondition
def _drop_route_pre(root, destination, changed_by):
    if destination not in root["routes"]:
        raise NetConfigError(f"no route for {destination!r}")


class NetConfig:
    """The public API of the network-configuration application."""

    def __init__(self, fs: FileSystem, **db_options: object) -> None:
        self.fs = fs
        self.db = ArchivingDatabase(
            fs, initial=_fresh_root, operations=NETCONFIG_OPS, **db_options
        )

    # -- updates (all attributed) ----------------------------------------------

    def add_host(self, hostname: str, address: str, changed_by: str) -> None:
        self.db.update("add_host", hostname, address, changed_by=changed_by)

    def remove_host(self, hostname: str, changed_by: str) -> None:
        self.db.update("remove_host", hostname, changed_by=changed_by)

    def add_alias(self, hostname: str, alias: str, changed_by: str) -> None:
        self.db.update("add_alias", hostname, alias, changed_by=changed_by)

    def set_route(self, destination: str, gateway: str, changed_by: str) -> None:
        self.db.update("set_route", destination, gateway, changed_by=changed_by)

    def drop_route(self, destination: str, changed_by: str) -> None:
        self.db.update("drop_route", destination, changed_by=changed_by)

    # -- enquiries ------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """hostname or alias → address."""

        def find(root):
            entry = root["hosts"].get(name)
            if entry is not None:
                return entry["address"]
            for hostname, candidate in root["hosts"].items():
                if name in candidate["aliases"]:
                    return candidate["address"]
            raise NetConfigError(f"cannot resolve {name!r}")

        return self.db.enquire(find)

    def reverse(self, address: str) -> str:
        def find(root):
            hostname = root["addresses"].get(address)
            if hostname is None:
                raise NetConfigError(f"no host at {address}")
            return hostname

        return self.db.enquire(find)

    def hosts(self) -> list[str]:
        return self.db.enquire(lambda root: sorted(root["hosts"]))

    def route_for(self, destination: str) -> str | None:
        return self.db.enquire(lambda root: root["routes"].get(destination))

    def hosts_file(self) -> str:
        """Render /etc/hosts, the artefact this database replaces."""

        def render(root):
            lines = []
            for hostname in sorted(root["hosts"]):
                entry = root["hosts"][hostname]
                names = " ".join([hostname, *entry["aliases"]])
                lines.append(f"{entry['address']}\t{names}")
            return "\n".join(lines)

        return self.db.enquire(render)

    # -- audit ----------------------------------------------------------------

    def changes(self, by: str | None = None) -> list[str]:
        """The attributed change history, optionally filtered by author."""
        reader = AuditReader(self.fs)
        lines = []
        for record in reader.records():
            author = record.kwargs.get("changed_by", "?")
            if by is not None and author != by:
                continue
            arguments = ", ".join(repr(a) for a in record.args)
            lines.append(f"{record.operation}({arguments}) by {author}")
        return lines

    # -- lifecycle ------------------------------------------------------------

    def checkpoint(self) -> int:
        return self.db.checkpoint()

    def close(self) -> None:
        self.db.close()
