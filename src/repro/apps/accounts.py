"""User accounts: the paper's /etc/passwd example, done properly.

A registry of typed account records with group membership, uid
allocation and lifecycle operations — everything /etc/passwd does with a
flat text file, but with single-shot transactional updates, one disk
write each, and crash recovery.

Design points worth noticing as a library consumer:

* ``Account`` is an ordinary class registered with the pickle package; it
  appears in checkpoints and log entries automatically.
* uid allocation happens *inside* the operation, from a counter in the
  root — so replay allocates the same uids (the determinism contract),
  with no coordination outside the update path.
* every operation has a precondition, so invalid requests never reach
  the disk.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.errors import PreconditionFailed
from repro.core.transactions import OperationRegistry
from repro.pickles import pickleable
from repro.storage.interface import FileSystem


class AccountError(PreconditionFailed):
    """An account operation's precondition failed."""


@pickleable(name="apps.Account")
class Account:
    """One user account record."""

    def __init__(self, name: str, uid: int, home: str, shell: str) -> None:
        self.name = name
        self.uid = uid
        self.home = home
        self.shell = shell
        self.groups: list[str] = []
        self.disabled = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "uid": self.uid,
            "home": self.home,
            "shell": self.shell,
            "groups": list(self.groups),
            "disabled": self.disabled,
        }

    def __repr__(self) -> str:
        state = " (disabled)" if self.disabled else ""
        return f"Account({self.name!r}, uid={self.uid}{state})"


ACCOUNT_OPS = OperationRegistry()

_FIRST_UID = 1000


def _fresh_root() -> dict:
    return {"accounts": {}, "groups": {}, "next_uid": _FIRST_UID}


def _need_account(root: dict, name: str) -> Account:
    account = root["accounts"].get(name)
    if account is None:
        raise AccountError(f"no account named {name!r}")
    return account


def _need_group(root: dict, group: str) -> list[str]:
    members = root["groups"].get(group)
    if members is None:
        raise AccountError(f"no group named {group!r}")
    return members


@ACCOUNT_OPS.operation("create_account")
def _create_account(root, name, home=None, shell="/bin/sh"):
    uid = root["next_uid"]
    root["next_uid"] = uid + 1
    account = Account(name, uid, home if home is not None else f"/home/{name}", shell)
    root["accounts"][name] = account
    return uid


@_create_account.precondition
def _create_account_pre(root, name, home=None, shell="/bin/sh"):
    if not name or not name.isidentifier():
        raise AccountError(f"bad account name {name!r}")
    if name in root["accounts"]:
        raise AccountError(f"account {name!r} already exists")


@ACCOUNT_OPS.operation("remove_account")
def _remove_account(root, name):
    account = root["accounts"].pop(name)
    for group in account.groups:
        members = root["groups"].get(group)
        if members and name in members:
            members.remove(name)


@_remove_account.precondition
def _remove_account_pre(root, name):
    _need_account(root, name)


@ACCOUNT_OPS.operation("set_shell")
def _set_shell(root, name, shell):
    root["accounts"][name].shell = shell


@_set_shell.precondition
def _set_shell_pre(root, name, shell):
    account = _need_account(root, name)
    if account.disabled:
        raise AccountError(f"account {name!r} is disabled")


@ACCOUNT_OPS.operation("set_disabled")
def _set_disabled(root, name, disabled):
    root["accounts"][name].disabled = bool(disabled)


@_set_disabled.precondition
def _set_disabled_pre(root, name, disabled):
    _need_account(root, name)


@ACCOUNT_OPS.operation("create_group")
def _create_group(root, group):
    root["groups"][group] = []


@_create_group.precondition
def _create_group_pre(root, group):
    if group in root["groups"]:
        raise AccountError(f"group {group!r} already exists")


@ACCOUNT_OPS.operation("add_member")
def _add_member(root, group, name):
    root["groups"][group].append(name)
    root["accounts"][name].groups.append(group)


@_add_member.precondition
def _add_member_pre(root, group, name):
    members = _need_group(root, group)
    _need_account(root, name)
    if name in members:
        raise AccountError(f"{name!r} is already in {group!r}")


@ACCOUNT_OPS.operation("remove_member")
def _remove_member(root, group, name):
    root["groups"][group].remove(name)
    root["accounts"][name].groups.remove(group)


@_remove_member.precondition
def _remove_member_pre(root, group, name):
    members = _need_group(root, group)
    if name not in members:
        raise AccountError(f"{name!r} is not in {group!r}")


class AccountRegistry:
    """The public API of the accounts application."""

    def __init__(self, fs: FileSystem, **db_options: object) -> None:
        self.db = Database(
            fs, initial=_fresh_root, operations=ACCOUNT_OPS, **db_options
        )

    # -- updates ------------------------------------------------------------

    def create(self, name: str, home: str | None = None, shell: str = "/bin/sh") -> int:
        """Create an account; returns its allocated uid."""
        return self.db.update("create_account", name, home=home, shell=shell)

    def remove(self, name: str) -> None:
        self.db.update("remove_account", name)

    def set_shell(self, name: str, shell: str) -> None:
        self.db.update("set_shell", name, shell)

    def disable(self, name: str) -> None:
        self.db.update("set_disabled", name, True)

    def enable(self, name: str) -> None:
        self.db.update("set_disabled", name, False)

    def create_group(self, group: str) -> None:
        self.db.update("create_group", group)

    def add_to_group(self, group: str, name: str) -> None:
        self.db.update("add_member", group, name)

    def remove_from_group(self, group: str, name: str) -> None:
        self.db.update("remove_member", group, name)

    # -- enquiries ------------------------------------------------------------

    def get(self, name: str) -> dict:
        """A copy of the account record (never the live object)."""
        return self.db.enquire(lambda root: _need_account(root, name).as_dict())

    def uid_of(self, name: str) -> int:
        return self.db.enquire(lambda root: _need_account(root, name).uid)

    def by_uid(self, uid: int) -> str:
        def find(root):
            for account in root["accounts"].values():
                if account.uid == uid:
                    return account.name
            raise AccountError(f"no account with uid {uid}")

        return self.db.enquire(find)

    def names(self) -> list[str]:
        return self.db.enquire(lambda root: sorted(root["accounts"]))

    def members_of(self, group: str) -> list[str]:
        return self.db.enquire(lambda root: sorted(_need_group(root, group)))

    def groups_of(self, name: str) -> list[str]:
        return self.db.enquire(
            lambda root: sorted(_need_account(root, name).groups)
        )

    def is_disabled(self, name: str) -> bool:
        return self.db.enquire(lambda root: _need_account(root, name).disabled)

    def passwd_lines(self) -> list[str]:
        """The classic /etc/passwd rendering, for old times' sake."""

        def render(root):
            return [
                f"{a.name}:x:{a.uid}:{a.uid}::{a.home}:{a.shell}"
                for a in sorted(root["accounts"].values(), key=lambda a: a.uid)
            ]

        return self.db.enquire(render)

    # -- lifecycle ------------------------------------------------------------

    def checkpoint(self) -> int:
        return self.db.checkpoint()

    def close(self) -> None:
        self.db.close()
