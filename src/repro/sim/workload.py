"""Deterministic workload generators for benchmarks and crash tests.

The paper's target envelope: databases up to ~10 MB, bursts of up to 10
updates/second, ~10 000 updates/day, read-mostly.  The generators here
build name populations shaped like the motivating examples (user
accounts, network names, configuration) and emit operation streams with a
configurable enquiry/update mix.  Everything is seeded, so a benchmark
run is reproducible bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

_ORGS = ("dec", "cmu", "mit", "berkeley", "xerox", "bell")
_KINDS = ("hosts", "users", "printers", "volumes", "services")
_FIRST = (
    "andrew", "michael", "edward", "barbara", "butler", "roger",
    "susan", "david", "karen", "robert", "nancy", "james",
)
_LAST = (
    "birrell", "jones", "wobber", "lampson", "needham", "schroeder",
    "levin", "gray", "liskov", "satya", "terry", "swinehart",
)


def random_names(rng: random.Random, count: int, max_depth: int = 4) -> list[tuple[str, ...]]:
    """A hierarchical name population, org/kind/name[/attr]."""
    names: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    while len(names) < count:
        org = rng.choice(_ORGS)
        kind = rng.choice(_KINDS)
        base = f"{rng.choice(_FIRST)}-{rng.choice(_LAST)}-{rng.randrange(10_000)}"
        path: tuple[str, ...] = (org, kind, base)
        if max_depth > 3 and rng.random() < 0.3:
            path = path + (rng.choice(("address", "password", "aliases", "home")),)
        if path in seen:
            continue
        seen.add(path)
        names.append(path)
    return names


def account_record(rng: random.Random, name: str) -> dict:
    """A user-account-shaped value (the paper's /etc/passwd motivation)."""
    return {
        "user": name,
        "uid": rng.randrange(1, 65_536),
        "home": f"/usr/{name}",
        "shell": rng.choice(("/bin/sh", "/bin/csh")),
        "groups": [rng.choice(_ORGS) for _ in range(rng.randrange(1, 4))],
        "quota": rng.randrange(1_000, 100_000),
        "remark": "x" * rng.randrange(10, 120),
    }


def account_records(rng: random.Random, count: int) -> list[tuple[str, dict]]:
    records = []
    for index in range(count):
        name = f"{rng.choice(_FIRST)}{index:05d}"
        records.append((name, account_record(rng, name)))
    return records


@dataclass(frozen=True)
class WorkloadOp:
    """One generated operation."""

    kind: str  # "lookup" | "list" | "bind" | "unbind" | "write_subtree"
    path: tuple[str, ...]
    value: object = None


@dataclass(frozen=True)
class OperationMix:
    """Fractions of each operation kind (enquiries dominate by default)."""

    lookup: float = 0.80
    list_dir: float = 0.10
    bind: float = 0.08
    unbind: float = 0.02

    def __post_init__(self) -> None:
        total = self.lookup + self.list_dir + self.bind + self.unbind
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix fractions sum to {total}, not 1.0")


#: The paper's long-term profile: read-mostly.
READ_MOSTLY = OperationMix()
#: A burst of updates (the 10 tx/s short-term envelope).
UPDATE_HEAVY = OperationMix(lookup=0.10, list_dir=0.0, bind=0.80, unbind=0.10)


class NameWorkload:
    """A seeded name-server workload over a fixed name population."""

    def __init__(
        self,
        seed: int = 1987,
        population: int = 1000,
        value_bytes: int = 200,
    ) -> None:
        self.rng = random.Random(seed)
        self.names = random_names(self.rng, population)
        self.value_bytes = value_bytes

    def value_for(self, path: tuple[str, ...]) -> dict:
        """A value sized so a pickled update entry matches the paper's.

        The filler is derived from the path so that distinct names carry
        distinct strings — otherwise the pickle package's string
        deduplication would shrink the checkpoint far below the intended
        database size.
        """
        filler = f"{'/'.join(path)}#{self.rng.randrange(2**20)}|"
        data = (filler * (self.value_bytes // len(filler) + 1))[: self.value_bytes]
        return {
            "owner": path[-1],
            "created": self.rng.randrange(2**30),
            "data": data,
        }

    def populate(self, server) -> None:
        """Bind the whole population (initial database load)."""
        for path in self.names:
            server.bind(path, self.value_for(path))

    def populate_to_bytes(self, server, target_bytes: int) -> int:
        """Bind names until the checkpoint would be about ``target_bytes``.

        Returns the number of names bound.  Used to build the paper's
        "1 megabyte database".
        """
        from repro.pickles import pickle_write

        bound = 0
        while True:
            if bound >= len(self.names):
                # Population exhausted below target: extend it.
                self.names.extend(random_names(self.rng, 500))
            path = self.names[bound]
            server.bind(path, self.value_for(path))
            bound += 1
            if bound % 200 == 0:
                size = len(pickle_write(server.db.enquire(lambda r: r)))
                if size >= target_bytes:
                    return bound

    def operations(self, count: int, mix: OperationMix = READ_MOSTLY) -> Iterator[WorkloadOp]:
        """A seeded stream of operations over the population."""
        thresholds = (
            mix.lookup,
            mix.lookup + mix.list_dir,
            mix.lookup + mix.list_dir + mix.bind,
        )
        for _ in range(count):
            roll = self.rng.random()
            path = self.rng.choice(self.names)
            if roll < thresholds[0]:
                yield WorkloadOp("lookup", path)
            elif roll < thresholds[1]:
                yield WorkloadOp("list", path[:-1])
            elif roll < thresholds[2]:
                yield WorkloadOp("bind", path, self.value_for(path))
            else:
                yield WorkloadOp("unbind", path)

    def apply(self, server, op: WorkloadOp) -> None:
        """Run one generated op against a NameServer-like object."""
        from repro.nameserver.errors import NameNotFound

        if op.kind == "lookup":
            try:
                server.lookup(op.path)
            except NameNotFound:
                pass  # an earlier unbind removed it; still a valid enquiry
        elif op.kind == "list":
            server.list_dir(op.path)
        elif op.kind == "bind":
            server.bind(op.path, op.value)
        elif op.kind == "unbind":
            try:
                server.unbind(op.path)
            except NameNotFound:
                pass
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")


@dataclass(frozen=True)
class UpdateBurst:
    """The paper's short-term envelope: a burst of updates at a rate."""

    updates: int = 100
    target_rate_per_second: float = 10.0

    def within_envelope(self, achieved_rate: float) -> bool:
        return achieved_rate >= self.target_rate_per_second
