"""The crash-point sweep: model-checked recovery at every disk state.

The paper's recovery argument (section 4) is a universally quantified
claim: *whenever* the system stops — mid-update, mid-checkpoint, mid-page
write — a restart reconstructs a correct state, losing at most the update
whose commit had not reached the disk.  A few hand-picked crash tests
cannot establish that; this harness can, because the simulated substrate
makes every intermediate disk state reachable deterministically:

1. run the scripted workload once with no crash scheduled and count the
   durable disk events it generates (N);
2. for every event k in 1..N and both crash styles (page torn mid-write /
   page completed then halt), run the workload from scratch, crash at k,
   run the restart sequence and compare the recovered state against the
   *model*: the same operations applied to a plain in-memory dict;
3. the recovered state must equal the model after all fully-completed
   steps, or (when the crash hit inside an update) that plus the
   in-flight update — nothing else.

With ``pad_to_page=False`` (the paper's exact log layout) a torn append
may destroy the committed entry sharing its final page, so the acceptance
widens to "some prefix of the completed updates"; the sweep reports how
often that data loss actually occurs (design note D2 in DESIGN.md).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.core.database import Database
from repro.core.transactions import OperationRegistry
from repro.sim.clock import SimClock
from repro.storage.errors import SimulatedCrash
from repro.storage.failures import FailureInjector
from repro.storage.simfs import SimFS

#: A scripted step: ("update", op_name, args tuple) or ("checkpoint",)
Step = tuple


@dataclass
class CrashOutcome:
    """What one crashed run recovered to."""

    crash_at_event: int
    tear: bool
    completed_steps: int
    #: index of the model prefix the recovered state equals (None: no match)
    matched_model_index: int | None
    #: True when a *committed* update was lost (possible only unpadded)
    lost_committed_update: bool
    failure: str | None = None


@dataclass
class CrashSweepResult:
    total_events: int
    outcomes: list[CrashOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[CrashOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def torn_commit_losses(self) -> int:
        return sum(1 for o in self.outcomes if o.lost_committed_update)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} crash states failed "
                f"recovery; first: event {first.crash_at_event} "
                f"tear={first.tear}: {first.failure}"
            )


class CrashPointSweep:
    """Sweeps a scripted update workload over every crash point."""

    def __init__(
        self,
        steps: list[Step],
        operations: OperationRegistry,
        initial: Callable[[], dict] = dict,
        pad_log_to_page: bool = True,
        keep_versions: int = 1,
        tear_modes: tuple[bool, ...] = (True, False),
    ) -> None:
        self.steps = list(steps)
        self.operations = operations
        self.initial = initial
        self.pad_log_to_page = pad_log_to_page
        self.keep_versions = keep_versions
        self.tear_modes = tear_modes
        self._models = self._build_models()

    # -- the model ------------------------------------------------------------

    def _build_models(self) -> list[dict]:
        """Expected root after each prefix of *update* steps.

        ``models[j]`` is the state after the first ``j`` update steps
        (checkpoint steps do not change the state).
        """
        state = self.initial()
        models = [copy.deepcopy(state)]
        for step in self.steps:
            if step[0] == "update":
                _, op_name, args = step
                self.operations.get(op_name).apply(state, *args)
                models.append(copy.deepcopy(state))
            elif step[0] != "checkpoint":
                raise ValueError(f"unknown step kind {step[0]!r}")
        return models

    def _updates_within(self, step_count: int) -> int:
        """Update steps among the first ``step_count`` steps."""
        return sum(1 for s in self.steps[:step_count] if s[0] == "update")

    # -- execution ----------------------------------------------------------------

    def _new_database(self, fs: SimFS) -> Database:
        return Database(
            fs,
            initial=self.initial,
            operations=self.operations,
            pad_log_to_page=self.pad_log_to_page,
            keep_versions=self.keep_versions,
        )

    def _run_script(self, db: Database, progress: list[int]) -> None:
        """Run the script, advancing ``progress[0]`` after each step.

        Progress is reported through a mutable cell so the caller still
        sees how far the script got when a simulated crash unwinds it.
        """
        for step in self.steps:
            if step[0] == "update":
                _, op_name, args = step
                db.update(op_name, *args)
            else:
                db.checkpoint()
            progress[0] += 1

    def count_events(self) -> int:
        """Dry run: total durable disk events the script generates."""
        injector = FailureInjector()
        fs = SimFS(clock=SimClock(), injector=injector)
        self._run_script(self._new_database(fs), [0])
        return injector.events_seen

    def run(self, max_events: int | None = None) -> CrashSweepResult:
        """The full sweep; returns per-crash-state outcomes."""
        total = self.count_events()
        swept = total if max_events is None else min(total, max_events)
        result = CrashSweepResult(total_events=total)
        for crash_at in range(1, swept + 1):
            for tear in self.tear_modes:
                result.outcomes.append(self._run_one(crash_at, tear))
        return result

    def _run_one(self, crash_at: int, tear: bool) -> CrashOutcome:
        injector = FailureInjector(crash_at_event=crash_at, tear=tear)
        fs = SimFS(clock=SimClock(), injector=injector)
        progress = [0]
        crashed = False
        try:
            db = self._new_database(fs)
            self._run_script(db, progress)
        except SimulatedCrash:
            crashed = True
        completed = progress[0]
        if not crashed:
            return CrashOutcome(
                crash_at, tear, completed, len(self._models) - 1, False
            )

        fs.crash()
        injector.disarm()
        try:
            recovered = self._new_database(fs)
            state = recovered.enquire(copy.deepcopy)
        except Exception as exc:
            return CrashOutcome(
                crash_at, tear, completed, None, False,
                failure=f"recovery raised {exc!r}",
            )
        return self._judge(crash_at, tear, completed, state)

    def _judge(
        self, crash_at: int, tear: bool, completed: int, state: dict
    ) -> CrashOutcome:
        updates_done = self._updates_within(completed)
        in_flight_is_update = (
            completed < len(self.steps) and self.steps[completed][0] == "update"
        )
        allowed = {updates_done}
        if in_flight_is_update:
            # The crash may have landed after the commit point: the
            # in-flight update is then durable and must be recovered.
            allowed.add(updates_done + 1)

        matched = next(
            (j for j in range(len(self._models)) if state == self._models[j]),
            None,
        )
        if matched in allowed:
            return CrashOutcome(crash_at, tear, completed, matched, False)
        if (
            not self.pad_log_to_page
            and matched is not None
            and matched < updates_done
        ):
            # The paper's unpadded layout: a torn append destroyed
            # committed entries sharing its page.  Recovery was still
            # *consistent* — an exact earlier prefix — but durability
            # was violated; the sweep reports it rather than failing.
            return CrashOutcome(crash_at, tear, completed, matched, True)
        return CrashOutcome(
            crash_at, tear, completed, matched, False,
            failure=(
                f"recovered state matches model prefix {matched}, "
                f"allowed {sorted(allowed)} (completed steps: {completed})"
            ),
        )
