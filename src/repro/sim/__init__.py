"""Simulation support: clocks, cost models, workloads and crash testing.

The simulation layer is what lets this reproduction regenerate the paper's
1987 measurements on modern hardware: a deterministic :class:`SimClock` is
advanced by the storage substrate (disk latency model) and by the
MicroVAX-calibrated CPU cost model, so "elapsed time" in a benchmark is the
modelled time the paper's hardware would have taken, independent of the
speed of the machine running the benchmark.

The clock and cost model are imported eagerly (the storage substrate needs
them); the workload generators and the crash-point sweep are resolved
lazily via PEP 562 because they sit *above* the database core in the
dependency order — importing them here eagerly would be circular.
"""

from repro.sim.clock import Clock, SimClock, Stopwatch, WallClock
from repro.sim.costmodel import CostModel, MICROVAX_II, NULL_COST_MODEL

_LAZY = {
    "CrashOutcome": "repro.sim.crashtest",
    "CrashPointSweep": "repro.sim.crashtest",
    "CrashSweepResult": "repro.sim.crashtest",
    "IoFaultOutcome": "repro.sim.iosweep",
    "IoFaultSweep": "repro.sim.iosweep",
    "IoSweepResult": "repro.sim.iosweep",
    "NetFaultOutcome": "repro.sim.netsweep",
    "NetSweepResult": "repro.sim.netsweep",
    "NetworkFaultSweep": "repro.sim.netsweep",
    "RecoveryFaultOutcome": "repro.sim.recoversweep",
    "RecoverySweep": "repro.sim.recoversweep",
    "RecoverySweepResult": "repro.sim.recoversweep",
    "RepairOutcome": "repro.sim.iosweep",
    "RepairSweepResult": "repro.sim.iosweep",
    "ReplicaRepairSweep": "repro.sim.iosweep",
    "NameWorkload": "repro.sim.workload",
    "OperationMix": "repro.sim.workload",
    "READ_MOSTLY": "repro.sim.workload",
    "UPDATE_HEAVY": "repro.sim.workload",
    "UpdateBurst": "repro.sim.workload",
    "WorkloadOp": "repro.sim.workload",
    "account_record": "repro.sim.workload",
    "account_records": "repro.sim.workload",
    "random_names": "repro.sim.workload",
    "run_divergence": "repro.sim.iosweep",
}

__all__ = [
    "Clock",
    "CostModel",
    "MICROVAX_II",
    "NULL_COST_MODEL",
    "SimClock",
    "Stopwatch",
    "WallClock",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
