"""The recovery sweep: replica repair checked at every fault point.

The io-fault sweep proves a node degrades safely; the network sweep
proves the RPC layer's at-most-once semantics; this harness proves the
subsystem that *combines* them — the staged
:class:`~repro.nameserver.recover.ReplicaRecoverer` — survives its own
failure modes.  Recovery is a long multi-RPC conversation over exactly
the transports the net sweep quantifies, and it persists a resume point
across every stage boundary, so two quantifications apply:

1. **Network faults.**  Run one full recovery of a blank node from a
   healthy peer over a :class:`~repro.rpc.faults.FaultyTransport` with no
   fault scheduled and count the network events (N = one per request +
   one per reply).  Then, for every event k in 1..N and every fault kind
   (``drop`` / ``sever`` / ``delay``), run the recovery from scratch with
   the fault scheduled at event k.  The client's retransmission plus the
   recoverer's own stage retries must absorb the fault: recovery
   completes, the rebuilt replica's state equals the source's, and no
   history record is applied twice (the re-bound names in the seed make
   a doubled replay visible).  If a run does give up with
   :class:`~repro.nameserver.recover.RecoveryFailed`, the staged files
   must still be invisible to restarts and a second run (the operator
   retry) must finish the job.

2. **Crashes at stage boundaries.**  The recoverer calls its
   ``stage_observer`` at every stage entry and after every durable
   snapshot chunk.  Run once to enumerate those points, then crash
   (raise out of the observer, drop unsynced file state) at each one.
   Before the cutover commit the directory must show *no current
   version* — the half-shipped snapshot is invisible — and a fresh
   recoverer must resume and complete with the source's exact state.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.recoversweep
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.core import HEALTHY
from repro.core.version import read_current_version
from repro.nameserver.client import RemoteNameServer
from repro.nameserver.recover import RecoveryFailed, ReplicaRecoverer
from repro.nameserver.replication import Replica
from repro.nameserver.server import NAMESERVER_INTERFACE
from repro.rpc import (
    FaultyTransport,
    LAN_1987,
    LoopbackTransport,
    NetworkFaultInjector,
    NullNetworkInjector,
    RetryPolicy,
    RpcServer,
)
from repro.sim.clock import SimClock
from repro.storage import SimFS

#: network fault kinds the sweep schedules (see repro.rpc.faults)
SWEEP_KINDS = ("drop", "sever", "delay")

#: The source replica's seed: binds on both sides of a checkpoint, with
#: a re-bound name, so the shipped snapshot and the log tail both carry
#: state and a doubled or dropped replay changes the outcome.
SOURCE_SEED: list[tuple[str, object]] = [
    ("svc/web/alpha", 1),
    ("svc/web/beta", 2),
    ("svc/db/gamma", 3),
    ("cfg/ttl", 60),
]
SOURCE_TAIL: list[tuple[str, object]] = [
    ("svc/web/alpha", 4),
    ("cfg/quota", 5),
]


class SimulatedCrash(Exception):
    """Raised out of the stage observer to model a machine halt."""


@dataclass
class RecoveryFaultOutcome:
    """One faulted recovery run against the source-state model."""

    fault_at: int
    kind: str
    #: "network" or "crash"
    mode: str
    fired: bool = False
    completed: bool = False
    retried_run: bool = False
    resumed: bool = False
    bytes_shipped: int = 0
    entries_replayed: int = 0
    failure: str | None = None


@dataclass
class RecoverySweepResult:
    network_events: int
    crash_points: int
    outcomes: list[RecoveryFaultOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[RecoveryFaultOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def resumed_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} faulted recoveries "
                f"violated the repair invariants; first: {first.mode} "
                f"fault {first.fault_at} kind={first.kind}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"{self.runs} recoveries over {self.network_events} network "
            f"events + {self.crash_points} crash points: "
            f"{len(self.failures)} failures, {self.resumed_runs} resumed "
            f"from a durable stage boundary"
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI job uploads this artifact)."""
        return {
            "network_events": self.network_events,
            "crash_points": self.crash_points,
            "runs": self.runs,
            "failures": len(self.failures),
            "resumed_runs": self.resumed_runs,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class RecoverySweep:
    """Sweeps one blank-node recovery over every fault point."""

    def __init__(
        self,
        kinds: tuple[str, ...] = SWEEP_KINDS,
        chunk_size: int = 96,
        stage_retries: int = 3,
    ) -> None:
        unknown = set(kinds) - set(SWEEP_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.kinds = kinds
        #: small on purpose: several snapshot_chunk RPCs per recovery
        self.chunk_size = chunk_size
        self.stage_retries = stage_retries

    # -- one recovery world ----------------------------------------------------

    def _build(self, injector: NetworkFaultInjector, seed: int):
        """A seeded source replica served over faultable loopback RPC,
        and a blank target directory; returns everything plus a closer."""
        clock = SimClock()
        source = Replica(SimFS(clock=clock), "source", clock=clock)
        for path, value in SOURCE_SEED:
            source.bind(path, value)
        source.checkpoint()
        for path, value in SOURCE_TAIL:
            source.bind(path, value)
        rpc = RpcServer()
        rpc.export(NAMESERVER_INTERFACE, source)
        inner = LoopbackTransport(rpc, clock=clock, network=LAN_1987)
        transport = FaultyTransport(inner, injector, clock=clock)
        peer = RemoteNameServer(
            transport,
            client_id="recoversweep",
            clock=clock,
            rng=random.Random(seed),
            retry=RetryPolicy(
                max_attempts=4,
                base_delay_seconds=0.005,
                max_delay_seconds=0.1,
                deadline_seconds=60.0,
            ),
        )
        fs = SimFS(clock=clock)
        return clock, source, peer, fs, peer.close

    def _recoverer(
        self, fs: SimFS, peer: RemoteNameServer, clock, observer=None
    ) -> ReplicaRecoverer:
        return ReplicaRecoverer(
            fs,
            "reborn",
            [peer],
            chunk_size=self.chunk_size,
            stage_retries=self.stage_retries,
            clock=clock,
            stage_observer=observer,
        )

    def _expected_state(self, source: Replica) -> dict:
        return {
            "/".join(path): value for path, value in source.read_subtree()
        }

    def _judge(
        self,
        outcome: RecoveryFaultOutcome,
        replica,
        source: Replica,
        report,
    ) -> list[str]:
        failures: list[str] = []
        if replica.db.health != HEALTHY:
            failures.append(
                f"recovered replica reports health={replica.db.health!r}"
            )
        recovered = {
            "/".join(path): value for path, value in replica.read_subtree()
        }
        expected = self._expected_state(source)
        if recovered != expected:
            failures.append(
                f"recovered state {recovered!r} != source state "
                f"{expected!r} (a record was lost or applied twice)"
            )
        if replica.summary() != source.summary():
            failures.append(
                f"version vectors diverge after recovery: "
                f"{replica.summary()!r} != {source.summary()!r}"
            )
        outcome.bytes_shipped += report.bytes_shipped
        outcome.entries_replayed += report.entries_replayed
        return failures

    # -- the network-fault quantification --------------------------------------

    def count_events(self) -> int:
        """Dry run: network events one clean recovery generates."""
        injector = NullNetworkInjector()
        _clock, _source, peer, fs, closer = self._build(injector, seed=0)
        try:
            replica = self._recoverer(fs, peer, _clock).run()
            replica.db.close()
        finally:
            closer()
        return injector.events_seen

    def count_crash_points(self) -> int:
        """Dry run: observer callbacks one clean recovery makes."""
        points = [0]

        def observer(_point: str) -> None:
            points[0] += 1

        _clock, _source, peer, fs, closer = self._build(
            NullNetworkInjector(), seed=0
        )
        try:
            replica = self._recoverer(fs, peer, _clock, observer).run()
            replica.db.close()
        finally:
            closer()
        return points[0]

    def run(self, max_events: int | None = None) -> RecoverySweepResult:
        """Both quantifications; returns per-fault-state outcomes."""
        events = self.count_events()
        crash_points = self.count_crash_points()
        swept_events = (
            events if max_events is None else min(events, max_events)
        )
        swept_points = (
            crash_points
            if max_events is None
            else min(crash_points, max_events)
        )
        result = RecoverySweepResult(
            network_events=events, crash_points=crash_points
        )
        for fault_at in range(1, swept_events + 1):
            for kind in self.kinds:
                result.outcomes.append(self._run_network(fault_at, kind))
        for point in range(1, swept_points + 1):
            result.outcomes.append(self._run_crash(point))
        return result

    def _run_network(self, fault_at: int, kind: str) -> RecoveryFaultOutcome:
        injector = NetworkFaultInjector(fault_at_event=fault_at, kind=kind)
        seed = fault_at * 8 + len(kind)
        clock, source, peer, fs, closer = self._build(injector, seed)
        outcome = RecoveryFaultOutcome(fault_at, kind, mode="network")
        failures: list[str] = []
        try:
            recoverer = self._recoverer(fs, peer, clock)
            try:
                replica = recoverer.run()
            except RecoveryFailed:
                # The fault exhausted the retries: allowed, but the
                # staged files must stay invisible and the operator's
                # next attempt must succeed.
                outcome.retried_run = True
                if read_current_version(fs) is not None:
                    failures.append(
                        "a failed recovery left a committed version behind"
                    )
                injector.disarm()
                recoverer = self._recoverer(fs, peer, clock)
                try:
                    replica = recoverer.run()
                except RecoveryFailed as exc:
                    outcome.failure = (
                        f"recovery failed even after the fault cleared: "
                        f"{exc}"
                    )
                    return outcome
            except Exception as exc:  # noqa: BLE001 - any escape is a finding
                outcome.failure = (
                    f"recovery raised outside the typed surface: {exc!r}"
                )
                return outcome
            outcome.completed = True
            outcome.fired = bool(injector.injected)
            outcome.resumed = recoverer.report.resumed
            failures.extend(
                self._judge(outcome, replica, source, recoverer.report)
            )
            replica.db.close()
        finally:
            closer()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome

    # -- the crash-at-stage-boundary quantification ----------------------------

    def _run_crash(self, point: int) -> RecoveryFaultOutcome:
        clock, source, peer, fs, closer = self._build(
            NullNetworkInjector(), seed=point
        )
        outcome = RecoveryFaultOutcome(point, "crash", mode="crash")
        failures: list[str] = []
        seen = [0]
        committed_before_crash = [False]

        def observer(stage_point: str) -> None:
            seen[0] += 1
            if seen[0] == point:
                # Only the DONE callback runs after the cutover commit.
                committed_before_crash[0] = stage_point == "done"
                raise SimulatedCrash(stage_point)

        try:
            try:
                self._recoverer(fs, peer, clock, observer).run()
                outcome.failure = (
                    f"crash point {point} was never reached "
                    f"({seen[0]} observer calls)"
                )
                return outcome
            except SimulatedCrash:
                pass
            outcome.fired = True
            fs.crash()  # unsynced state is gone, like the machine it ran on
            current = read_current_version(fs)
            if not committed_before_crash[0] and current is not None:
                failures.append(
                    f"crash at point {point} left version "
                    f"{current.number} visible before the cutover commit"
                )
            recoverer = self._recoverer(fs, peer, clock)
            try:
                replica = recoverer.run()
            except RecoveryFailed as exc:
                outcome.failure = f"resume after crash failed: {exc}"
                return outcome
            outcome.completed = True
            outcome.resumed = recoverer.report.resumed
            failures.extend(
                self._judge(outcome, replica, source, recoverer.report)
            )
            replica.db.close()
        finally:
            closer()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="fault sweep for staged replica recovery"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N per mode (default: all)",
    )
    parser.add_argument(
        "--kinds", nargs="+", default=list(SWEEP_KINDS),
        choices=list(SWEEP_KINDS),
    )
    parser.add_argument(
        "--report", default=None,
        help="write a JSON report of every outcome to this path",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = RecoverySweep(kinds=tuple(args.kinds))
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  {outcome.mode:7s} {outcome.fault_at:3d} "
                f"{outcome.kind:6s} fired={outcome.fired} "
                f"resumed={outcome.resumed} {status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL {outcome.mode} fault {outcome.fault_at} "
            f"kind={outcome.kind}: {outcome.failure}"
        )
    if args.report is not None:
        with open(args.report, "w", encoding="ascii") as f:
            json.dump(result.report(), f, indent=2)
        print(f"report written to {args.report}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
