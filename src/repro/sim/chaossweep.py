"""The chaos sweep: no single point of failure, checked at every event.

The shard sweep proves the online split survives network faults and
coordinator crashes; this harness removes the last assumption — that
nodes stay up.  The world is a fully simulated *replicated* cluster:
two shards of two replicas each (primary + follower, eager propagation
on every acked write), a coordinator whose map and migration state live
on a three-store :class:`~repro.cluster.quorum.QuorumMapStore`, and a
router binding live traffic through the replica-aware failover paths.

A dry run counts the observable events of one online split (every stage
entry, durable save and per-component copy, with traffic injected at
each).  The sweep then re-runs the split once per ``(victim, event)``
pair, killing that node dead — its transport refuses every call from
that moment — at exactly that event:

* **a follower** dies: the cluster must not notice (writes hit
  primaries; the migration's follower copies are best-effort);
* **a primary** dies (donor or target, possibly mid-split): reads must
  fail over to the follower, writes must surface a typed
  :class:`~repro.cluster.errors.PrimaryFailed`, succeed after the
  coordinator promotes, and the interrupted migration must resume to
  completion against the promoted primary;
* **the coordinator** dies (with one of its three quorum stores lost
  for good): a standby coordinator built over the surviving stores must
  recover the last committed epoch and the migration's resume point
  from a quorum read and finish the split.

Every run then *revives* whatever was killed — a dead node is rebuilt
from scratch on a blank filesystem through
:class:`~repro.nameserver.recover.ReplicaRecoverer` (checkpoint
shipping + log tail from a surviving peer) — and judges the invariants:

* every update acked to a client reads back its latest acked value
  through a fresh router once the cluster has recovered — nothing
  lost, nothing doubled; while a failover is still in flight a read
  may serve an *older* acked value (a freshly promoted primary can
  ack a write its predecessor had not yet mirrored forward — the
  migration FLUSH re-copy converges it), but never a value that was
  never acked;
* a scatter ``count()`` equals the number of distinct live names;
* every component belongs to exactly one *shard*, and every replica of
  that shard holds it;
* after revival all four nodes are HEALTHY, each shard's replicas hold
  identical live state, and every node's role agrees with the map;
* the published epoch advanced past the pre-split epoch.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.chaossweep
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.cluster.coordinator import Coordinator
from repro.cluster.errors import MigrationFailed, PrimaryFailed, WrongShard
from repro.cluster.quorum import MapStore, QuorumMapStore
from repro.cluster.router import ShardRouter
from repro.cluster.shard import SHARD_INTERFACE, RemoteShard, ShardService
from repro.core import HEALTHY
from repro.nameserver.recover import ReplicaRecoverer
from repro.nameserver.replication import Replica
from repro.rpc import RetryPolicy, RpcServer
from repro.rpc.errors import TransportError
from repro.sim.clock import SimClock
from repro.sim.shardsweep import (
    MOVING_COMPONENTS,
    STABLE_COMPONENTS,
    SimulatedCrash,
)
from repro.storage import SimFS

#: the nodes the sweep kills, one per run ("coordinator" is a mode of
#: its own: the acting coordinator halts and one quorum store dies)
KILL_VICTIMS = ("s0", "s0r1", "s1", "s1r1")

#: (shard_id, replica_id) for every node in the simulated cluster
CLUSTER_NODES = (
    ("s0", "s0"),
    ("s0", "s0r1"),
    ("s1", "s1"),
    ("s1", "s1r1"),
)


class _NodeTransport:
    """Loopback to one node's RPC server that dies with the node.

    Liveness and dispatch are both resolved *per call* through the
    world, so a router's cached client keeps working across the node
    being killed (calls fail with a typed, never-delivered
    :class:`TransportError`) and later revived (calls reach the rebuilt
    server).
    """

    def __init__(self, world: "_ChaosWorld", node: str) -> None:
        self.world = world
        self.node = node

    def call(self, request: bytes) -> bytes:
        if self.node in self.world.dead:
            raise TransportError(
                f"node {self.node} is down", maybe_delivered=False
            )
        return self.world.rpcs[self.node].dispatch(request)

    def close(self) -> None:
        pass


class _PeerLink:
    """A replica's view of its in-shard peer, honouring node death.

    Resolves the peer through the world on every call, so reviving a
    node (which replaces its :class:`Replica` object) transparently
    re-points every surviving peer link.
    """

    def __init__(self, world: "_ChaosWorld", node: str) -> None:
        self.world = world
        self.node = node

    def _peer(self):
        if self.node in self.world.dead:
            raise TransportError(
                f"peer {self.node} is down", maybe_delivered=False
            )
        return self.world.replicas[self.node]

    def summary(self):
        return self._peer().summary()

    def updates_since(self, vector):
        return self._peer().updates_since(vector)

    def apply_remote(self, records):
        return self._peer().apply_remote(records)


class _KillableStore(MapStore):
    """A coordinator quorum store that can be lost for good."""

    def __init__(self, fs) -> None:
        super().__init__(fs)
        self.dead = False

    def _check(self) -> None:
        if self.dead:
            raise OSError("coordinator store is down")

    def load_map(self):
        self._check()
        return super().load_map()

    def publish_map(self, shard_map) -> None:
        self._check()
        super().publish_map(shard_map)

    def load_migration(self):
        self._check()
        return super().load_migration()

    def save_migration(self, state) -> None:
        self._check()
        super().save_migration(state)

    def clear_migration(self) -> None:
        self._check()
        super().clear_migration()


@dataclass
class ChaosOutcome:
    """One faulted run against the invariants."""

    victim: str
    fault_at: int
    #: "kill" (a node dies) or "coordinator" (coordinator + one store)
    mode: str
    fired: bool = False
    completed: bool = False
    resumed: bool = False
    migration_retried: bool = False
    promoted: list[str] = field(default_factory=list)
    revived: list[str] = field(default_factory=list)
    acked_updates: int = 0
    write_failovers: int = 0
    read_failovers: int = 0
    stale_reads: int = 0
    new_epoch: int = 0
    failure: str | None = None


@dataclass
class ChaosSweepResult:
    events: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def promotions(self) -> int:
        return sum(len(o.promoted) for o in self.outcomes)

    @property
    def availability(self) -> dict:
        """The report's headline numbers: how degraded service stayed."""
        served = sum(o.acked_updates for o in self.outcomes)
        return {
            "acked_updates": served,
            "write_failovers": sum(o.write_failovers for o in self.outcomes),
            "read_failovers": sum(o.read_failovers for o in self.outcomes),
            "stale_reads": sum(o.stale_reads for o in self.outcomes),
            "promotions": self.promotions,
            "revived_nodes": sum(len(o.revived) for o in self.outcomes),
        }

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} chaos runs violated "
                f"the cluster invariants; first: {first.mode} of "
                f"{first.victim} at event {first.fault_at}: {first.failure}"
            )

    def summary(self) -> str:
        avail = self.availability
        return (
            f"{self.runs} runs over {self.events} events x "
            f"{len(KILL_VICTIMS) + 1} victims: {len(self.failures)} "
            f"failures, {self.promotions} promotions, "
            f"{avail['write_failovers']} write failovers, "
            f"{avail['read_failovers']} read failovers, "
            f"{avail['revived_nodes']} nodes revived"
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI job uploads this artifact)."""
        return {
            "events": self.events,
            "runs": self.runs,
            "failures": len(self.failures),
            "availability": self.availability,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class _ChaosWorld:
    """One replicated cluster: 2 shards x 2 replicas, 3 quorum stores."""

    def __init__(self, seed: int) -> None:
        self.clock = SimClock()
        self.rng = random.Random(seed)
        self.dead: set[str] = set()
        self._client_serial = 0
        self.rpcs: dict[str, RpcServer] = {}
        self.services: dict[str, ShardService] = {}
        self.replicas: dict[str, Replica] = {}

        self.store_fss = [SimFS(clock=self.clock) for _ in range(3)]
        self.stores = [_KillableStore(fs) for fs in self.store_fss]
        self.coordinator = self._coordinator()
        shard_map = self.coordinator.bootstrap(
            {"s0": [("s0", "sim:s0"), ("s0r1", "sim:s0r1")]}
        )
        for shard_id, replica_id in CLUSTER_NODES:
            self._build_node(shard_id, replica_id, shard_map)
        self._wire_peers()
        self.coordinator.add_shard(
            "s1", [("s1", "sim:s1"), ("s1r1", "sim:s1r1")]
        )

        self.router = ShardRouter(
            self.coordinator.current_map(),
            transport_factory=self._transport,
            retry=RetryPolicy(
                max_attempts=2,
                base_delay_seconds=0.001,
                max_delay_seconds=0.01,
                deadline_seconds=60.0,
            ),
            clock=self.clock,
            rng=self.rng,
        )
        #: path -> latest value acked to the client
        self.acked: dict[str, object] = {}
        #: path -> every value ever acked for it (in-flight reads may
        #: legitimately serve an *older* acked value during a failover
        #: window, but never an invented or doubled one)
        self.acked_history: dict[str, set] = {}
        self._sequence = 0
        self.write_failovers = 0
        self.stale_reads = 0
        self.promoted: list[str] = []

    # -- construction ----------------------------------------------------------

    def _coordinator(self) -> Coordinator:
        return Coordinator(
            QuorumMapStore(self.stores),
            shard_client_factory=self._shard_client,
            stage_retries=1,
        )

    def _build_node(self, shard_id: str, replica_id: str, shard_map) -> None:
        replica = Replica(
            SimFS(clock=self.clock), replica_id, clock=self.clock
        )
        self._export(shard_id, replica_id, replica, shard_map)

    def _export(self, shard_id, replica_id, replica, shard_map) -> None:
        service = ShardService(
            replica,
            shard_id,
            shard_map,
            forward_factory=self._forwarder,
            replica_id=replica_id,
            eager_propagate=True,
        )
        rpc = RpcServer()
        rpc.export(SHARD_INTERFACE, service)
        self.replicas[replica_id] = replica
        self.services[replica_id] = service
        self.rpcs[replica_id] = rpc

    def _wire_peers(self) -> None:
        for shard_id, replica_id in CLUSTER_NODES:
            for other_shard, other_id in CLUSTER_NODES:
                if other_shard == shard_id and other_id != replica_id:
                    self.replicas[replica_id].add_peer(
                        _PeerLink(self, other_id)
                    )

    def _transport(self, address: str) -> _NodeTransport:
        return _NodeTransport(self, address.split(":", 1)[1])

    def _client_options(self) -> dict:
        self._client_serial += 1
        return {
            "client_id": f"chaossweep-{self._client_serial}",
            "clock": self.clock,
            "rng": self.rng,
            "retry": RetryPolicy(
                max_attempts=2,
                base_delay_seconds=0.001,
                max_delay_seconds=0.01,
                deadline_seconds=60.0,
            ),
        }

    def _shard_client(self, shard_info) -> RemoteShard:
        return RemoteShard(
            self._transport(shard_info.address), **self._client_options()
        )

    def _forwarder(self, address: str) -> RemoteShard:
        return RemoteShard(
            self._transport(address), **self._client_options()
        )

    # -- chaos -----------------------------------------------------------------

    def kill(self, node: str) -> None:
        self.dead.add(node)

    def kill_store(self, index: int) -> None:
        self.stores[index].dead = True

    def ensure_promoted(self, node: str) -> None:
        """Promote over ``node`` if it still heads its shard's set."""
        if node not in self.dead:
            return
        shard = self.coordinator.current_map().shard_of_replica(node)
        if shard.primary.replica_id != node:
            return  # traffic already forced the promotion
        self.coordinator.promote(shard.shard_id)
        self.promoted.append(shard.shard_id)

    def revive(self, node: str) -> None:
        """Rebuild a killed node from a surviving peer, blank-disk style."""
        shard = self.coordinator.current_map().shard_of_replica(node)
        peers = [
            replica.replica_id
            for replica in shard.replica_set
            if replica.replica_id != node and replica.replica_id not in self.dead
        ]
        source = self.replicas[peers[0]]
        source.checkpoint()  # snapshot shipping needs a current checkpoint
        recoverer = ReplicaRecoverer(
            SimFS(clock=self.clock), node, [source], clock=self.clock
        )
        reborn = recoverer.run()
        self._export(
            shard.shard_id, node, reborn, self.coordinator.current_map()
        )
        for replica in shard.replica_set:
            if replica.replica_id != node:
                reborn.add_peer(_PeerLink(self, replica.replica_id))
        self.dead.discard(node)

    # -- the live workload ------------------------------------------------------

    def seed(self) -> None:
        for component in MOVING_COMPONENTS + STABLE_COMPONENTS:
            self._bind(component)

    def traffic(self, _point: str) -> None:
        """Two writes and one verified read at every observable point.

        Writes that hit a dead primary exercise the full failover path:
        the router surfaces a typed :class:`PrimaryFailed`, the sweep
        (standing in for the supervisor's failover check) asks the
        coordinator to promote, and the retry must succeed.
        """
        cycle = MOVING_COMPONENTS + STABLE_COMPONENTS
        self._bind(cycle[self._sequence % len(cycle)])
        self._bind(MOVING_COMPONENTS[self._sequence % len(MOVING_COMPONENTS)])
        if self.acked:
            path = self.rng.choice(sorted(self.acked))
            got = self.router.lookup(path)
            if got != self.acked[path]:
                # During a failover window a freshly promoted primary may
                # serve a value that an older primary acked but had not yet
                # mirrored forward; the migration FLUSH re-copy heals it and
                # the post-recovery judge demands the latest value.  What a
                # read must NEVER do — even mid-failover — is return a value
                # that was never acked for this path.
                if got not in self.acked_history.get(path, set()):
                    raise AssertionError(
                        f"read of acked {path!r} returned {got!r}, which was "
                        f"never acked (latest acked value was "
                        f"{self.acked[path]!r})"
                    )
                self.stale_reads += 1

    def _bind(self, component: str) -> None:
        self._sequence += 1
        path = f"{component}/addr"
        value = self._sequence
        try:
            self.router.bind(path, value)
        except PrimaryFailed as exc:
            shard = self.coordinator.current_map().shard(exc.shard_id)
            if shard.primary.replica_id in self.dead:
                self.coordinator.promote(shard.shard_id)
                self.promoted.append(shard.shard_id)
            self.router.bind(path, value)
            self.write_failovers += 1
        self.acked[path] = value
        self.acked_history.setdefault(path, set()).add(value)

    # -- judgement --------------------------------------------------------------

    def judge(self, outcome: ChaosOutcome, initial_epoch: int) -> list[str]:
        failures: list[str] = []
        current = self.coordinator.current_map()
        outcome.new_epoch = current.epoch
        outcome.acked_updates = self._sequence
        outcome.write_failovers = self.write_failovers
        outcome.read_failovers = self.router.read_failovers
        outcome.stale_reads = self.stale_reads
        outcome.promoted = list(self.promoted)
        if current.epoch <= initial_epoch:
            failures.append(
                f"epoch never advanced past {initial_epoch} "
                f"(still {current.epoch})"
            )
        if self.dead:
            failures.append(f"nodes still dead: {sorted(self.dead)}")

        fresh = ShardRouter(current, transport_factory=self._transport)
        try:
            for path, want in self.acked.items():
                try:
                    got = fresh.lookup(path)
                except Exception as exc:  # noqa: BLE001 - any escape is a finding
                    failures.append(
                        f"acked update {path!r} unreadable: {exc!r}"
                    )
                    continue
                if got != want:
                    failures.append(
                        f"acked update {path!r} reads {got!r}, latest "
                        f"acked value was {want!r} (lost or doubled)"
                    )
            total = fresh.count()
            if total != len(self.acked):
                failures.append(
                    f"scatter count {total} != {len(self.acked)} distinct "
                    f"live names (double-count or loss across shards)"
                )
        finally:
            fresh.close()

        failures.extend(self._judge_ownership())
        failures.extend(self._judge_replicas(current))
        return failures

    def _judge_ownership(self) -> list[str]:
        """Each component: exactly one owning shard, all its replicas."""
        failures: list[str] = []
        for component in MOVING_COMPONENTS + STABLE_COMPONENTS:
            owners: set[str] = set()
            for service in self.services.values():
                try:
                    present = service.exists((component, "addr"))
                except WrongShard:
                    continue
                owners.add(service.shard_id)
                if not present:
                    failures.append(
                        f"{service.replica_id} owns {component!r} but "
                        f"has no data for it"
                    )
            if len(owners) != 1:
                failures.append(
                    f"component {component!r} owned by {sorted(owners)!r}, "
                    f"expected exactly one shard"
                )
        return failures

    def _judge_replicas(self, current) -> list[str]:
        """Replicas of a shard: healthy, consistent, roles match the map."""
        failures: list[str] = []
        for shard in current.shards:
            entries_by_replica = {}
            for replica in shard.replica_set:
                node = self.replicas[replica.replica_id]
                if node.db.health != HEALTHY:
                    failures.append(
                        f"{replica.replica_id} is {node.db.health}, "
                        f"expected {HEALTHY}"
                    )
                service = self.services[replica.replica_id]
                want_role = shard.role_of(replica.replica_id)
                if service.role() != want_role:
                    failures.append(
                        f"{replica.replica_id} serves as {service.role()}, "
                        f"map epoch {current.epoch} says {want_role}"
                    )
                entries_by_replica[replica.replica_id] = {
                    "/".join(path): value
                    for path, value in node.read_subtree()
                }
            primary_id = shard.primary.replica_id
            truth = entries_by_replica[primary_id]
            for replica_id, entries in entries_by_replica.items():
                if entries != truth:
                    missing = sorted(set(truth) - set(entries))
                    extra = sorted(set(entries) - set(truth))
                    failures.append(
                        f"{replica_id} diverges from primary {primary_id}: "
                        f"missing {missing[:3]!r}, extra {extra[:3]!r}"
                    )
        return failures

    def close(self) -> None:
        self.router.close()


class ChaosSweep:
    """Kills every node (and the coordinator) at every split event."""

    def count_events(self) -> int:
        """Dry run: observer callbacks one clean split makes."""
        world = _ChaosWorld(seed=0)
        points = [0]

        def observe(point: str) -> None:
            world.traffic(point)
            points[0] += 1

        try:
            world.seed()
            world.coordinator.split("s0", "s1", stage_observer=observe)
        finally:
            world.close()
        return points[0]

    def run(self, max_events: int | None = None) -> ChaosSweepResult:
        events = self.count_events()
        swept = events if max_events is None else min(events, max_events)
        result = ChaosSweepResult(events=events)
        for victim in KILL_VICTIMS:
            for fault_at in range(1, swept + 1):
                result.outcomes.append(self._run_kill(victim, fault_at))
        for fault_at in range(1, swept + 1):
            result.outcomes.append(self._run_coordinator(fault_at))
        return result

    # -- one node dies -----------------------------------------------------------

    def _run_kill(self, victim: str, fault_at: int) -> ChaosOutcome:
        world = _ChaosWorld(seed=fault_at * 16 + len(victim))
        outcome = ChaosOutcome(victim, fault_at, mode="kill")
        failures: list[str] = []
        seen = [0]

        def observer(point: str) -> None:
            world.traffic(point)
            seen[0] += 1
            if seen[0] == fault_at and not outcome.fired:
                world.kill(victim)
                outcome.fired = True

        try:
            world.seed()
            initial_epoch = world.coordinator.current_map().epoch
            try:
                world.coordinator.split(
                    "s0", "s1", stage_observer=observer
                )
            except MigrationFailed:
                # The dead node wedged a stage: promote over it (the
                # supervisor's failover check) and resume — the
                # persisted state plus the recomputed map must finish.
                outcome.migration_retried = True
                world.ensure_promoted(victim)
                try:
                    report = world.coordinator.resume_migration(
                        stage_observer=world.traffic
                    )
                except MigrationFailed as exc:
                    outcome.failure = (
                        f"migration failed even after promotion "
                        f"(stage {exc.stage}): {exc}"
                    )
                    return outcome
                outcome.resumed = bool(report is None or report.resumed)
            except Exception as exc:  # noqa: BLE001 - any escape is a finding
                outcome.failure = (
                    f"split raised outside the typed surface: {exc!r}"
                )
                return outcome
            if not outcome.fired:
                outcome.failure = (
                    f"fault point {fault_at} was never reached "
                    f"({seen[0]} observer calls)"
                )
                return outcome
            outcome.completed = True
            for node in sorted(world.dead):
                world.revive(node)
                outcome.revived.append(node)
            # One more round of traffic: the healed cluster must serve.
            world.traffic("post_recovery")
            failures.extend(world.judge(outcome, initial_epoch))
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            outcome.failure = f"run escaped the typed surface: {exc!r}"
            return outcome
        finally:
            world.close()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome

    # -- the coordinator dies ----------------------------------------------------

    def _run_coordinator(self, fault_at: int) -> ChaosOutcome:
        world = _ChaosWorld(seed=fault_at * 16 + 7)
        outcome = ChaosOutcome("coordinator", fault_at, mode="coordinator")
        failures: list[str] = []
        seen = [0]

        def observer(point: str) -> None:
            world.traffic(point)
            seen[0] += 1
            if seen[0] == fault_at:
                raise SimulatedCrash(point)

        try:
            world.seed()
            initial_epoch = world.coordinator.current_map().epoch
            try:
                world.coordinator.split("s0", "s1", stage_observer=observer)
                outcome.failure = (
                    f"crash point {fault_at} was never reached "
                    f"({seen[0]} observer calls)"
                )
                return outcome
            except SimulatedCrash:
                pass
            outcome.fired = True
            # The coordinator's machine halts taking one quorum store
            # with it for good; the survivors lose unsynced state.
            world.kill_store(0)
            for fs in world.store_fss[1:]:
                fs.crash()
            # The standby rebuilds from a quorum of the surviving
            # stores and continues the split.
            world.coordinator = world._coordinator()
            try:
                report = world.coordinator.resume_migration(
                    stage_observer=world.traffic
                )
                if report is None:
                    # Crashed before the first durable save: nothing to
                    # resume, the operator re-issues the split.
                    report = world.coordinator.split(
                        "s0", "s1", stage_observer=world.traffic
                    )
                else:
                    outcome.resumed = True
            except MigrationFailed as exc:
                outcome.failure = f"standby resume failed: {exc}"
                return outcome
            outcome.completed = True
            world.traffic("post_recovery")
            failures.extend(world.judge(outcome, initial_epoch))
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            outcome.failure = f"run escaped the typed surface: {exc!r}"
            return outcome
        finally:
            world.close()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="chaos sweep: kill every node at every split event"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N per victim (default: all)",
    )
    parser.add_argument(
        "--report", default=None,
        help="write a JSON report of every outcome to this path",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = ChaosSweep()
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  {outcome.mode:11s} {outcome.victim:11s} "
                f"{outcome.fault_at:3d} fired={outcome.fired} "
                f"resumed={outcome.resumed} promoted={outcome.promoted} "
                f"revived={outcome.revived} {status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL {outcome.mode} of {outcome.victim} at event "
            f"{outcome.fault_at}: {outcome.failure}"
        )
    if args.report is not None:
        with open(args.report, "w", encoding="ascii") as f:
            json.dump(result.report(), f, indent=2)
        print(f"report written to {args.report}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
