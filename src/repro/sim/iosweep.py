"""The io-fault sweep: runtime media faults checked at every disk event.

The crash sweep (:mod:`repro.sim.crashtest`) quantifies over machine
halts; the network sweep (:mod:`repro.sim.netsweep`) over lost messages.
This harness closes the triangle: it quantifies over *runtime media
faults* — the disk starts refusing operations while the server keeps
running — and model-checks the database's health state machine:

1. run a scripted workload (updates interleaved with a checkpoint) once
   with no fault scheduled and count the file-system data operations it
   performs (N);
2. for every event k in 1..N and every fault kind, run the workload from
   scratch over a :class:`~repro.storage.failures.FaultyFS` with the
   fault scheduled at event k, on a fresh
   :class:`~repro.storage.simfs.SimFS` with a spare directory attached;
3. model-check the outcome:

   * **transient** faults (the device errors once, then recovers) must
     be absorbed: every update acked, the database still HEALTHY, the
     final state equal to the model's;
   * **persistent** faults (hard error or disk-full from event k
     onwards) must degrade the database to DEGRADED_READ_ONLY: further
     updates are refused with ``DatabaseDegraded``, enquiries are still
     served from virtual memory, the in-memory state matches the model
     for the acked prefix, and the emergency snapshot on the spare
     recovers to exactly that state;
   * in *every* run the machine is then halted, the primary directory is
     checked with fsck — repaired with
     :func:`~repro.tools.fsck.repair_directory` if not clean — and
     restarted: the recovered state must contain every acknowledged
     update (no acked update is ever lost);
   * every degraded run must also leave a *black box*: the shared
     flight recorder (fed by the injector, the health monitor and the
     commit pipeline) is dumped to the spare next to the emergency
     snapshot, must survive the spare's crash, must contain the
     injected fault, the degradation transition and the emergency-
     checkpoint event, and must render through
     :mod:`repro.tools.postmortem` without error.

A capacity-budget scenario (:func:`run_capacity`) covers the organic
disk-full path as well: a :class:`SimFS` with a finite page budget fills
up mid-workload, and the same invariants must hold.

Two replica-level scenarios extend the claim from "the node survives"
to "the *replica set* heals the node":

* :class:`ReplicaRepairSweep` re-runs the persistent-fault quantification
  against a name server replica with a healthy peer, and requires every
  degraded run to end with the faulted node back in HEALTHY via the
  staged :class:`~repro.nameserver.recover.ReplicaRecoverer` — peer
  snapshot shipped, log tail caught up, state equal to the peer's;
* :func:`run_divergence` seeds a silent same-stamp divergence between
  two HEALTHY replicas and requires the anti-entropy tree comparison to
  detect and repair it within two sync rounds, shipping only the
  diverged leaves rather than a full snapshot.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.iosweep
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core import (
    CheckpointFailed,
    Database,
    DatabaseDegraded,
    DEGRADED_READ_ONLY,
    HEALTHY,
    OperationRegistry,
)
from repro.nameserver.recover import RecoveryFailed, ReplicaRecoverer
from repro.nameserver.replication import Replica, ResilientReplicaGroup
from repro.nameserver.tree import find_node, parse_path
from repro.obs.flight import BLACKBOX_FILE, FlightRecorder, load_blackbox
from repro.sim.clock import SimClock
from repro.storage import FaultyFS, MediaFaultInjector, SimFS
from repro.tools.fsck import fsck_directory, repair_directory
from repro.tools.postmortem import build_timeline, render_timeline, summarize

#: A scripted step: ("put", key, value) | ("incr", key, by) | ("checkpoint",)
Step = tuple

#: Default workload: updates on both sides of a checkpoint, with
#: non-idempotent increments so a lost or doubled replay cannot hide.
DEFAULT_STEPS: list[Step] = [
    ("put", "alpha", 1),
    ("incr", "alpha", 2),
    ("put", "beta", 10),
    ("checkpoint",),
    ("incr", "beta", 5),
    ("put", "alpha", 100),
    ("incr", "alpha", 7),
]

#: fault kind → (persistent, injector error string)
KINDS = {
    "transient": (False, "hard"),
    "persistent": (True, "hard"),
    "disk_full": (True, "disk_full"),
}

SWEEP_DURABILITIES = ("group", "immediate")


def sweep_operations() -> OperationRegistry:
    """The tiny key-value schema the sweep drives."""
    ops = OperationRegistry()

    @ops.operation("put")
    def op_put(root, key, value):
        root[key] = value

    @ops.operation("incr")
    def op_incr(root, key, by):
        root[key] = root.get(key, 0) + by
        return root[key]

    return ops


def model_states(steps: list[Step]) -> list[dict]:
    """State after each acked-update prefix (checkpoints change nothing)."""
    states: list[dict] = [{}]
    for step in steps:
        op = step[0]
        if op == "checkpoint":
            continue
        state = dict(states[-1])
        if op == "put":
            state[step[1]] = step[2]
        elif op == "incr":
            state[step[1]] = state.get(step[1], 0) + step[2]
        else:
            raise ValueError(f"unknown step kind {op!r}")
        states.append(state)
    return states


@dataclass
class IoFaultOutcome:
    """What one faulted run looked like against the model."""

    fault_at_event: int
    kind: str
    durability: str
    acked: int
    degraded: bool
    health: str
    faults_injected: int
    repaired: bool = False
    failure: str | None = None


@dataclass
class IoSweepResult:
    total_events: int
    outcomes: list[IoFaultOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[IoFaultOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def degraded_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def repaired_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.repaired)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} io-fault states "
                f"violated the health invariants; first: event "
                f"{first.fault_at_event} kind={first.kind} "
                f"durability={first.durability}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"{self.runs} runs over {self.total_events} disk events: "
            f"{len(self.failures)} failures, {self.degraded_runs} degraded "
            f"read-only, {self.repaired_runs} repaired before restart"
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI job uploads this artifact)."""
        return {
            "total_events": self.total_events,
            "runs": self.runs,
            "failures": len(self.failures),
            "degraded_runs": self.degraded_runs,
            "repaired_runs": self.repaired_runs,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class IoFaultSweep:
    """Sweeps a scripted workload over every runtime disk-fault point."""

    def __init__(
        self,
        steps: list[Step] | None = None,
        kinds: tuple[str, ...] = ("transient", "persistent", "disk_full"),
        durabilities: tuple[str, ...] = SWEEP_DURABILITIES,
        fault_retries: int = 2,
    ) -> None:
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.steps = list(DEFAULT_STEPS if steps is None else steps)
        self.kinds = kinds
        self.durabilities = durabilities
        self.fault_retries = fault_retries
        self._models = model_states(self.steps)
        self._updates = len(self._models) - 1

    # -- execution ------------------------------------------------------------

    def _build(self, injector: MediaFaultInjector, durability: str):
        clock = SimClock()
        prime = SimFS(clock=clock)
        spare = SimFS(clock=clock)
        # One recorder shared by the injector and the database: the
        # injected fault and its consequences land in one timeline.
        flight = FlightRecorder(clock=clock)
        injector.flight = flight
        db = Database(
            FaultyFS(prime, injector),
            initial=dict,
            operations=sweep_operations(),
            clock=clock,
            durability=durability,
            spare_fs=spare,
            fault_retries=self.fault_retries,
            flight=flight,
        )
        # The database opened cleanly; only *runtime* faults from here on.
        injector.arm()
        return prime, spare, db

    def _drive(self, db: Database) -> tuple[int, bool]:
        """Run the script; returns (updates acked, hit DatabaseDegraded)."""
        acked = 0
        for step in self.steps:
            if step[0] == "checkpoint":
                try:
                    db.checkpoint()
                except CheckpointFailed:
                    # Clean abort: the old version stays current and the
                    # retry is scheduled.  Not a degradation.
                    continue
                except DatabaseDegraded:
                    return acked, True
            else:
                try:
                    db.update(step[0], *step[1:])
                except DatabaseDegraded:
                    return acked, True
                acked += 1
        return acked, False

    def count_events(self) -> int:
        """Dry run: total counted disk operations the script generates."""
        injector = MediaFaultInjector()
        _prime, _spare, db = self._build(injector, self.durabilities[0])
        self._drive(db)
        db.close()
        return injector.events_seen

    def run(self, max_events: int | None = None) -> IoSweepResult:
        """The full sweep; returns per-fault-state outcomes."""
        total = self.count_events()
        swept = total if max_events is None else min(total, max_events)
        result = IoSweepResult(total_events=total)
        for fault_at in range(1, swept + 1):
            for kind in self.kinds:
                for durability in self.durabilities:
                    result.outcomes.append(
                        self._run_one(fault_at, kind, durability)
                    )
        return result

    def _run_one(
        self, fault_at: int, kind: str, durability: str
    ) -> IoFaultOutcome:
        persistent, error = KINDS[kind]
        injector = MediaFaultInjector(
            fault_at_event=fault_at, persistent=persistent, error=error
        )
        prime, spare, db = self._build(injector, durability)
        failures: list[str] = []
        try:
            acked, degraded = self._drive(db)
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            return IoFaultOutcome(
                fault_at, kind, durability, 0, False, db.health,
                len(injector.injected),
                failure=f"workload raised outside the typed surface: {exc!r}",
            )
        outcome = IoFaultOutcome(
            fault_at, kind, durability, acked, degraded, db.health,
            len(injector.injected),
        )
        allowed = self._allowed_states(acked)
        self._judge_live(db, spare, kind, degraded, allowed, failures)
        self._judge_restart(prime, injector, kind, acked, allowed,
                            outcome, failures)
        if failures:
            outcome.failure = "; ".join(failures)
        outcome.health = db.health
        return outcome

    def _allowed_states(self, acked: int) -> list[dict]:
        """The in-memory states consistent with ``acked`` acknowledgements.

        Group mode applies an update to virtual memory *before* its
        commit barrier, so at most one applied-but-unacked update may be
        visible when the commit fsync degrades the database.
        """
        allowed = [self._models[acked]]
        if acked + 1 < len(self._models):
            allowed.append(self._models[acked + 1])
        return allowed

    def _judge_live(
        self,
        db: Database,
        spare: SimFS,
        kind: str,
        degraded: bool,
        allowed: list[dict],
        failures: list[str],
    ) -> None:
        try:
            memory = db.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"enquiry refused after fault: {exc!r}")
            return
        if memory not in allowed:
            failures.append(
                f"in-memory state {memory!r} matches no acked prefix "
                f"(allowed: {allowed!r})"
            )
        if kind == "transient":
            if degraded or db.health != HEALTHY:
                failures.append(
                    f"a single transient fault left health={db.health!r} "
                    f"instead of riding it out with a retry"
                )
            if memory != self._models[-1]:
                failures.append(
                    f"transient run finished with {memory!r}, model says "
                    f"{self._models[-1]!r}"
                )
            return
        # Persistent kinds (hard error / disk full) must degrade.
        if not degraded:
            failures.append(
                "persistent fault was injected but the workload completed "
                "without degrading"
            )
            return
        if db.health != DEGRADED_READ_ONLY:
            failures.append(
                f"degraded run reports health={db.health!r}, expected "
                f"{DEGRADED_READ_ONLY!r}"
            )
        try:
            db.update("put", "probe", -1)
            failures.append("degraded database accepted an update")
        except DatabaseDegraded:
            pass
        # The emergency snapshot on the spare must be durable and must
        # recover to exactly the in-memory state at degrade time.  The
        # black box dumped next to it must survive the crash too.
        spare.crash()
        self._judge_blackbox(db, spare, failures)
        try:
            restored = Database(
                spare, initial=dict, operations=sweep_operations()
            )
            recovered = restored.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"emergency snapshot unrecoverable: {exc!r}")
            return
        if recovered != memory:
            failures.append(
                f"emergency snapshot recovered {recovered!r}, in-memory "
                f"state was {memory!r}"
            )

    #: flight-event kinds every degraded run's black box must contain
    REQUIRED_BLACKBOX_KINDS = (
        "fault_injected",
        "storage_fault",
        "health_transition",
        "emergency_checkpoint",
    )

    def _judge_blackbox(
        self, db: Database, spare: SimFS, failures: list[str]
    ) -> None:
        """A degraded run must leave a renderable, causal black box."""
        live_kinds = set(db.flight.kinds())
        for kind in self.REQUIRED_BLACKBOX_KINDS:
            if kind not in live_kinds:
                failures.append(
                    f"flight recorder has no {kind!r} event after a "
                    f"persistent fault (kinds: {sorted(live_kinds)})"
                )
        try:
            dump = load_blackbox(spare.read(BLACKBOX_FILE))
        except Exception as exc:  # noqa: BLE001
            failures.append(
                f"black box missing or invalid on the crashed spare: "
                f"{exc!r}"
            )
            return
        kinds = {event.get("kind") for event in dump["events"]}
        for kind in self.REQUIRED_BLACKBOX_KINDS:
            if kind not in kinds:
                failures.append(
                    f"dumped black box lacks the {kind!r} event "
                    f"(kinds: {sorted(kinds)})"
                )
        transitions = [
            e for e in dump["events"]
            if e.get("kind") == "health_transition"
            and (e.get("fields") or {}).get("to_state") == DEGRADED_READ_ONLY
        ]
        if not transitions:
            failures.append(
                "dumped black box has no transition into "
                "degraded_read_only"
            )
        try:
            rendered = render_timeline(build_timeline(dump))
            summary = summarize(dump)
            if not rendered or not summary:
                failures.append("postmortem rendered an empty timeline")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"postmortem failed to render the dump: {exc!r}")

    def _judge_restart(
        self,
        prime: SimFS,
        injector: MediaFaultInjector,
        kind: str,
        acked: int,
        allowed: list[dict],
        outcome: IoFaultOutcome,
        failures: list[str],
    ) -> None:
        """Halt, fsck (repairing if needed), restart: no acked update lost."""
        injector.disarm()  # the device is replaced before the restart
        prime.crash()
        report = fsck_directory(prime)
        if report.exit_status() != 0:
            repair_directory(prime)
            outcome.repaired = True
            report = fsck_directory(prime)
            if report.exit_status() != 0:
                failures.append(
                    f"directory not clean after fsck repair: "
                    f"{report.errors + report.warnings}"
                )
        try:
            restarted = Database(
                prime, initial=dict, operations=sweep_operations()
            )
            recovered = restarted.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"restart after repair failed: {exc!r}")
            return
        if kind == "transient":
            if recovered != self._models[-1]:
                failures.append(
                    f"transient run recovered {recovered!r}, model says "
                    f"{self._models[-1]!r}"
                )
        elif recovered not in allowed:
            failures.append(
                f"restart recovered {recovered!r}, which loses or invents "
                f"an acked update (acked={acked}, allowed: {allowed!r})"
            )


def run_capacity(
    durability: str = "group",
    capacity_pages: int = 40,
    value_bytes: int = 1500,
) -> list[str]:
    """The organic disk-full scenario: a finite page budget fills up.

    Drives puts into a :class:`SimFS` with ``capacity_pages`` until the
    allocator refuses, then checks the same invariants as the sweep:
    degraded read-only, enquiries served, no acked update lost, spare
    snapshot recoverable, repaired directory restarts clean.  Returns a
    list of invariant violations (empty = clean).
    """
    failures: list[str] = []
    clock = SimClock()
    prime = SimFS(clock=clock, capacity_pages=capacity_pages)
    spare = SimFS(clock=clock)
    db = Database(
        prime,
        initial=dict,
        operations=sweep_operations(),
        clock=clock,
        durability=durability,
        spare_fs=spare,
        fault_retries=1,
    )
    acked: dict = {}
    degraded = False
    for i in range(200):
        key, value = f"k{i}", "x" * value_bytes
        try:
            db.update("put", key, value)
        except DatabaseDegraded:
            degraded = True
            break
        acked[key] = value
    if not degraded:
        return [
            f"{capacity_pages}-page budget never filled after 200 updates"
        ]
    if db.health != DEGRADED_READ_ONLY:
        failures.append(f"health={db.health!r} after disk full")
    memory = db.enquire(lambda root: dict(root))
    extra = set(memory) - set(acked)
    if not all(memory.get(k) == v for k, v in acked.items()) or len(extra) > 1:
        failures.append("in-memory state does not match the acked prefix")
    try:
        db.update("put", "probe", -1)
        failures.append("degraded database accepted an update")
    except DatabaseDegraded:
        pass
    spare.crash()
    try:
        restored = Database(spare, initial=dict, operations=sweep_operations())
        if restored.enquire(lambda root: dict(root)) != memory:
            failures.append("emergency snapshot does not match memory")
    except Exception as exc:  # noqa: BLE001
        failures.append(f"emergency snapshot unrecoverable: {exc!r}")
    prime.crash()
    report = fsck_directory(prime)
    if report.exit_status() != 0:
        repair_directory(prime)
        report = fsck_directory(prime)
        if report.exit_status() != 0:
            failures.append("directory not clean after fsck repair")
    try:
        restarted = Database(prime, initial=dict, operations=sweep_operations())
        recovered = restarted.enquire(lambda root: dict(root))
    except Exception as exc:  # noqa: BLE001
        failures.append(f"restart after disk full failed: {exc!r}")
        return failures
    missing = [k for k, v in acked.items() if recovered.get(k) != v]
    if missing:
        failures.append(f"acked updates lost across restart: {missing}")
    return failures


# -- replica repair: every persistent fault healed via a peer -------------------

#: The repair workload: binds on both sides of a *peer* checkpoint, so
#: the shipped snapshot and the log tail past it both carry state, and a
#: re-bound name makes a doubled or dropped replay visible.
REPAIR_STEPS: list[Step] = [
    ("bind", "svc/web/alpha", 1),
    ("bind", "svc/web/beta", 2),
    ("peer_checkpoint",),
    ("bind", "svc/db/gamma", 3),
    ("bind", "svc/web/alpha", 4),
]

#: only the kinds that must degrade take the repair path
REPAIR_KINDS = ("persistent", "disk_full")


@dataclass
class RepairOutcome:
    """One faulted-then-repaired run against the replica-set model."""

    fault_at_event: int
    kind: str
    acked: int
    degraded: bool
    recovered: bool = False
    bytes_shipped: int = 0
    entries_replayed: int = 0
    resumed: bool = False
    failure: str | None = None


@dataclass
class RepairSweepResult:
    total_events: int
    outcomes: list[RepairOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[RepairOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def recovered_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} persistent-fault "
                f"runs did not end HEALTHY via peer repair; first: event "
                f"{first.fault_at_event} kind={first.kind}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"replica repair: {self.runs} runs over {self.total_events} "
            f"disk events: {len(self.failures)} failures, "
            f"{self.recovered_runs} healed via peer snapshot + log tail"
        )

    def report(self) -> dict:
        return {
            "total_events": self.total_events,
            "runs": self.runs,
            "failures": len(self.failures),
            "recovered_runs": self.recovered_runs,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class ReplicaRepairSweep:
    """The io-fault sweep lifted to a replica set that heals itself.

    The primary runs over a :class:`FaultyFS`; a healthy peer replica
    receives every acknowledged update by eager propagation.  For every
    disk event k and every persistent fault kind, the primary must
    degrade, and the staged :class:`ReplicaRecoverer` must then take it
    from DEGRADED_READ_ONLY back to HEALTHY with exactly the peer's
    state: the peer's checkpoint shipped in chunks, the history records
    past its version vector caught up as a log tail, the old damaged
    files gone after cutover.
    """

    def __init__(
        self,
        steps: list[Step] | None = None,
        kinds: tuple[str, ...] = REPAIR_KINDS,
        fault_retries: int = 2,
    ) -> None:
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if not all(KINDS[kind][0] for kind in kinds):
            raise ValueError("the repair sweep only sweeps persistent kinds")
        self.steps = list(REPAIR_STEPS if steps is None else steps)
        self.kinds = kinds
        self.fault_retries = fault_retries

    def _build(self, injector: MediaFaultInjector):
        clock = SimClock()
        prime = SimFS(clock=clock)
        flight = FlightRecorder(clock=clock)
        injector.flight = flight
        primary = Replica(
            FaultyFS(prime, injector),
            "prime",
            clock=clock,
            durability="immediate",
            fault_retries=self.fault_retries,
            flight=flight,
        )
        peer = Replica(
            SimFS(clock=clock), "buddy", clock=clock, durability="immediate"
        )
        primary.add_peer(peer)
        # Both databases opened cleanly; only runtime faults from here on,
        # and only the primary's disk events are counted.
        injector.arm()
        return prime, primary, peer, flight, clock

    def _drive(self, primary: Replica, peer: Replica):
        """Run the script; returns (acked bindings, records, ckpt records,
        hit DatabaseDegraded).

        Every acknowledged bind is propagated to the peer before the next
        step, so the peer always holds exactly the acked prefix — the
        ground truth recovery must reproduce.
        """
        acked: dict[str, object] = {}
        records = 0
        checkpointed_records: int | None = None
        for step in self.steps:
            if step[0] == "peer_checkpoint":
                peer.checkpoint()
                checkpointed_records = records
                continue
            try:
                primary.bind(step[1], step[2])
            except DatabaseDegraded:
                return acked, records, checkpointed_records, True
            acked[step[1]] = step[2]
            records += 1
            primary.propagate()
        return acked, records, checkpointed_records, False

    def count_events(self) -> int:
        """Dry run: counted disk operations on the primary's device."""
        injector = MediaFaultInjector()
        _prime, primary, peer, _flight, _clock = self._build(injector)
        self._drive(primary, peer)
        primary.db.close()
        return injector.events_seen

    def run(self, max_events: int | None = None) -> RepairSweepResult:
        total = self.count_events()
        swept = total if max_events is None else min(total, max_events)
        result = RepairSweepResult(total_events=total)
        for fault_at in range(1, swept + 1):
            for kind in self.kinds:
                result.outcomes.append(self._run_one(fault_at, kind))
        return result

    def _run_one(self, fault_at: int, kind: str) -> RepairOutcome:
        persistent, error = KINDS[kind]
        injector = MediaFaultInjector(
            fault_at_event=fault_at, persistent=persistent, error=error
        )
        prime, primary, peer, flight, clock = self._build(injector)
        try:
            acked, records, ckpt_records, degraded = self._drive(
                primary, peer
            )
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            return RepairOutcome(
                fault_at, kind, 0, False,
                failure=f"workload raised outside the typed surface: {exc!r}",
            )
        outcome = RepairOutcome(fault_at, kind, len(acked), degraded)
        if not degraded:
            outcome.failure = (
                "persistent fault was injected but the primary completed "
                "without degrading"
            )
            return outcome
        failures: list[str] = []
        monitor = primary.db.health_monitor
        injector.disarm()  # the device is replaced before the repair
        try:
            primary.db.close()
        except Exception:  # noqa: BLE001 - a degraded close may refuse
            pass
        prime.crash()
        recoverer = ReplicaRecoverer(
            prime,
            "prime",
            [peer],
            clock=clock,
            flight=flight,
            health_monitor=monitor,
        )
        try:
            replica = recoverer.run()
        except RecoveryFailed as exc:
            outcome.failure = f"peer repair failed: {exc}"
            return outcome
        report = recoverer.report
        outcome.recovered = True
        outcome.bytes_shipped = report.bytes_shipped
        outcome.entries_replayed = report.entries_replayed
        outcome.resumed = report.resumed
        self._judge(replica, peer, monitor, flight, report, acked, records,
                    ckpt_records, failures)
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome

    def _judge(
        self,
        replica: Replica,
        peer: Replica,
        monitor,
        flight: FlightRecorder,
        report,
        acked: dict,
        records: int,
        ckpt_records: int | None,
        failures: list[str],
    ) -> None:
        if replica.db.health != HEALTHY:
            failures.append(
                f"recovered replica reports health={replica.db.health!r}"
            )
        if monitor.state != HEALTHY:
            failures.append(
                f"the degraded node's monitor never took the "
                f"RECOVERING -> HEALTHY edge (state={monitor.state!r})"
            )
        recovered = {
            "/".join(path): value for path, value in replica.read_subtree()
        }
        expected = {
            "/".join(parse_path(path)): value for path, value in acked.items()
        }
        if recovered != expected:
            failures.append(
                f"recovered state {recovered!r} != acked prefix "
                f"{expected!r} (an acknowledged update was lost or "
                f"invented across the repair)"
            )
        peer_state = {
            "/".join(path): value for path, value in peer.read_subtree()
        }
        if recovered != peer_state:
            failures.append(
                f"recovered state {recovered!r} != peer state "
                f"{peer_state!r}"
            )
        for stage in ("planning", "snapshot", "log_tail", "cutover", "done"):
            if stage not in report.stages:
                failures.append(f"recovery skipped the {stage!r} stage")
        if report.bytes_shipped <= 0:
            failures.append("no checkpoint bytes were shipped from the peer")
        expected_tail = records - (ckpt_records or 0)
        if report.entries_replayed != expected_tail:
            failures.append(
                f"{report.entries_replayed} history records caught up, "
                f"expected {expected_tail} (records past the peer's "
                f"checkpoint vector)"
            )
        if "recovery_complete" not in flight.kinds():
            failures.append(
                "the flight recorder never saw recovery_complete"
            )


def run_divergence(max_rounds: int = 2) -> list[str]:
    """Silent divergence between HEALTHY replicas, healed by anti-entropy.

    Seeds two converged replicas, then corrupts one leaf on one of them
    *without* touching its replication stamp — the failure mode version
    vectors cannot see.  The resilient group's per-round Merkle
    comparison must detect the divergence and repair it within
    ``max_rounds`` sync rounds, shipping only the diverged leaves (never
    a full snapshot: the recoverer plays no part here).  Returns a list
    of invariant violations (empty = clean).
    """
    failures: list[str] = []
    clock = SimClock()
    left = Replica(SimFS(clock=clock), "left", clock=clock)
    right = Replica(SimFS(clock=clock), "right", clock=clock)
    left.add_peer(right)
    seeds = [
        ("svc/web/alpha", 1),
        ("svc/web/beta", 2),
        ("svc/db/gamma", 3),
        ("cfg/ttl", 60),
        ("cfg/quota", 5),
    ]
    for path, value in seeds:
        left.bind(path, value)
    left.propagate()
    if left.summary() != right.summary():
        return ["seeding did not converge the pair"]

    target = parse_path("svc/web/beta")

    def corrupt(root) -> None:
        # The silent fault: a new value under the *old* stamp, as a
        # replay bug or memory corruption would leave it.
        find_node(root["tree"], target).leaf.value = -999

    right.db.enquire(corrupt)
    if left.tree_digest() == right.tree_digest():
        return ["the seeded corruption did not change the tree digest"]

    group = ResilientReplicaGroup(
        [left, right], clock=clock, track_staleness=False
    )
    mismatches = 0
    shipped = 0
    rounds_used = 0
    for rounds_used in range(1, max_rounds + 1):
        report = group.sync_round()
        mismatches += report.tree_mismatches
        shipped += report.leaves_repaired
        if left.tree_digest() == right.tree_digest():
            break
    if mismatches < 1:
        failures.append("the divergence was never detected")
    if left.tree_digest() != right.tree_digest():
        failures.append(
            f"replicas still diverged after {rounds_used} sync rounds"
        )
    if sorted(left.read_subtree()) != sorted(right.read_subtree()):
        failures.append("tree digests agree but the entries differ")
    if shipped == 0:
        failures.append("convergence happened without shipping any repair")
    elif shipped >= len(seeds):
        failures.append(
            f"repair shipped {shipped} leaves for 1 diverged binding "
            f"of {len(seeds)} — that is a full transfer, not a targeted "
            f"repair"
        )
    follow_up = group.sync_round()
    if follow_up.tree_mismatches != 0:
        failures.append("a repaired pair still reports tree mismatches")
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="io-fault sweep for the storage health state machine"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N (default: all)",
    )
    parser.add_argument(
        "--kinds", nargs="+", default=list(KINDS),
        choices=list(KINDS),
    )
    parser.add_argument(
        "--durability", nargs="+", default=list(SWEEP_DURABILITIES),
        choices=list(SWEEP_DURABILITIES),
    )
    parser.add_argument(
        "--report", default=None,
        help="write a JSON report of every outcome to this path",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = IoFaultSweep(
        kinds=tuple(args.kinds), durabilities=tuple(args.durability)
    )
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  event {outcome.fault_at_event:3d} {outcome.kind:10s} "
                f"{outcome.durability:9s} acked={outcome.acked} "
                f"health={outcome.health} {status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL event {outcome.fault_at_event} kind={outcome.kind} "
            f"durability={outcome.durability}: {outcome.failure}"
        )
    capacity_failures: list[str] = []
    for durability in args.durability:
        for failure in run_capacity(durability):
            capacity_failures.append(f"capacity[{durability}]: {failure}")
            print(f"FAIL {capacity_failures[-1]}")
    if not capacity_failures:
        print("capacity-budget disk-full scenario: clean")
    repair_result = ReplicaRepairSweep().run(max_events=args.max_events)
    print(repair_result.summary())
    for outcome in repair_result.failures:
        print(
            f"FAIL repair event {outcome.fault_at_event} "
            f"kind={outcome.kind}: {outcome.failure}"
        )
    divergence_failures = run_divergence()
    for failure in divergence_failures:
        print(f"FAIL divergence: {failure}")
    if not divergence_failures:
        print("anti-entropy divergence scenario: clean")
    if args.report is not None:
        report = result.report()
        report["capacity_failures"] = capacity_failures
        report["repair"] = repair_result.report()
        report["divergence_failures"] = divergence_failures
        with open(args.report, "w", encoding="ascii") as f:
            json.dump(report, f, indent=2)
        print(f"report written to {args.report}")
    return 1 if (
        result.failures
        or capacity_failures
        or repair_result.failures
        or divergence_failures
    ) else 0


if __name__ == "__main__":
    raise SystemExit(main())
