"""The io-fault sweep: runtime media faults checked at every disk event.

The crash sweep (:mod:`repro.sim.crashtest`) quantifies over machine
halts; the network sweep (:mod:`repro.sim.netsweep`) over lost messages.
This harness closes the triangle: it quantifies over *runtime media
faults* — the disk starts refusing operations while the server keeps
running — and model-checks the database's health state machine:

1. run a scripted workload (updates interleaved with a checkpoint) once
   with no fault scheduled and count the file-system data operations it
   performs (N);
2. for every event k in 1..N and every fault kind, run the workload from
   scratch over a :class:`~repro.storage.failures.FaultyFS` with the
   fault scheduled at event k, on a fresh
   :class:`~repro.storage.simfs.SimFS` with a spare directory attached;
3. model-check the outcome:

   * **transient** faults (the device errors once, then recovers) must
     be absorbed: every update acked, the database still HEALTHY, the
     final state equal to the model's;
   * **persistent** faults (hard error or disk-full from event k
     onwards) must degrade the database to DEGRADED_READ_ONLY: further
     updates are refused with ``DatabaseDegraded``, enquiries are still
     served from virtual memory, the in-memory state matches the model
     for the acked prefix, and the emergency snapshot on the spare
     recovers to exactly that state;
   * in *every* run the machine is then halted, the primary directory is
     checked with fsck — repaired with
     :func:`~repro.tools.fsck.repair_directory` if not clean — and
     restarted: the recovered state must contain every acknowledged
     update (no acked update is ever lost);
   * every degraded run must also leave a *black box*: the shared
     flight recorder (fed by the injector, the health monitor and the
     commit pipeline) is dumped to the spare next to the emergency
     snapshot, must survive the spare's crash, must contain the
     injected fault, the degradation transition and the emergency-
     checkpoint event, and must render through
     :mod:`repro.tools.postmortem` without error.

A capacity-budget scenario (:func:`run_capacity`) covers the organic
disk-full path as well: a :class:`SimFS` with a finite page budget fills
up mid-workload, and the same invariants must hold.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.iosweep
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core import (
    CheckpointFailed,
    Database,
    DatabaseDegraded,
    DEGRADED_READ_ONLY,
    HEALTHY,
    OperationRegistry,
)
from repro.obs.flight import BLACKBOX_FILE, FlightRecorder, load_blackbox
from repro.sim.clock import SimClock
from repro.storage import FaultyFS, MediaFaultInjector, SimFS
from repro.tools.fsck import fsck_directory, repair_directory
from repro.tools.postmortem import build_timeline, render_timeline, summarize

#: A scripted step: ("put", key, value) | ("incr", key, by) | ("checkpoint",)
Step = tuple

#: Default workload: updates on both sides of a checkpoint, with
#: non-idempotent increments so a lost or doubled replay cannot hide.
DEFAULT_STEPS: list[Step] = [
    ("put", "alpha", 1),
    ("incr", "alpha", 2),
    ("put", "beta", 10),
    ("checkpoint",),
    ("incr", "beta", 5),
    ("put", "alpha", 100),
    ("incr", "alpha", 7),
]

#: fault kind → (persistent, injector error string)
KINDS = {
    "transient": (False, "hard"),
    "persistent": (True, "hard"),
    "disk_full": (True, "disk_full"),
}

SWEEP_DURABILITIES = ("group", "immediate")


def sweep_operations() -> OperationRegistry:
    """The tiny key-value schema the sweep drives."""
    ops = OperationRegistry()

    @ops.operation("put")
    def op_put(root, key, value):
        root[key] = value

    @ops.operation("incr")
    def op_incr(root, key, by):
        root[key] = root.get(key, 0) + by
        return root[key]

    return ops


def model_states(steps: list[Step]) -> list[dict]:
    """State after each acked-update prefix (checkpoints change nothing)."""
    states: list[dict] = [{}]
    for step in steps:
        op = step[0]
        if op == "checkpoint":
            continue
        state = dict(states[-1])
        if op == "put":
            state[step[1]] = step[2]
        elif op == "incr":
            state[step[1]] = state.get(step[1], 0) + step[2]
        else:
            raise ValueError(f"unknown step kind {op!r}")
        states.append(state)
    return states


@dataclass
class IoFaultOutcome:
    """What one faulted run looked like against the model."""

    fault_at_event: int
    kind: str
    durability: str
    acked: int
    degraded: bool
    health: str
    faults_injected: int
    repaired: bool = False
    failure: str | None = None


@dataclass
class IoSweepResult:
    total_events: int
    outcomes: list[IoFaultOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[IoFaultOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def degraded_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def repaired_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.repaired)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} io-fault states "
                f"violated the health invariants; first: event "
                f"{first.fault_at_event} kind={first.kind} "
                f"durability={first.durability}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"{self.runs} runs over {self.total_events} disk events: "
            f"{len(self.failures)} failures, {self.degraded_runs} degraded "
            f"read-only, {self.repaired_runs} repaired before restart"
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI job uploads this artifact)."""
        return {
            "total_events": self.total_events,
            "runs": self.runs,
            "failures": len(self.failures),
            "degraded_runs": self.degraded_runs,
            "repaired_runs": self.repaired_runs,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class IoFaultSweep:
    """Sweeps a scripted workload over every runtime disk-fault point."""

    def __init__(
        self,
        steps: list[Step] | None = None,
        kinds: tuple[str, ...] = ("transient", "persistent", "disk_full"),
        durabilities: tuple[str, ...] = SWEEP_DURABILITIES,
        fault_retries: int = 2,
    ) -> None:
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.steps = list(DEFAULT_STEPS if steps is None else steps)
        self.kinds = kinds
        self.durabilities = durabilities
        self.fault_retries = fault_retries
        self._models = model_states(self.steps)
        self._updates = len(self._models) - 1

    # -- execution ------------------------------------------------------------

    def _build(self, injector: MediaFaultInjector, durability: str):
        clock = SimClock()
        prime = SimFS(clock=clock)
        spare = SimFS(clock=clock)
        # One recorder shared by the injector and the database: the
        # injected fault and its consequences land in one timeline.
        flight = FlightRecorder(clock=clock)
        injector.flight = flight
        db = Database(
            FaultyFS(prime, injector),
            initial=dict,
            operations=sweep_operations(),
            clock=clock,
            durability=durability,
            spare_fs=spare,
            fault_retries=self.fault_retries,
            flight=flight,
        )
        # The database opened cleanly; only *runtime* faults from here on.
        injector.arm()
        return prime, spare, db

    def _drive(self, db: Database) -> tuple[int, bool]:
        """Run the script; returns (updates acked, hit DatabaseDegraded)."""
        acked = 0
        for step in self.steps:
            if step[0] == "checkpoint":
                try:
                    db.checkpoint()
                except CheckpointFailed:
                    # Clean abort: the old version stays current and the
                    # retry is scheduled.  Not a degradation.
                    continue
                except DatabaseDegraded:
                    return acked, True
            else:
                try:
                    db.update(step[0], *step[1:])
                except DatabaseDegraded:
                    return acked, True
                acked += 1
        return acked, False

    def count_events(self) -> int:
        """Dry run: total counted disk operations the script generates."""
        injector = MediaFaultInjector()
        _prime, _spare, db = self._build(injector, self.durabilities[0])
        self._drive(db)
        db.close()
        return injector.events_seen

    def run(self, max_events: int | None = None) -> IoSweepResult:
        """The full sweep; returns per-fault-state outcomes."""
        total = self.count_events()
        swept = total if max_events is None else min(total, max_events)
        result = IoSweepResult(total_events=total)
        for fault_at in range(1, swept + 1):
            for kind in self.kinds:
                for durability in self.durabilities:
                    result.outcomes.append(
                        self._run_one(fault_at, kind, durability)
                    )
        return result

    def _run_one(
        self, fault_at: int, kind: str, durability: str
    ) -> IoFaultOutcome:
        persistent, error = KINDS[kind]
        injector = MediaFaultInjector(
            fault_at_event=fault_at, persistent=persistent, error=error
        )
        prime, spare, db = self._build(injector, durability)
        failures: list[str] = []
        try:
            acked, degraded = self._drive(db)
        except Exception as exc:  # noqa: BLE001 - any escape is a finding
            return IoFaultOutcome(
                fault_at, kind, durability, 0, False, db.health,
                len(injector.injected),
                failure=f"workload raised outside the typed surface: {exc!r}",
            )
        outcome = IoFaultOutcome(
            fault_at, kind, durability, acked, degraded, db.health,
            len(injector.injected),
        )
        allowed = self._allowed_states(acked)
        self._judge_live(db, spare, kind, degraded, allowed, failures)
        self._judge_restart(prime, injector, kind, acked, allowed,
                            outcome, failures)
        if failures:
            outcome.failure = "; ".join(failures)
        outcome.health = db.health
        return outcome

    def _allowed_states(self, acked: int) -> list[dict]:
        """The in-memory states consistent with ``acked`` acknowledgements.

        Group mode applies an update to virtual memory *before* its
        commit barrier, so at most one applied-but-unacked update may be
        visible when the commit fsync degrades the database.
        """
        allowed = [self._models[acked]]
        if acked + 1 < len(self._models):
            allowed.append(self._models[acked + 1])
        return allowed

    def _judge_live(
        self,
        db: Database,
        spare: SimFS,
        kind: str,
        degraded: bool,
        allowed: list[dict],
        failures: list[str],
    ) -> None:
        try:
            memory = db.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"enquiry refused after fault: {exc!r}")
            return
        if memory not in allowed:
            failures.append(
                f"in-memory state {memory!r} matches no acked prefix "
                f"(allowed: {allowed!r})"
            )
        if kind == "transient":
            if degraded or db.health != HEALTHY:
                failures.append(
                    f"a single transient fault left health={db.health!r} "
                    f"instead of riding it out with a retry"
                )
            if memory != self._models[-1]:
                failures.append(
                    f"transient run finished with {memory!r}, model says "
                    f"{self._models[-1]!r}"
                )
            return
        # Persistent kinds (hard error / disk full) must degrade.
        if not degraded:
            failures.append(
                "persistent fault was injected but the workload completed "
                "without degrading"
            )
            return
        if db.health != DEGRADED_READ_ONLY:
            failures.append(
                f"degraded run reports health={db.health!r}, expected "
                f"{DEGRADED_READ_ONLY!r}"
            )
        try:
            db.update("put", "probe", -1)
            failures.append("degraded database accepted an update")
        except DatabaseDegraded:
            pass
        # The emergency snapshot on the spare must be durable and must
        # recover to exactly the in-memory state at degrade time.  The
        # black box dumped next to it must survive the crash too.
        spare.crash()
        self._judge_blackbox(db, spare, failures)
        try:
            restored = Database(
                spare, initial=dict, operations=sweep_operations()
            )
            recovered = restored.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"emergency snapshot unrecoverable: {exc!r}")
            return
        if recovered != memory:
            failures.append(
                f"emergency snapshot recovered {recovered!r}, in-memory "
                f"state was {memory!r}"
            )

    #: flight-event kinds every degraded run's black box must contain
    REQUIRED_BLACKBOX_KINDS = (
        "fault_injected",
        "storage_fault",
        "health_transition",
        "emergency_checkpoint",
    )

    def _judge_blackbox(
        self, db: Database, spare: SimFS, failures: list[str]
    ) -> None:
        """A degraded run must leave a renderable, causal black box."""
        live_kinds = set(db.flight.kinds())
        for kind in self.REQUIRED_BLACKBOX_KINDS:
            if kind not in live_kinds:
                failures.append(
                    f"flight recorder has no {kind!r} event after a "
                    f"persistent fault (kinds: {sorted(live_kinds)})"
                )
        try:
            dump = load_blackbox(spare.read(BLACKBOX_FILE))
        except Exception as exc:  # noqa: BLE001
            failures.append(
                f"black box missing or invalid on the crashed spare: "
                f"{exc!r}"
            )
            return
        kinds = {event.get("kind") for event in dump["events"]}
        for kind in self.REQUIRED_BLACKBOX_KINDS:
            if kind not in kinds:
                failures.append(
                    f"dumped black box lacks the {kind!r} event "
                    f"(kinds: {sorted(kinds)})"
                )
        transitions = [
            e for e in dump["events"]
            if e.get("kind") == "health_transition"
            and (e.get("fields") or {}).get("to_state") == DEGRADED_READ_ONLY
        ]
        if not transitions:
            failures.append(
                "dumped black box has no transition into "
                "degraded_read_only"
            )
        try:
            rendered = render_timeline(build_timeline(dump))
            summary = summarize(dump)
            if not rendered or not summary:
                failures.append("postmortem rendered an empty timeline")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"postmortem failed to render the dump: {exc!r}")

    def _judge_restart(
        self,
        prime: SimFS,
        injector: MediaFaultInjector,
        kind: str,
        acked: int,
        allowed: list[dict],
        outcome: IoFaultOutcome,
        failures: list[str],
    ) -> None:
        """Halt, fsck (repairing if needed), restart: no acked update lost."""
        injector.disarm()  # the device is replaced before the restart
        prime.crash()
        report = fsck_directory(prime)
        if report.exit_status() != 0:
            repair_directory(prime)
            outcome.repaired = True
            report = fsck_directory(prime)
            if report.exit_status() != 0:
                failures.append(
                    f"directory not clean after fsck repair: "
                    f"{report.errors + report.warnings}"
                )
        try:
            restarted = Database(
                prime, initial=dict, operations=sweep_operations()
            )
            recovered = restarted.enquire(lambda root: dict(root))
        except Exception as exc:  # noqa: BLE001
            failures.append(f"restart after repair failed: {exc!r}")
            return
        if kind == "transient":
            if recovered != self._models[-1]:
                failures.append(
                    f"transient run recovered {recovered!r}, model says "
                    f"{self._models[-1]!r}"
                )
        elif recovered not in allowed:
            failures.append(
                f"restart recovered {recovered!r}, which loses or invents "
                f"an acked update (acked={acked}, allowed: {allowed!r})"
            )


def run_capacity(
    durability: str = "group",
    capacity_pages: int = 40,
    value_bytes: int = 1500,
) -> list[str]:
    """The organic disk-full scenario: a finite page budget fills up.

    Drives puts into a :class:`SimFS` with ``capacity_pages`` until the
    allocator refuses, then checks the same invariants as the sweep:
    degraded read-only, enquiries served, no acked update lost, spare
    snapshot recoverable, repaired directory restarts clean.  Returns a
    list of invariant violations (empty = clean).
    """
    failures: list[str] = []
    clock = SimClock()
    prime = SimFS(clock=clock, capacity_pages=capacity_pages)
    spare = SimFS(clock=clock)
    db = Database(
        prime,
        initial=dict,
        operations=sweep_operations(),
        clock=clock,
        durability=durability,
        spare_fs=spare,
        fault_retries=1,
    )
    acked: dict = {}
    degraded = False
    for i in range(200):
        key, value = f"k{i}", "x" * value_bytes
        try:
            db.update("put", key, value)
        except DatabaseDegraded:
            degraded = True
            break
        acked[key] = value
    if not degraded:
        return [
            f"{capacity_pages}-page budget never filled after 200 updates"
        ]
    if db.health != DEGRADED_READ_ONLY:
        failures.append(f"health={db.health!r} after disk full")
    memory = db.enquire(lambda root: dict(root))
    extra = set(memory) - set(acked)
    if not all(memory.get(k) == v for k, v in acked.items()) or len(extra) > 1:
        failures.append("in-memory state does not match the acked prefix")
    try:
        db.update("put", "probe", -1)
        failures.append("degraded database accepted an update")
    except DatabaseDegraded:
        pass
    spare.crash()
    try:
        restored = Database(spare, initial=dict, operations=sweep_operations())
        if restored.enquire(lambda root: dict(root)) != memory:
            failures.append("emergency snapshot does not match memory")
    except Exception as exc:  # noqa: BLE001
        failures.append(f"emergency snapshot unrecoverable: {exc!r}")
    prime.crash()
    report = fsck_directory(prime)
    if report.exit_status() != 0:
        repair_directory(prime)
        report = fsck_directory(prime)
        if report.exit_status() != 0:
            failures.append("directory not clean after fsck repair")
    try:
        restarted = Database(prime, initial=dict, operations=sweep_operations())
        recovered = restarted.enquire(lambda root: dict(root))
    except Exception as exc:  # noqa: BLE001
        failures.append(f"restart after disk full failed: {exc!r}")
        return failures
    missing = [k for k, v in acked.items() if recovered.get(k) != v]
    if missing:
        failures.append(f"acked updates lost across restart: {missing}")
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="io-fault sweep for the storage health state machine"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N (default: all)",
    )
    parser.add_argument(
        "--kinds", nargs="+", default=list(KINDS),
        choices=list(KINDS),
    )
    parser.add_argument(
        "--durability", nargs="+", default=list(SWEEP_DURABILITIES),
        choices=list(SWEEP_DURABILITIES),
    )
    parser.add_argument(
        "--report", default=None,
        help="write a JSON report of every outcome to this path",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = IoFaultSweep(
        kinds=tuple(args.kinds), durabilities=tuple(args.durability)
    )
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  event {outcome.fault_at_event:3d} {outcome.kind:10s} "
                f"{outcome.durability:9s} acked={outcome.acked} "
                f"health={outcome.health} {status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL event {outcome.fault_at_event} kind={outcome.kind} "
            f"durability={outcome.durability}: {outcome.failure}"
        )
    capacity_failures: list[str] = []
    for durability in args.durability:
        for failure in run_capacity(durability):
            capacity_failures.append(f"capacity[{durability}]: {failure}")
            print(f"FAIL {capacity_failures[-1]}")
    if not capacity_failures:
        print("capacity-budget disk-full scenario: clean")
    if args.report is not None:
        report = result.report()
        report["capacity_failures"] = capacity_failures
        with open(args.report, "w", encoding="ascii") as f:
            json.dump(report, f, indent=2)
        print(f"report written to {args.report}")
    return 1 if (result.failures or capacity_failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())
