"""The network-fault sweep: at-most-once RPC checked at every fault point.

The storage analogue (:mod:`repro.sim.crashtest`) establishes a
universally quantified claim about disk states; this harness establishes
the matching claim about *network* states: whichever single network event
fails — any request lost, any reply lost, the connection severed at any
point — the RPC stack's retries plus the server's reply cache deliver the
paper's call semantics: every acknowledged update is applied, no update
is applied twice, and the client's view of results equals the model's.

The protocol mirrors the crash sweep exactly:

1. run a scripted client workload once with no fault scheduled and count
   the network events it generates (N = one per request + one per reply);
2. for every event k in 1..N and every fault kind (message dropped /
   connection severed), run the workload from scratch with the fault
   scheduled at event k, through a retrying
   :class:`~repro.rpc.client.RpcClient` on a :class:`SimClock` (so the
   backoff sleeps are instant and deterministic);
3. model-check the outcome: the server's state must equal the model's,
   each update must have *executed* exactly once (a retransmission after
   a lost reply must be answered by the reply cache, visible as a cache
   hit), and every value the client observed must match the model.

The workload deliberately includes ``incr`` — a non-idempotent update —
so a double execution cannot hide: re-running it changes the result.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.netsweep
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.rpc import (
    EventLoopServer,
    FaultyTransport,
    Int,
    Interface,
    LAN_1987,
    LoopbackTransport,
    NetworkFaultInjector,
    OptionalOf,
    RetryPolicy,
    RpcClient,
    RpcServer,
    Str,
    TcpServerThread,
    TcpTransport,
    Void,
)
from repro.sim.clock import SimClock

#: What carries the calls: "loopback" (in-process, fully simulated — the
#: default and the fastest) or a real TCP front end ("threaded" /
#: "eventloop"), so the sweep's at-most-once claim covers the actual
#: servers a node deploys, not just the simulated transport.
SWEEP_SERVER_MODELS = ("loopback", "threaded", "eventloop")

#: A scripted step: ("put", key, value) | ("incr", key, by) | ("get", key)
Step = tuple

#: Default workload: reads and writes interleaved, with non-idempotent
#: increments positioned so every network event touches something whose
#: duplication or loss would be visible in the final state.
DEFAULT_STEPS: list[Step] = [
    ("put", "alpha", 1),
    ("incr", "alpha", 2),
    ("get", "alpha"),
    ("put", "beta", 10),
    ("incr", "beta", 5),
    ("incr", "alpha", 4),
    ("get", "beta"),
    ("put", "alpha", 100),
    ("get", "alpha"),
]

UPDATE_OPS = ("put", "incr")


def sweep_interface() -> Interface:
    """The tiny key-value interface the sweep drives."""
    iface = Interface("NetSweepKV")
    iface.method(
        "put", params=[("key", Str), ("value", Int)], returns=Void
    )
    iface.method("incr", params=[("key", Str), ("by", Int)], returns=Int)
    iface.method("get", params=[("key", Str)], returns=OptionalOf(Int))
    return iface


class SweepService:
    """The server implementation, logging every *execution*.

    The execution log is the ground truth the model check needs: a
    retransmitted call answered from the reply cache leaves no trace
    here, while a wrongly re-executed one appears twice.
    """

    def __init__(self) -> None:
        self.state: dict[str, int] = {}
        self.executions: list[Step] = []

    def put(self, key: str, value: int) -> None:
        self.executions.append(("put", key, value))
        self.state[key] = value

    def incr(self, key: str, by: int) -> int:
        self.executions.append(("incr", key, by))
        self.state[key] = self.state.get(key, 0) + by
        return self.state[key]

    def get(self, key: str):
        self.executions.append(("get", key))
        return self.state.get(key)


def run_model(steps: list[Step]) -> tuple[dict[str, int], list[object]]:
    """Expected final state and per-step return values."""
    state: dict[str, int] = {}
    returns: list[object] = []
    for step in steps:
        op = step[0]
        if op == "put":
            state[step[1]] = step[2]
            returns.append(None)
        elif op == "incr":
            state[step[1]] = state.get(step[1], 0) + step[2]
            returns.append(state[step[1]])
        elif op == "get":
            returns.append(state.get(step[1]))
        else:
            raise ValueError(f"unknown step kind {op!r}")
    return state, returns


@dataclass
class NetFaultOutcome:
    """What one faulted run looked like against the model."""

    fault_at_event: int
    kind: str
    #: where the fault landed ("request"/"reply"), from the injector
    point: str | None
    acked_calls: int
    retries: int
    reply_cache_hits: int
    update_executions: int
    failure: str | None = None


@dataclass
class NetSweepResult:
    total_events: int
    outcomes: list[NetFaultOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[NetFaultOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def total_cache_hits(self) -> int:
        return sum(o.reply_cache_hits for o in self.outcomes)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} network-fault states "
                f"violated at-most-once; first: event {first.fault_at_event} "
                f"kind={first.kind}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"{self.runs} runs over {self.total_events} network events: "
            f"{len(self.failures)} failures, {self.total_retries} retries, "
            f"{self.total_cache_hits} reply-cache hits"
        )


class NetworkFaultSweep:
    """Sweeps a scripted RPC workload over every network fault point."""

    def __init__(
        self,
        steps: list[Step] | None = None,
        kinds: tuple[str, ...] = ("drop", "sever"),
        retry: RetryPolicy | None = None,
        client_id: str = "netsweep",
        server_model: str = "loopback",
    ) -> None:
        if server_model not in SWEEP_SERVER_MODELS:
            raise ValueError(
                f"unknown server model {server_model!r}; "
                f"one of {SWEEP_SERVER_MODELS}"
            )
        self.steps = list(DEFAULT_STEPS if steps is None else steps)
        self.kinds = kinds
        self.server_model = server_model
        #: "" opts out of at-most-once — used by tests to prove the sweep
        #: catches the double executions that then occur
        self.client_id = client_id
        self.retry = retry or RetryPolicy(
            max_attempts=5,
            base_delay_seconds=0.005,
            max_delay_seconds=0.1,
            deadline_seconds=60.0,
        )
        self.interface = sweep_interface()
        self._model_state, self._model_returns = run_model(self.steps)

    # -- execution ------------------------------------------------------------

    def _build(self, injector: NetworkFaultInjector, seed: int):
        """One fresh client/server pair; returns a closer that tears it
        all down (for the TCP models: stops the listener and its
        threads, so a full sweep never accumulates servers)."""
        clock = SimClock()
        service = SweepService()
        server = RpcServer()
        server.export(self.interface, service)
        front = None
        if self.server_model == "loopback":
            inner = LoopbackTransport(server, clock=clock, network=LAN_1987)
        else:
            # A real TCP server: faults still inject deterministically
            # because FaultyTransport sits above the socket — a dropped
            # request never reaches it, a dropped reply is discarded
            # after the call genuinely executed over the wire.
            front_type = (
                TcpServerThread
                if self.server_model == "threaded"
                else EventLoopServer
            )
            front = front_type(server).start()
            inner = TcpTransport(front.host, front.port)
        transport = FaultyTransport(inner, injector, clock=clock)
        client = RpcClient(
            self.interface,
            transport,
            client_id=self.client_id,
            retry=self.retry,
            clock=clock,
            rng=random.Random(seed),
        )

        def closer() -> None:
            client.close()
            if front is not None:
                front.stop()

        return service, server, client, closer

    def _drive(self, client: RpcClient) -> list[object]:
        proxy = client.proxy()
        returns: list[object] = []
        for step in self.steps:
            op = step[0]
            returns.append(getattr(proxy, op)(*step[1:]))
        return returns

    def count_events(self) -> int:
        """Dry run: total network events the script generates."""
        injector = NetworkFaultInjector()
        _, _, client, closer = self._build(injector, seed=0)
        try:
            self._drive(client)
        finally:
            closer()
        return injector.events_seen

    def run(self, max_events: int | None = None) -> NetSweepResult:
        """The full sweep; returns per-fault-state outcomes."""
        total = self.count_events()
        swept = total if max_events is None else min(total, max_events)
        result = NetSweepResult(total_events=total)
        for fault_at in range(1, swept + 1):
            for kind in self.kinds:
                result.outcomes.append(self._run_one(fault_at, kind))
        return result

    def _run_one(self, fault_at: int, kind: str) -> NetFaultOutcome:
        injector = NetworkFaultInjector(fault_at_event=fault_at, kind=kind)
        seed = fault_at * 8 + len(kind)  # deterministic, distinct per run
        service, server, client, closer = self._build(injector, seed)
        acked = 0
        returns: list[object] = []
        try:
            try:
                returns = self._drive(client)
                acked = len(returns)
            except Exception as exc:
                point = injector.injected[0][2] if injector.injected else None
                return NetFaultOutcome(
                    fault_at, kind, point, acked,
                    client.stats.retries, server.reply_cache.hits,
                    self._update_executions(service),
                    failure=f"workload did not complete: {exc!r}",
                )
            return self._judge(fault_at, kind, injector, service, server,
                               client, returns)
        finally:
            closer()

    def _update_executions(self, service: SweepService) -> int:
        return sum(1 for e in service.executions if e[0] in UPDATE_OPS)

    def _judge(
        self,
        fault_at: int,
        kind: str,
        injector: NetworkFaultInjector,
        service: SweepService,
        server: RpcServer,
        client: RpcClient,
        returns: list[object],
    ) -> NetFaultOutcome:
        point = injector.injected[0][2] if injector.injected else None
        expected_updates = sum(
            1 for step in self.steps if step[0] in UPDATE_OPS
        )
        outcome = NetFaultOutcome(
            fault_at, kind, point, len(returns),
            client.stats.retries, server.reply_cache.hits,
            self._update_executions(service),
        )
        failures: list[str] = []
        if service.state != self._model_state:
            failures.append(
                f"server state {service.state!r} != model "
                f"{self._model_state!r} (acknowledged update lost or "
                f"phantom applied)"
            )
        if outcome.update_executions != expected_updates:
            failures.append(
                f"{outcome.update_executions} update executions for "
                f"{expected_updates} update calls (duplicate or lost "
                f"execution)"
            )
        if returns != self._model_returns:
            failures.append(
                f"client observed {returns!r}, model says "
                f"{self._model_returns!r}"
            )
        if injector.injected and kind in ("drop", "sever"):
            if outcome.retries < 1:
                failures.append(
                    "fault was injected but the client never retried"
                )
            if point == "reply" and outcome.reply_cache_hits < 1:
                failures.append(
                    "reply was dropped after execution but the retry was "
                    "not answered from the reply cache"
                )
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse

    parser = argparse.ArgumentParser(
        description="network-fault sweep for at-most-once RPC semantics"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N (default: all)",
    )
    parser.add_argument(
        "--kinds", nargs="+", default=["drop", "sever"],
        choices=["drop", "sever", "delay"],
    )
    parser.add_argument(
        "--server-model", choices=SWEEP_SERVER_MODELS, default="loopback",
        help="carry calls in-process (loopback, default) or through a "
        "real TCP front end (threaded / eventloop)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = NetworkFaultSweep(
        kinds=tuple(args.kinds), server_model=args.server_model
    )
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  event {outcome.fault_at_event:3d} {outcome.kind:6s} "
                f"({outcome.point or '-':7s}) retries={outcome.retries} "
                f"cache_hits={outcome.reply_cache_hits} {status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL event {outcome.fault_at_event} kind={outcome.kind}: "
            f"{outcome.failure}"
        )
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
