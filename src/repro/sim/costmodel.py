"""CPU cost model calibrated to the paper's MicroVAX II measurements.

The paper (section 5) breaks a 54 ms update down into:

* exploring the virtual memory structure — 6 ms
* modifying the virtual memory structure — 6 ms
* pickling the update parameters — 22 ms
* writing the log entry through the file system — 20 ms (disk model's job)

and reports a typical simple enquiry at 5 ms, a checkpoint of the 1 MB
database at 55 s of pickling + 5 s of disk writes, and a restart that reads
the checkpoint in about 20 s then replays log entries at about 20 ms each.

The per-byte rates below are derived directly from those numbers:

* pickling 1 MB in 55 s  ⇒ 55 µs/byte (a ~400 byte update entry ⇒ ~22 ms)
* "about 20 seconds to read the checkpoint" ⇒ ~4.4 s of that is the
  modelled disk transfer of 1 MB, leaving ~15.6 s of PickleRead CPU
  ⇒ 15 µs/byte

Charging these against a :class:`~repro.sim.clock.SimClock` reproduces the
paper's latencies in shape and in rough magnitude regardless of host speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import Clock


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs, in seconds, charged to a clock.

    All rates default to zero so a default-constructed model is free; the
    :data:`MICROVAX_II` instance carries the paper's calibration.
    """

    #: seconds of CPU per byte produced by PickleWrite
    pickle_seconds_per_byte: float = 0.0
    #: fixed overhead per PickleWrite call
    pickle_seconds_per_call: float = 0.0
    #: seconds of CPU per byte consumed by PickleRead
    unpickle_seconds_per_byte: float = 0.0
    #: fixed overhead per PickleRead call
    unpickle_seconds_per_call: float = 0.0
    #: one enquiry's walk of the virtual memory structure
    enquiry_seconds: float = 0.0
    #: an update's precondition walk of the virtual memory structure
    explore_seconds: float = 0.0
    #: an update's mutation of the virtual memory structure
    modify_seconds: float = 0.0

    def charge_pickle(self, clock: Clock, nbytes: int) -> None:
        """Charge the CPU cost of pickling ``nbytes`` of output."""
        clock.advance(self.pickle_seconds_per_call + nbytes * self.pickle_seconds_per_byte)

    def charge_unpickle(self, clock: Clock, nbytes: int) -> None:
        """Charge the CPU cost of unpickling ``nbytes`` of input."""
        clock.advance(self.unpickle_seconds_per_call + nbytes * self.unpickle_seconds_per_byte)

    def charge_enquiry(self, clock: Clock) -> None:
        """Charge one enquiry's virtual memory lookup."""
        clock.advance(self.enquiry_seconds)

    def charge_explore(self, clock: Clock) -> None:
        """Charge an update's precondition check."""
        clock.advance(self.explore_seconds)

    def charge_modify(self, clock: Clock) -> None:
        """Charge an update's virtual memory mutation."""
        clock.advance(self.modify_seconds)


#: Calibration reproducing the paper's MicroVAX II numbers (section 5).
MICROVAX_II = CostModel(
    pickle_seconds_per_byte=55e-6,
    pickle_seconds_per_call=0.0,
    unpickle_seconds_per_byte=15e-6,
    unpickle_seconds_per_call=0.0,
    enquiry_seconds=5e-3,
    explore_seconds=6e-3,
    modify_seconds=6e-3,
)

#: Free cost model for wall-clock operation.
NULL_COST_MODEL = CostModel()
