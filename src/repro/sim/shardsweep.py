"""The shard sweep: online migration checked at every fault point.

The recovery sweep proves a *replica* can be rebuilt through faults;
this harness proves the cluster's online shard split — the staged
:class:`~repro.cluster.migrate.ShardMigration` — keeps its promises
while the network fails and the coordinator crashes, **with client
traffic still flowing**.  The world is fully simulated: a donor shard
owning the whole hash space, an empty target shard, a coordinator on its
own :class:`~repro.storage.simfs.SimFS`, and a stream of client updates
injected at every observable point of the migration.  Two
quantifications:

1. **Network faults.**  The migration is a multi-RPC conversation
   (coordinator → donor/target) plus the donor's mirror forwards.  All
   of those transports share one
   :class:`~repro.rpc.faults.NetworkFaultInjector`.  A dry run counts
   the events; the sweep then re-runs the whole migration with a
   ``drop`` / ``sever`` / ``delay`` scheduled at each event 1..N.  The
   client retries plus the migration's stage retries must absorb the
   fault — and if a run does give up with
   :class:`~repro.cluster.errors.MigrationFailed`, the persisted state
   must let a second run (the operator retry) finish the job.

2. **Coordinator crashes.**  The migration calls its ``stage_observer``
   at every stage entry, after every durable save and per-component
   copy.  The sweep crashes there (raises out of the observer, drops
   the coordinator's unsynced file state), builds a *fresh* coordinator
   over the surviving directory, and resumes.

After every faulted run the same invariants are judged:

* every update acked to a client is readable through a fresh router and
  carries its **latest** acked value — nothing lost, nothing doubled;
* every component has **exactly one owner**: the owning shard answers,
  every other shard raises a typed ``WrongShard``;
* a scatter ``count()`` equals the number of distinct live names — no
  double-counting from a half-purged donor;
* the published map's epoch advanced past the pre-split epoch.

Run standalone (the CI job does)::

    PYTHONPATH=src python -m repro.sim.shardsweep
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.cluster.coordinator import Coordinator
from repro.cluster.errors import MigrationFailed, WrongShard
from repro.cluster.router import ShardRouter
from repro.cluster.shard import SHARD_INTERFACE, RemoteShard, ShardService
from repro.core.sharding import HASH_SPACE, default_hash
from repro.nameserver.server import NameServer
from repro.rpc import (
    FaultyTransport,
    LoopbackTransport,
    NetworkFaultInjector,
    NullNetworkInjector,
    RetryPolicy,
    RpcServer,
)
from repro.sim.clock import SimClock
from repro.storage import SimFS

#: network fault kinds the sweep schedules (see repro.rpc.faults)
SWEEP_KINDS = ("drop", "sever", "delay")

#: the half of the hash space a full-space donor gives up in a split
MOVE_BOUNDARY = HASH_SPACE // 2


def _partition_components(prefix: str, wanted: int, moving: bool) -> list[str]:
    """Deterministic component names hashing into the chosen half."""
    names: list[str] = []
    index = 0
    while len(names) < wanted:
        candidate = f"{prefix}{index:03d}"
        in_upper = default_hash(candidate) >= MOVE_BOUNDARY
        if in_upper == moving:
            names.append(candidate)
        index += 1
    return names


#: seeded before the split: four moving components, two staying put
MOVING_COMPONENTS = _partition_components("svc", 4, moving=True)
STABLE_COMPONENTS = _partition_components("cfg", 2, moving=False)


class SimulatedCrash(Exception):
    """Raised out of the stage observer to model a coordinator halt."""


@dataclass
class ShardFaultOutcome:
    """One faulted migration run against the invariants."""

    fault_at: int
    kind: str
    #: "network" or "crash"
    mode: str
    fired: bool = False
    completed: bool = False
    retried_run: bool = False
    resumed: bool = False
    acked_updates: int = 0
    forwarded: int = 0
    new_epoch: int = 0
    failure: str | None = None


@dataclass
class ShardSweepResult:
    network_events: int
    crash_points: int
    outcomes: list[ShardFaultOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> list[ShardFaultOutcome]:
        return [o for o in self.outcomes if o.failure is not None]

    @property
    def resumed_runs(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def assert_clean(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise AssertionError(
                f"{len(self.failures)} of {self.runs} faulted migrations "
                f"violated the cluster invariants; first: {first.mode} "
                f"fault {first.fault_at} kind={first.kind}: {first.failure}"
            )

    def summary(self) -> str:
        return (
            f"{self.runs} migrations over {self.network_events} network "
            f"events + {self.crash_points} crash points: "
            f"{len(self.failures)} failures, {self.resumed_runs} resumed "
            f"from a persisted stage"
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI job uploads this artifact)."""
        return {
            "network_events": self.network_events,
            "crash_points": self.crash_points,
            "runs": self.runs,
            "failures": len(self.failures),
            "resumed_runs": self.resumed_runs,
            "outcomes": [asdict(o) for o in self.outcomes],
        }


class _World:
    """One simulated cluster: donor s0 (owns all), empty target s1."""

    def __init__(self, injector: NetworkFaultInjector, seed: int) -> None:
        self.injector = injector
        self.clock = SimClock()
        self.rng = random.Random(seed)
        self._client_serial = 0
        self.rpcs: dict[str, RpcServer] = {}
        self.services: dict[str, ShardService] = {}

        self.coordinator_fs = SimFS(clock=self.clock)
        self.coordinator = self._coordinator()
        shard_map = self.coordinator.bootstrap({"s0": "sim:s0"})
        for shard_id in ("s0", "s1"):
            self._build_shard(shard_id, shard_map)
        self.coordinator.add_shard("s1", "sim:s1")

        self.router = ShardRouter(
            self.coordinator.current_map(),
            transport_factory=self._clean_transport,
        )
        #: path -> latest value acked to the client
        self.acked: dict[str, object] = {}
        self._sequence = 0

    # -- construction ----------------------------------------------------------

    def _coordinator(self) -> Coordinator:
        return Coordinator(
            self.coordinator_fs,
            shard_client_factory=self._faulted_shard_client,
            stage_retries=2,
        )

    def _build_shard(self, shard_id: str, shard_map) -> None:
        server = NameServer(SimFS(clock=self.clock), replica_id=shard_id)
        service = ShardService(
            server, shard_id, shard_map,
            forward_factory=self._faulted_forwarder,
        )
        rpc = RpcServer()
        rpc.export(SHARD_INTERFACE, service)
        self.services[shard_id] = service
        self.rpcs[shard_id] = rpc

    def _clean_transport(self, address: str):
        return LoopbackTransport(self.rpcs[address.split(":")[1]])

    def _faulted_transport(self, address: str):
        inner = LoopbackTransport(
            self.rpcs[address.split(":")[1]], clock=self.clock
        )
        return FaultyTransport(inner, self.injector, clock=self.clock)

    def _client_options(self) -> dict:
        self._client_serial += 1
        return {
            "client_id": f"shardsweep-{self._client_serial}",
            "clock": self.clock,
            "rng": self.rng,
            "retry": RetryPolicy(
                max_attempts=4,
                base_delay_seconds=0.005,
                max_delay_seconds=0.1,
                deadline_seconds=60.0,
            ),
        }

    def _faulted_shard_client(self, shard_info) -> RemoteShard:
        return RemoteShard(
            self._faulted_transport(shard_info.address),
            **self._client_options(),
        )

    def _faulted_forwarder(self, address: str) -> RemoteShard:
        return RemoteShard(
            self._faulted_transport(address), **self._client_options()
        )

    # -- the live workload ------------------------------------------------------

    def seed(self) -> None:
        for component in MOVING_COMPONENTS + STABLE_COMPONENTS:
            self._bind(component)

    def traffic_observer(self, _point: str) -> None:
        """One moving-range and one stable update at every observable
        point of the migration — the sweep's 'live traffic'."""
        cycle = MOVING_COMPONENTS + STABLE_COMPONENTS
        self._bind(cycle[self._sequence % len(cycle)])
        self._bind(MOVING_COMPONENTS[self._sequence % len(MOVING_COMPONENTS)])

    def _bind(self, component: str) -> None:
        self._sequence += 1
        path = f"{component}/addr"
        self.router.bind(path, self._sequence)
        self.acked[path] = self._sequence

    # -- judgement --------------------------------------------------------------

    def judge(self, outcome: ShardFaultOutcome, initial_epoch: int) -> list[str]:
        failures: list[str] = []
        current = self.coordinator.current_map()
        outcome.new_epoch = current.epoch
        outcome.acked_updates = self._sequence
        outcome.forwarded = self.services["s0"].forwarded
        if current.epoch <= initial_epoch:
            failures.append(
                f"epoch never advanced past {initial_epoch} "
                f"(still {current.epoch})"
            )

        fresh = ShardRouter(current, transport_factory=self._clean_transport)
        try:
            for path, want in self.acked.items():
                try:
                    got = fresh.lookup(path)
                except Exception as exc:  # noqa: BLE001 - any escape is a finding
                    failures.append(
                        f"acked update {path!r} unreadable: {exc!r}"
                    )
                    continue
                if got != want:
                    failures.append(
                        f"acked update {path!r} reads {got!r}, latest "
                        f"acked value was {want!r} (lost or doubled)"
                    )
            total = fresh.count()
            if total != len(self.acked):
                failures.append(
                    f"scatter count {total} != {len(self.acked)} distinct "
                    f"live names (double-count or loss across shards)"
                )
        finally:
            fresh.close()

        for component in MOVING_COMPONENTS + STABLE_COMPONENTS:
            owners = []
            for shard_id, service in self.services.items():
                try:
                    service.exists((component, "addr"))
                    owners.append(shard_id)
                except WrongShard:
                    pass
            if len(owners) != 1:
                failures.append(
                    f"component {component!r} owned by {owners!r}, "
                    f"expected exactly one shard"
                )
        moved_owner = self.coordinator.current_map().owner_of(
            MOVING_COMPONENTS[0]
        )
        if outcome.completed and moved_owner.shard_id != "s1":
            failures.append(
                f"moved range still maps to {moved_owner.shard_id!r}"
            )
        return failures

    def close(self) -> None:
        self.router.close()


class ShardSweep:
    """Sweeps one online shard split over every fault point."""

    def __init__(
        self,
        kinds: tuple[str, ...] = SWEEP_KINDS,
        stage_retries: int = 2,
    ) -> None:
        unknown = set(kinds) - set(SWEEP_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.kinds = kinds
        self.stage_retries = stage_retries

    # -- dry runs ---------------------------------------------------------------

    def _clean_run(self, observer=None) -> tuple[_World, object]:
        world = _World(NullNetworkInjector(), seed=0)
        world.seed()

        def observe(point: str) -> None:
            world.traffic_observer(point)
            if observer is not None:
                observer(point)

        report = world.coordinator.split("s0", "s1", stage_observer=observe)
        return world, report

    def count_events(self) -> int:
        """Dry run: network events one clean migration generates."""
        world, _report = self._clean_run()
        try:
            return world.injector.events_seen
        finally:
            world.close()

    def count_crash_points(self) -> int:
        """Dry run: observer callbacks one clean migration makes."""
        points = [0]
        world, _report = self._clean_run(lambda _p: points.__setitem__(
            0, points[0] + 1
        ))
        world.close()
        return points[0]

    def run(self, max_events: int | None = None) -> ShardSweepResult:
        """Both quantifications; returns per-fault-state outcomes."""
        events = self.count_events()
        crash_points = self.count_crash_points()
        swept_events = (
            events if max_events is None else min(events, max_events)
        )
        swept_points = (
            crash_points
            if max_events is None
            else min(crash_points, max_events)
        )
        result = ShardSweepResult(
            network_events=events, crash_points=crash_points
        )
        for fault_at in range(1, swept_events + 1):
            for kind in self.kinds:
                result.outcomes.append(self._run_network(fault_at, kind))
        for point in range(1, swept_points + 1):
            result.outcomes.append(self._run_crash(point))
        return result

    # -- the network-fault quantification ---------------------------------------

    def _run_network(self, fault_at: int, kind: str) -> ShardFaultOutcome:
        injector = NetworkFaultInjector(fault_at_event=fault_at, kind=kind)
        world = _World(injector, seed=fault_at * 8 + len(kind))
        outcome = ShardFaultOutcome(fault_at, kind, mode="network")
        failures: list[str] = []
        try:
            world.seed()
            initial_epoch = world.coordinator.current_map().epoch
            try:
                world.coordinator.split(
                    "s0", "s1", stage_observer=world.traffic_observer
                )
            except MigrationFailed:
                # The fault exhausted the retries: allowed, but the
                # operator's next attempt must pick up the persisted
                # state and finish.
                outcome.retried_run = True
                injector.disarm()
                try:
                    report = world.coordinator.split(
                        "s0", "s1", stage_observer=world.traffic_observer
                    )
                except MigrationFailed as exc:
                    outcome.failure = (
                        f"migration failed even after the fault cleared "
                        f"(stage {exc.stage}): {exc}"
                    )
                    return outcome
                outcome.resumed = bool(report is None or report.resumed)
            except Exception as exc:  # noqa: BLE001 - any escape is a finding
                outcome.failure = (
                    f"migration raised outside the typed surface: {exc!r}"
                )
                return outcome
            outcome.completed = True
            outcome.fired = bool(injector.injected)
            failures.extend(world.judge(outcome, initial_epoch))
        finally:
            world.close()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome

    # -- the coordinator-crash quantification -------------------------------------

    def _run_crash(self, point: int) -> ShardFaultOutcome:
        world = _World(NullNetworkInjector(), seed=point)
        outcome = ShardFaultOutcome(point, "crash", mode="crash")
        failures: list[str] = []
        seen = [0]

        def crashing_observer(stage_point: str) -> None:
            world.traffic_observer(stage_point)
            seen[0] += 1
            if seen[0] == point:
                raise SimulatedCrash(stage_point)

        try:
            world.seed()
            initial_epoch = world.coordinator.current_map().epoch
            try:
                world.coordinator.split(
                    "s0", "s1", stage_observer=crashing_observer
                )
                outcome.failure = (
                    f"crash point {point} was never reached "
                    f"({seen[0]} observer calls)"
                )
                return outcome
            except SimulatedCrash:
                pass
            outcome.fired = True
            # The coordinator's machine halts: unsynced state is gone.
            world.coordinator_fs.crash()
            world.coordinator = world._coordinator()
            try:
                report = world.coordinator.resume_migration(
                    stage_observer=world.traffic_observer
                )
                if report is None:
                    # Crashed before the first durable save: nothing to
                    # resume, the operator re-issues the split.
                    report = world.coordinator.split(
                        "s0", "s1", stage_observer=world.traffic_observer
                    )
                else:
                    outcome.resumed = True
            except MigrationFailed as exc:
                outcome.failure = f"resume after crash failed: {exc}"
                return outcome
            outcome.completed = True
            failures.extend(world.judge(outcome, initial_epoch))
        finally:
            world.close()
        if failures:
            outcome.failure = "; ".join(failures)
        return outcome


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, print the summary, exit 0/1."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="fault sweep for online shard split/migration"
    )
    parser.add_argument(
        "--max-events", type=int, default=None,
        help="sweep only fault points 1..N per mode (default: all)",
    )
    parser.add_argument(
        "--kinds", nargs="+", default=list(SWEEP_KINDS),
        choices=list(SWEEP_KINDS),
    )
    parser.add_argument(
        "--report", default=None,
        help="write a JSON report of every outcome to this path",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    sweep = ShardSweep(kinds=tuple(args.kinds))
    result = sweep.run(max_events=args.max_events)
    print(result.summary())
    if args.verbose:
        for outcome in result.outcomes:
            status = "FAIL" if outcome.failure else "ok"
            print(
                f"  {outcome.mode:7s} {outcome.fault_at:3d} "
                f"{outcome.kind:6s} fired={outcome.fired} "
                f"resumed={outcome.resumed} acked={outcome.acked_updates} "
                f"{status}"
            )
    for outcome in result.failures:
        print(
            f"FAIL {outcome.mode} fault {outcome.fault_at} "
            f"kind={outcome.kind}: {outcome.failure}"
        )
    if args.report is not None:
        with open(args.report, "w", encoding="ascii") as f:
            json.dump(result.report(), f, indent=2)
        print(f"report written to {args.report}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
