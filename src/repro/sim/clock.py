"""Clocks for the simulation substrate.

Two clock implementations share one small interface:

* :class:`SimClock` — a deterministic virtual clock.  It only moves when a
  component explicitly charges time to it (disk I/O through the latency
  model, CPU work through the cost model).  All of the paper-shaped
  benchmarks run against a ``SimClock`` so the reported milliseconds are the
  modelled 1987 costs, not the wall-clock speed of the host.

* :class:`WallClock` — real elapsed time via ``time.perf_counter``.
  ``advance`` is a no-op: real time cannot be pushed forward.  Used when the
  library is embedded as an actual database over :class:`~repro.storage.LocalFS`.

Both are thread-safe; the database serialises its own critical sections but
the RPC server charges network time from multiple threads.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface for time sources used throughout the library."""

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        raise NotImplementedError

    def advance(self, seconds: float) -> float:
        """Charge ``seconds`` of modelled time; returns the new time."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or model blocking) for ``seconds``."""
        raise NotImplementedError


class SimClock(Clock):
    """Deterministic virtual clock advanced explicitly by cost models.

    >>> clock = SimClock()
    >>> clock.advance(0.020)
    0.02
    >>> clock.now()
    0.02
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        """In simulation, sleeping is just advancing the clock."""
        self.advance(seconds)

    def elapsed_since(self, mark: float) -> float:
        """Seconds of virtual time since ``mark`` (a prior ``now()``)."""
        return self.now() - mark


class WallClock(Clock):
    """Real time.  ``advance`` is a no-op so cost models are harmless."""

    def now(self) -> float:
        return time.perf_counter()

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        return self.now()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class Stopwatch:
    """Measure an interval on any :class:`Clock`.

    >>> clock = SimClock()
    >>> watch = Stopwatch(clock)
    >>> _ = clock.advance(1.5)
    >>> watch.elapsed()
    1.5
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now()

    def elapsed(self) -> float:
        return self._clock.now() - self._start

    def restart(self) -> float:
        """Return the elapsed interval and start a new one."""
        now = self._clock.now()
        elapsed = now - self._start
        self._start = now
        return elapsed
