"""Dump the contents of a database directory, human-readably.

The dump decodes the version-file protocol, the checkpoint framing and
every log/archive entry.  Entry payloads are decoded with the pickle
package when the process has the right classes registered; otherwise the
operation name and payload size are still shown (the framing is
self-describing, the payload is not — by design).
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.core.audit import archived_epochs, archive_name
from repro.core.checkpoint import read_checkpoint
from repro.core.log import LogScan
from repro.core.version import (
    logfile_name,
    checkpoint_name,
    numbered_files,
    read_current_version,
)
from repro.obs.metrics import MetricsRegistry
from repro.pickles import PickleError, pickle_read
from repro.storage.errors import StorageError
from repro.storage.interface import FileSystem
from repro.storage.localfs import LocalFS
from repro.tools.meter import scan_summary, timed_pass


def _describe_payload(payload: bytes) -> str:
    try:
        operation, args, kwargs = pickle_read(payload)
    except (PickleError, ValueError, TypeError):
        return f"<{len(payload)} payload bytes (types not registered here)>"
    parts = [repr(a) for a in args]
    parts += [f"{k}={v!r}" for k, v in kwargs.items()]
    return f"{operation}({', '.join(parts)})"


def _dump_log(fs: FileSystem, name: str, out: TextIO, limit: int) -> None:
    scan = LogScan(fs, name)
    shown = 0
    for entry in scan:
        if shown < limit:
            out.write(
                f"    seq {entry.seq:6d} @ {entry.offset:8d} "
                f"({len(entry.payload):5d} B): "
                f"{_describe_payload(entry.payload)}\n"
            )
        shown += 1
    if shown > limit:
        out.write(f"    … {shown - limit} more entries\n")
    outcome = scan.outcome
    out.write(
        f"    total {outcome.entries} entries, "
        f"{outcome.good_length} good bytes"
    )
    if outcome.damage:
        out.write(f", DAMAGED: {outcome.damage}")
    out.write("\n")


def dump_directory(
    fs: FileSystem,
    out: TextIO = sys.stdout,
    limit: int = 20,
) -> None:
    """Write a human-readable dump of a database directory to ``out``."""
    names = fs.list_names()
    out.write(f"files: {', '.join(names) if names else '(none)'}\n")

    current = read_current_version(fs)
    if current is None:
        out.write("no committed version: empty or never-bootstrapped directory\n")
        return
    out.write(
        f"current version: {current.number} (named by {current.source!r})\n"
    )

    for version in sorted(numbered_files(fs)):
        marker = "  <- current" if version == current.number else ""
        out.write(f"version {version}:{marker}\n")
        ckpt = checkpoint_name(version)
        if fs.exists(ckpt):
            try:
                payload = read_checkpoint(fs, ckpt)
                out.write(
                    f"  {ckpt}: {fs.size(ckpt)} bytes on disk, "
                    f"{len(payload)} pickled payload bytes, checksum OK\n"
                )
            except (StorageError, Exception) as exc:  # noqa: BLE001 - report any damage
                out.write(f"  {ckpt}: UNREADABLE ({exc})\n")
        log = logfile_name(version)
        if fs.exists(log):
            out.write(f"  {log}: {fs.size(log)} bytes\n")
            _dump_log(fs, log, out, limit)

    epochs = archived_epochs(fs)
    if epochs:
        out.write(f"audit archives: epochs {epochs}\n")
        for epoch in epochs:
            name = archive_name(epoch)
            out.write(f"  {name}: {fs.size(name)} bytes\n")
            _dump_log(fs, name, out, limit)


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.dump",
        description="Dump a small-database directory (version files, "
        "checkpoints, logs, archives).",
    )
    parser.add_argument("directory", help="the database directory")
    parser.add_argument(
        "--limit",
        type=int,
        default=20,
        help="log entries to show per file (default 20)",
    )
    options = parser.parse_args(argv)
    # Meter the dump's reads and runtime through a registry; the trailing
    # summary is read back out of it rather than counted by hand.
    registry = MetricsRegistry()
    with timed_pass(registry, "dump"):
        dump_directory(
            LocalFS(options.directory, registry=registry),
            out=out,
            limit=options.limit,
        )
    out.write(scan_summary(registry, "dump") + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
