"""``top`` for a name server: a refreshing view of its live metrics.

Polls a remote server's management interface and renders the unified
metrics registry as an operator console — counters with per-second
rates computed from successive snapshots, gauges, and histogram
latency summaries:

    python -m repro.tools.top --connect host:9999
    python -m repro.tools.top --connect host:9999 --interval 5 --iterations 3
    python -m repro.tools.top --cluster host:9800

With a terminal on stdout the screen is redrawn in place; when piped,
each refresh is a separate block (so ``--iterations 1`` is a one-shot
snapshot suitable for scripts).

``--cluster`` points at a coordinator instead of one server: each frame
polls the coordinator's aggregated health and renders one *column per
shard* — state, name count (with a per-second rate from the previous
frame), log bytes, unchecked-pointed entries, owned ranges — over a
cluster-totals header line.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import TextIO

_CLEAR = "\x1b[2J\x1b[H"


def _series_key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _flatten(snapshot: dict) -> dict[str, dict]:
    """``{series key: {kind, value or histogram fields}}`` for one snapshot."""
    flat: dict[str, dict] = {}
    for name, family in snapshot.items():
        for series in family["series"]:
            entry = dict(series)
            entry["kind"] = family["kind"]
            flat[_series_key(name, series["labels"])] = entry
    return flat


def _ms(seconds: object) -> str:
    if seconds is None:
        return "-"
    return f"{float(seconds) * 1000:.2f}ms"


def render(
    status: dict,
    snapshot: dict,
    previous: dict | None = None,
    interval: float = 1.0,
) -> str:
    """One screenful of operator console from a status + metrics snapshot."""
    flat = _flatten(snapshot)
    before = _flatten(previous) if previous else {}
    lines = [
        f"name server {status.get('replica_id', '?')!r}"
        f"  version {status.get('version', '?')}"
        f"  names {status.get('names', '?')}"
        f"  log {status.get('log_bytes', '?')} B"
        f"  clock {float(status.get('clock', 0.0)):.1f}s",
        "",
    ]

    counters = [(k, e) for k, e in sorted(flat.items()) if e["kind"] == "counter"]
    if counters:
        lines.append(f"{'COUNTER':<52} {'total':>14} {'per-sec':>10}")
        for key, entry in counters:
            value = entry["value"]
            rate = ""
            prior = before.get(key)
            if prior is not None and interval > 0:
                rate = f"{(value - prior['value']) / interval:10.1f}"
            total = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"{key:<52} {total:>14} {rate:>10}")
        lines.append("")

    gauges = [(k, e) for k, e in sorted(flat.items()) if e["kind"] == "gauge"]
    if gauges:
        lines.append(f"{'GAUGE':<52} {'value':>14}")
        for key, entry in gauges:
            lines.append(f"{key:<52} {entry['value']:>14g}")
        lines.append("")

    histograms = [
        (k, e) for k, e in sorted(flat.items()) if e["kind"] == "histogram"
    ]
    if histograms:
        lines.append(
            f"{'HISTOGRAM':<44} {'count':>8} {'mean':>10} {'p50':>10} {'p99':>10}"
        )
        for key, entry in histograms:
            lines.append(
                f"{key:<44} {entry['count']:>8} {_ms(entry['mean']):>10} "
                f"{_ms(entry['p50']):>10} {_ms(entry['p99']):>10}"
            )
        lines.append("")

    return "\n".join(lines)


def _cluster_totals(health: dict) -> dict:
    """Aggregate one health report (mirrors Coordinator.cluster_metrics,
    computed locally so each frame costs a single RPC)."""
    totals = {
        "epoch": health["epoch"],
        "shards": len(health["shards"]),
        "reachable": 0,
        "names": 0,
        "log_bytes": 0,
    }
    for status in health["shards"].values():
        if not status.get("reachable"):
            continue
        totals["reachable"] += 1
        totals["names"] += int(status.get("names", 0))
        totals["log_bytes"] += int(status.get("log_bytes", 0))
    return totals


#: the cluster-rollup series worth a console line (true cluster totals)
_CLUSTER_COUNTERS = (
    "db_updates_total",
    "db_enquiries_total",
    "rpc_server_calls_total",
    "replication_records_propagated_total",
)
_CLUSTER_HISTOGRAMS = (
    "db_update_seconds",
    "rpc_server_seconds",
    "storage_fsync_seconds",
)


def render_cluster(
    health: dict,
    previous: dict | None = None,
    interval: float = 1.0,
    scrape: dict | None = None,
    previous_scrape: dict | None = None,
    slo: dict | None = None,
) -> str:
    """One screenful of cluster console: one column per shard.

    ``scrape`` (a coordinator ``cluster_metrics_snapshot``) adds true
    cluster-level rates and latency quantiles — merged histograms, not
    a max-of-maxes — and ``slo`` (``cluster_slo``) the burn-rate lines.
    Both are optional so the console still works against an older
    coordinator that predates the observability plane.
    """
    totals = _cluster_totals(health)
    shards = sorted(health["shards"].items())
    width = max(16, *(len(sid) + 2 for sid, _ in shards))
    lines = [
        f"cluster epoch {totals['epoch']}"
        f"  shards {totals['shards']}"
        f"  reachable {totals['reachable']}"
        f"  names {totals['names']}"
        f"  log {totals['log_bytes']} B",
        "",
        f"{'':<18}" + "".join(f"{sid:>{width}}" for sid, _ in shards),
    ]

    def row(label: str, cell) -> str:
        return f"{label:<18}" + "".join(
            f"{cell(sid, status):>{width}}" for sid, status in shards
        )

    lines.append(
        row("state", lambda s, st: "up" if st.get("reachable") else "DOWN")
    )
    lines.append(row("names", lambda s, st: str(st.get("names", "-"))))
    if previous is not None and interval > 0:
        before = previous["shards"]

        def names_rate(shard_id: str, status: dict) -> str:
            prior = before.get(shard_id, {})
            if not (status.get("reachable") and prior.get("reachable")):
                return "-"
            delta = int(status.get("names", 0)) - int(prior.get("names", 0))
            return f"{delta / interval:.1f}"

        lines.append(row("names/s", names_rate))
    lines.append(
        row("log bytes", lambda s, st: str(st.get("log_bytes", "-")))
    )
    lines.append(
        row(
            "entries unckpt",
            lambda s, st: str(st.get("entries_since_checkpoint", "-")),
        )
    )
    lines.append(
        row("ranges", lambda s, st: str(len(st.get("ranges") or [])))
    )
    lines.append(row("address", lambda s, st: st.get("address", "-")))

    replica_lines = []
    for sid, status in shards:
        for rid, rep in sorted((status.get("replicas") or {}).items()):
            state = (
                str(rep.get("health", "?"))
                if rep.get("reachable")
                else "DOWN"
            )
            peers = rep.get("peers") or {}
            breakers = ",".join(
                f"{pid}={info.get('state', '?')}"
                for pid, info in sorted(peers.items())
            )
            replica_lines.append(
                f"  {sid:<10} {rid:<14} {rep.get('role', '?'):<10} "
                f"{state:<18} breakers {breakers or '-'}"
            )
    if replica_lines:
        lines.append("")
        lines.append(
            f"  {'SHARD':<10} {'REPLICA':<14} {'ROLE':<10} "
            f"{'STATE':<18} PEER LINKS"
        )
        lines.extend(replica_lines)

    if scrape is not None:
        cluster = _flatten(scrape.get("cluster", {}))
        before = _flatten(previous_scrape.get("cluster", {})) if (
            previous_scrape
        ) else {}
        counter_rows = []
        for name in _CLUSTER_COUNTERS:
            entry = cluster.get(name)
            if entry is None:
                continue
            rate = ""
            prior = before.get(name)
            if prior is not None and interval > 0:
                rate = f"{(entry['value'] - prior['value']) / interval:10.1f}"
            counter_rows.append(
                f"  {name:<44} {entry['value']:>12.0f} {rate:>10}"
            )
        histogram_rows = []
        for name in _CLUSTER_HISTOGRAMS:
            entry = cluster.get(name)
            if entry is None:
                continue
            histogram_rows.append(
                f"  {name:<44} {entry['count']:>8} "
                f"{_ms(entry.get('mean')):>10} {_ms(entry.get('p50')):>10} "
                f"{_ms(entry.get('p99')):>10}"
            )
        if counter_rows:
            lines.append("")
            lines.append(
                f"  {'CLUSTER COUNTER':<44} {'total':>12} {'per-sec':>10}"
            )
            lines.extend(counter_rows)
        if histogram_rows:
            lines.append("")
            lines.append(
                f"  {'CLUSTER HISTOGRAM':<44} {'count':>8} {'mean':>10} "
                f"{'p50':>10} {'p99':>10}"
            )
            lines.extend(histogram_rows)

    if slo is not None and slo.get("targets"):
        lines.append("")
        lines.append(
            f"  {'SLO':<24} {'objective':>10} {'burn fast':>10} "
            f"{'burn slow':>10}  state"
        )
        for target in slo["targets"]:
            state = "ALERT" if target.get("alerting") else "ok"
            lines.append(
                f"  {target['name']:<24} "
                f"{target['objective'] * 100:>9.2f}% "
                f"{target['burn_fast']:>10.2f} {target['burn_slow']:>10.2f}"
                f"  {state}"
            )
    lines.append("")
    return "\n".join(lines)


def run_cluster(
    coordinator,
    out: TextIO,
    interval: float = 2.0,
    iterations: int = 0,
    clear_screen: bool = False,
    sleep=time.sleep,
) -> int:
    """The cluster refresh loop: health + metric rollups + SLOs per frame.

    A coordinator that predates the observability plane (no
    ``cluster_metrics_snapshot``/``cluster_slo`` RPC) still renders the
    health columns — the extra sections just stay absent.
    """
    previous: dict | None = None
    previous_scrape: dict | None = None
    drawn = 0
    obs_available = True
    while True:
        health = coordinator.health()
        scrape = slo = None
        if obs_available:
            try:
                scrape = coordinator.cluster_metrics_snapshot()
                slo = coordinator.cluster_slo()
            except Exception:
                obs_available = False
        frame = render_cluster(
            health,
            previous,
            interval,
            scrape=scrape,
            previous_scrape=previous_scrape,
            slo=slo,
        )
        if clear_screen:
            out.write(_CLEAR)
        out.write(frame + "\n")
        out.flush()
        previous = health
        previous_scrape = scrape
        drawn += 1
        if iterations and drawn >= iterations:
            return 0
        sleep(interval)


def run(
    management,
    out: TextIO,
    interval: float = 2.0,
    iterations: int = 0,
    clear_screen: bool = False,
    sleep=time.sleep,
) -> int:
    """The refresh loop, separated from transport setup for testing.

    ``iterations`` of 0 means run until interrupted; the first frame is
    drawn immediately and has no rate column (no prior sample yet).
    """
    previous: dict | None = None
    drawn = 0
    while True:
        status = management.status()
        snapshot = management.metrics()
        frame = render(status, snapshot, previous, interval)
        if clear_screen:
            out.write(_CLEAR)
        out.write(frame + "\n")
        out.flush()
        previous = snapshot
        drawn += 1
        if iterations and drawn >= iterations:
            return 0
        sleep(interval)


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.top",
        description="Live metrics console for a running name server.",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT",
        help="the server's data/management TCP endpoint",
    )
    parser.add_argument(
        "--cluster", metavar="HOST:PORT",
        help="a cluster coordinator endpoint (per-shard columns)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (default 2)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0,
        help="stop after this many frames (default: run until interrupted)",
    )
    options = parser.parse_args(argv)

    if bool(options.connect) == bool(options.cluster):
        parser.error("give exactly one of --connect or --cluster")

    from repro.rpc import TcpTransport

    if options.cluster:
        from repro.cluster import RemoteCoordinator

        host, _, port = options.cluster.rpartition(":")
        coordinator = RemoteCoordinator(TcpTransport(host, int(port)))
        try:
            return run_cluster(
                coordinator,
                out,
                interval=options.interval,
                iterations=options.iterations,
                clear_screen=out.isatty(),
            )
        except KeyboardInterrupt:
            return 0
        finally:
            coordinator.close()

    from repro.nameserver.management import RemoteManagement

    host, _, port = options.connect.rpartition(":")
    management = RemoteManagement(TcpTransport(host, int(port)))
    try:
        return run(
            management,
            out,
            interval=options.interval,
            iterations=options.iterations,
            clear_screen=out.isatty(),
        )
    except KeyboardInterrupt:
        return 0
    finally:
        management.close()


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
