"""Operator tools: inspect, validate and browse database directories.

* ``python -m repro.tools.dump <directory>`` — show the version state,
  checkpoint summary, log entries and any archives of a database
  directory, without needing the application's operation registry.
* ``python -m repro.tools.fsck <directory>`` — validate the on-disk
  invariants of the version-file protocol, checkpoint framing and log
  framing; exit status reflects the verdict.
* ``python -m repro.tools.shell <directory>`` (or ``--connect
  host:port``) — interactively browse and modify a name server.

All three are read-only except the shell's explicit ``set``/``rm``
commands.  The submodules are resolved lazily (PEP 562) so running one as
``python -m`` does not pre-import it through the package.
"""

_LAZY = {
    "FsckReport": "repro.tools.fsck",
    "fsck_directory": "repro.tools.fsck",
    "dump_directory": "repro.tools.dump",
    "Shell": "repro.tools.shell",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
