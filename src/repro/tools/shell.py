"""An interactive shell for browsing and modifying a name server.

Section 6 again: among the name server's surrounding parts were "user
interfaces for browsing and modifying the database".  This is that user
interface — a small command shell that drives either a local database
directory or a remote server over TCP:

    python -m repro.tools.shell /var/lib/names          # local directory
    python -m repro.tools.shell --connect host:9999     # remote server
    python -m repro.tools.shell --cluster host:9800     # sharded cluster

With ``--cluster`` the shell dials the coordinator, fetches the shard
map, and serves data commands through a :class:`ShardRouter` — reads
and writes go to the owning shard, enumeration scatter-gathers.  The
management commands grow a shard argument: ``health``, ``metrics`` and
``flight`` route to one named shard or fan out over ``all``, and a
``shards`` command prints the map.

Commands::

    ls [path]            list a directory
    tree [path]          the whole subtree with values
    get <path>           look a value up
    set <path> <value>   bind (value parsed as a Python literal if possible)
    rm <path>            unbind one name
    rmtree <path>        unbind a subtree
    find <pattern>       glob enumeration (*, **)
    count                live name count
    shards               the shard map (cluster mode)
    health [shard|all]   storage health state (degraded read-only?)
    recover              rebuild this replica from a peer (staged recovery)
    checkpoint           force a checkpoint (local only)
    metrics              the unified metrics registry (Prometheus text)
    trace [id]           render one trace tree (default: newest)
    slowops              operations retained by the slow-op log
    help / quit

The shell is deliberately dumb about values: scripting belongs in Python
against the real API; this is for poking around.
"""

from __future__ import annotations

import argparse
import ast
import shlex
import sys
from typing import TextIO

from repro.core.errors import DatabaseDegraded
from repro.nameserver import (
    NameServer,
    NameServerError,
    RemoteNameServer,
)
from repro.nameserver.management import ManagementService
from repro.obs import build_tree, format_tree
from repro.storage.localfs import LocalFS


def parse_value(text: str) -> object:
    """A Python literal when possible, else the raw string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


class Shell:
    """One shell session bound to a server-like object.

    In cluster mode ``server`` is a :class:`~repro.cluster.ShardRouter`,
    ``coordinator`` a :class:`~repro.cluster.RemoteCoordinator`, and
    ``management_factory(address)`` dials one shard's management
    interface so ``health``/``metrics``/``flight`` can be routed to a
    named shard or fanned out over ``all``.
    """

    def __init__(
        self,
        server,
        out: TextIO = sys.stdout,
        management=None,
        coordinator=None,
        management_factory=None,
    ) -> None:
        self.server = server
        self.out = out
        self.management = management
        self.coordinator = coordinator
        self.management_factory = management_factory
        self.running = True

    def execute(self, line: str) -> None:
        """Run one command line; errors are printed, never raised."""
        try:
            words = shlex.split(line)
        except ValueError as exc:
            self._print(f"parse error: {exc}")
            return
        if not words:
            return
        command, args = words[0], words[1:]
        handler = getattr(self, f"do_{command}", None)
        if handler is None:
            self._print(f"unknown command {command!r}; try 'help'")
            return
        try:
            handler(args)
        except (NameServerError, DatabaseDegraded) as exc:
            self._print(str(exc))
        except TypeError:
            self._print(f"usage error; try 'help'")

    def repl(self, lines: TextIO) -> None:
        for line in lines:
            if not self.running:
                break
            self.execute(line.rstrip("\n"))

    # -- commands ------------------------------------------------------------

    def do_help(self, args: list[str]) -> None:
        self._print(
            "commands: ls [path] | tree [path] | get <path> | "
            "set <path> <value> | rm <path> | rmtree <path> | "
            "find <pattern> | count | shards | health [shard|all] | "
            "recover | checkpoint | metrics [shard|all] | trace [id] | "
            "slowops | profile [seconds] | flight [shard|all] [kind] | "
            "quit"
        )

    def do_ls(self, args: list[str]) -> None:
        path = args[0] if args else ()
        for name in self.server.list_dir(path):
            self._print(name)

    def do_tree(self, args: list[str]) -> None:
        path = args[0] if args else ()
        entries = self.server.read_subtree(path)
        if not entries:
            self._print("(empty)")
            return
        for relative, value in entries:
            self._print(f"{'/'.join(relative)} = {value!r}")

    def do_get(self, args: list[str]) -> None:
        (path,) = args
        self._print(repr(self.server.lookup(path)))

    def do_set(self, args: list[str]) -> None:
        path, raw = args[0], " ".join(args[1:])
        if not raw:
            self._print("usage: set <path> <value>")
            return
        self.server.bind(path, parse_value(raw))
        self._print("ok")

    def do_rm(self, args: list[str]) -> None:
        (path,) = args
        self.server.unbind(path)
        self._print("ok")

    def do_rmtree(self, args: list[str]) -> None:
        (path,) = args
        self.server.unbind_subtree(path)
        self._print("ok")

    def do_find(self, args: list[str]) -> None:
        (pattern,) = args
        for path, value in self.server.glob(pattern):
            self._print(f"{'/'.join(path)} = {value!r}")

    def do_count(self, args: list[str]) -> None:
        self._print(str(self.server.count()))

    # -- cluster mode --------------------------------------------------------

    def do_shards(self, args: list[str]) -> None:
        """``shards``: the shard map plus one line per replica.

        Each replica row shows its role (primary/follower), reachability
        / storage health, and its peer-link circuit breakers — the
        at-a-glance view of a failover in progress.
        """
        if self.coordinator is None:
            self._print("not connected to a cluster (use --cluster)")
            return
        shard_map = self.coordinator.shard_map()
        try:
            health = self.coordinator.health()["shards"]
        except Exception:  # noqa: BLE001 - map still prints without probes
            health = {}
        self._print(
            f"epoch {shard_map.epoch}, {len(shard_map.shards)} shards"
        )
        for shard in shard_map.shards:
            ranges = " ".join(
                f"[{lo:#010x},{hi:#010x})" for lo, hi in shard.ranges
            )
            self._print(f"  {shard.shard_id:<8} {shard.address:<22} {ranges}")
            probes = (health.get(shard.shard_id) or {}).get("replicas") or {}
            for replica in shard.replica_set:
                probe = probes.get(replica.replica_id) or {}
                if probe:
                    state = (
                        str(probe.get("health", "?"))
                        if probe.get("reachable")
                        else "DOWN"
                    )
                else:
                    state = "?"
                breakers = ",".join(
                    f"{pid}={info.get('state', '?')}"
                    for pid, info in sorted((probe.get("peers") or {}).items())
                )
                self._print(
                    f"    {replica.replica_id:<12} "
                    f"{shard.role_of(replica.replica_id):<10} "
                    f"{state:<18} {replica.address:<22} "
                    f"breakers {breakers or '-'}"
                )

    def _each_shard(self, target: str):
        """Yield ``(shard_id, management)`` for one named shard or all.

        Unknown names and unreachable shards are printed, not raised, so
        a fan-out keeps going past a dead shard.
        """
        if self.management_factory is None:
            self._print("per-shard management is not available")
            return
        shards = self.coordinator.shards()
        if target != "all" and target not in shards:
            self._print(f"unknown shard {target!r}; try 'shards'")
            return
        selected = sorted(shards) if target == "all" else [target]
        for shard_id in selected:
            try:
                management = self.management_factory(shards[shard_id])
            except Exception as exc:  # noqa: BLE001 - operator display
                self._print(f"{shard_id}: unreachable: {exc}")
                continue
            try:
                yield shard_id, management
            finally:
                close = getattr(management, "close", None)
                if close is not None:
                    try:
                        close()
                    except Exception:  # noqa: BLE001
                        pass

    def _cluster_health(self, args: list[str]) -> None:
        target = args[0] if args else "all"
        health = self.coordinator.health()
        if target != "all" and target not in health["shards"]:
            self._print(f"unknown shard {target!r}; try 'shards'")
            return
        self._print(f"epoch {health['epoch']}")
        for shard_id, status in sorted(health["shards"].items()):
            if target != "all" and shard_id != target:
                continue
            if status.get("reachable"):
                self._print(
                    f"{shard_id}: up  names {status.get('names', '?')}  "
                    f"log {status.get('log_bytes', '?')} B  "
                    f"({status['address']})"
                )
            else:
                self._print(
                    f"{shard_id}: DOWN ({status['address']}): "
                    f"{status.get('error', '?')}"
                )
        self._cluster_slo_lines()

    def _cluster_slo_lines(self) -> None:
        """Append SLO burn-rate status when the coordinator serves it."""
        cluster_slo = getattr(self.coordinator, "cluster_slo", None)
        if cluster_slo is None:
            return
        try:
            slo = cluster_slo()
        except Exception:  # noqa: BLE001 - pre-obs-plane coordinator
            return
        targets = slo.get("targets") or []
        if not targets:
            return
        alerting = slo.get("alerting") or []
        self._print(
            f"slo: {len(targets)} targets, "
            + (f"ALERTING: {', '.join(alerting)}" if alerting else "all ok")
        )
        for target in targets:
            state = "ALERT" if target.get("alerting") else "ok"
            self._print(
                f"  {target['name']:<22} objective "
                f"{target['objective'] * 100:.2f}%  "
                f"burn {target['burn_fast']:.2f}/{target['burn_slow']:.2f}"
                f"  {state}"
            )

    def _cluster_metrics(self, args: list[str]) -> None:
        if not args:
            # No shard named: the coordinator's aggregated totals.
            totals = self.coordinator.cluster_metrics()
            for key, value in sorted(totals.items()):
                self._print(f"{key}: {value}")
            return
        for shard_id, management in self._each_shard(args[0]):
            self._print(f"--- {shard_id} ---")
            self._print(management.metrics_text().rstrip("\n"))

    def _cluster_flight(self, args: list[str]) -> None:
        target = args[0] if args else "all"
        kind = args[1] if len(args) > 1 else None
        for shard_id, management in self._each_shard(target):
            events = management.flight_events()
            if kind:
                events = [e for e in events if e.get("kind") == kind]
            self._print(f"--- {shard_id}: {len(events)} events ---")
            self._print_flight_events(events)

    # -- management ----------------------------------------------------------

    def do_health(self, args: list[str]) -> None:
        if self.coordinator is not None:
            self._cluster_health(args)
            return
        if self.management is None:
            self._print("health is not available over this connection")
            return
        detail = self.management.health()
        line = f"state: {detail.get('state', '?')}"
        if detail.get("cause"):
            line += f" (cause: {detail['cause']})"
        if detail.get("checkpoint_retry_pending"):
            line += " [checkpoint retry pending]"
        self._print(line)

    def do_recover(self, args: list[str]) -> None:
        """``recover``: staged replica repair from a peer, via management.

        Shows where recovery stands first (stage, resumable state), then
        triggers the rebuild and reports what was shipped.
        """
        if self.management is None:
            self._print("recovery is not available over this connection")
            return
        status = self.management.recovery_status()
        self._print(
            f"health: {status.get('health', '?')}, "
            f"stage: {status.get('stage', '?')}"
            + (" [resumable state on disk]" if status.get("resumable") else "")
        )
        answer = self.management.recover()
        if not answer.get("ok"):
            self._print(f"recovery failed: {answer.get('error', 'unknown')}")
            return
        self._print(
            f"recovered from peer {answer.get('peer_id', '?')!r} as "
            f"version {answer.get('target_version', '?')}: "
            f"{answer.get('bytes_shipped', 0)} checkpoint bytes shipped, "
            f"{answer.get('entries_replayed', 0)} log records caught up"
            + (" (resumed)" if answer.get("resumed") else "")
        )

    def do_checkpoint(self, args: list[str]) -> None:
        checkpoint = getattr(self.server, "checkpoint", None)
        if checkpoint is None:
            self._print("checkpoint is not available over this connection")
            return
        self._print(f"checkpointed as version {checkpoint()}")

    def do_metrics(self, args: list[str]) -> None:
        if self.coordinator is not None:
            self._cluster_metrics(args)
            return
        if self.management is None:
            self._print("metrics are not available over this connection")
            return
        self._print(self.management.metrics_text().rstrip("\n"))

    def do_trace(self, args: list[str]) -> None:
        if self.management is None:
            self._print("traces are not available over this connection")
            return
        trace_id = args[0] if args else self.management.last_trace_id()
        if not trace_id:
            self._print("no traces recorded yet")
            return
        spans = self.management.trace_spans(trace_id)
        if not spans:
            self._print(f"no spans recorded for trace {trace_id!r}")
            return
        self._print(f"trace {trace_id}:")
        self._print(format_tree(build_tree(spans)).rstrip("\n"))

    def do_slowops(self, args: list[str]) -> None:
        if self.management is None:
            self._print("slow-op log is not available over this connection")
            return
        entries = self.management.slow_ops()
        if not entries:
            self._print("(no slow operations retained)")
            return
        for entry in reversed(entries):  # slowest-recent first
            attrs = entry.get("attrs") or {}
            extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            self._print(
                f"{entry['duration'] * 1000:10.3f}ms  "
                f"{entry['name']:<32} {extra}".rstrip()
            )

    def do_profile(self, args: list[str]) -> None:
        """``profile [seconds]``: flame stacks from the node's profiler.

        Without an argument, shows whatever the continuous sampler has
        accumulated; ``profile 0.5`` takes a fresh half-second burst.
        """
        if self.management is None:
            self._print("profiling is not available over this connection")
            return
        try:
            seconds = float(args[0]) if args else 0.0
        except ValueError:
            self._print("usage: profile [seconds]")
            return
        stacks = self.management.profile(seconds)
        if not stacks:
            self._print(
                "no profiler attached (start the node with "
                "--profile-interval)"
            )
            return
        self._print(stacks.rstrip("\n"))

    def do_flight(self, args: list[str]) -> None:
        """``flight [kind]``: the node's flight-recorder events.

        Cluster mode: ``flight <shard|all> [kind]``.
        """
        if self.coordinator is not None:
            self._cluster_flight(args)
            return
        if self.management is None:
            self._print(
                "the flight recorder is not available over this connection"
            )
            return
        events = self.management.flight_events()
        if args:
            events = [e for e in events if e.get("kind") == args[0]]
        self._print_flight_events(events)

    def _print_flight_events(self, events: list[dict]) -> None:
        if not events:
            self._print("(no flight events recorded)")
            return
        for event in events:
            fields = event.get("fields") or {}
            extra = " ".join(f"{k}={v!r}" for k, v in sorted(fields.items()))
            self._print(
                f"#{event['seq']:<5} t={event['time']:<12g} "
                f"{event['kind']:<24} {extra}".rstrip()
            )

    def do_quit(self, args: list[str]) -> None:
        self.running = False

    do_exit = do_quit

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")


def main(argv: list[str] | None = None, stdin: TextIO = sys.stdin,
         out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.shell",
        description="Browse and modify a name server database.",
    )
    parser.add_argument(
        "directory", nargs="?", help="local database directory"
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", help="connect to a TCP name server"
    )
    parser.add_argument(
        "--cluster", metavar="HOST:PORT",
        help="connect to a sharded cluster's coordinator",
    )
    options = parser.parse_args(argv)

    chosen = [
        source for source in
        (options.directory, options.connect, options.cluster) if source
    ]
    if len(chosen) != 1:
        parser.error(
            "give exactly one of a directory, --connect or --cluster"
        )

    if options.cluster:
        from repro.cluster import RemoteCoordinator, ShardRouter
        from repro.nameserver.management import RemoteManagement
        from repro.rpc import TcpTransport

        host, _, port = options.cluster.rpartition(":")
        coordinator = RemoteCoordinator(TcpTransport(host, int(port)))

        def management_factory(address: str) -> RemoteManagement:
            shard_host, _, shard_port = address.rpartition(":")
            return RemoteManagement(
                TcpTransport(shard_host, int(shard_port))
            )

        shell = Shell(
            ShardRouter(coordinator.shard_map()),
            out=out,
            coordinator=coordinator,
            management_factory=management_factory,
        )
        shell.repl(stdin)
        return 0

    if options.connect:
        from repro.nameserver.management import RemoteManagement
        from repro.rpc import TcpTransport

        host, _, port = options.connect.rpartition(":")
        transport = TcpTransport(host, int(port))
        server = RemoteNameServer(transport)
        management = RemoteManagement(transport)
    else:
        server = NameServer(LocalFS(options.directory))
        management = ManagementService(server)

    shell = Shell(server, out=out, management=management)
    shell.repl(stdin)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
