"""An interactive shell for browsing and modifying a name server.

Section 6 again: among the name server's surrounding parts were "user
interfaces for browsing and modifying the database".  This is that user
interface — a small command shell that drives either a local database
directory or a remote server over TCP:

    python -m repro.tools.shell /var/lib/names          # local directory
    python -m repro.tools.shell --connect host:9999     # remote server

Commands::

    ls [path]            list a directory
    tree [path]          the whole subtree with values
    get <path>           look a value up
    set <path> <value>   bind (value parsed as a Python literal if possible)
    rm <path>            unbind one name
    rmtree <path>        unbind a subtree
    find <pattern>       glob enumeration (*, **)
    count                live name count
    health               storage health state (degraded read-only?)
    recover              rebuild this replica from a peer (staged recovery)
    checkpoint           force a checkpoint (local only)
    metrics              the unified metrics registry (Prometheus text)
    trace [id]           render one trace tree (default: newest)
    slowops              operations retained by the slow-op log
    help / quit

The shell is deliberately dumb about values: scripting belongs in Python
against the real API; this is for poking around.
"""

from __future__ import annotations

import argparse
import ast
import shlex
import sys
from typing import TextIO

from repro.core.errors import DatabaseDegraded
from repro.nameserver import (
    NameServer,
    NameServerError,
    RemoteNameServer,
)
from repro.nameserver.management import ManagementService
from repro.obs import build_tree, format_tree
from repro.storage.localfs import LocalFS


def parse_value(text: str) -> object:
    """A Python literal when possible, else the raw string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


class Shell:
    """One shell session bound to a server-like object."""

    def __init__(self, server, out: TextIO = sys.stdout, management=None) -> None:
        self.server = server
        self.out = out
        self.management = management
        self.running = True

    def execute(self, line: str) -> None:
        """Run one command line; errors are printed, never raised."""
        try:
            words = shlex.split(line)
        except ValueError as exc:
            self._print(f"parse error: {exc}")
            return
        if not words:
            return
        command, args = words[0], words[1:]
        handler = getattr(self, f"do_{command}", None)
        if handler is None:
            self._print(f"unknown command {command!r}; try 'help'")
            return
        try:
            handler(args)
        except (NameServerError, DatabaseDegraded) as exc:
            self._print(str(exc))
        except TypeError:
            self._print(f"usage error; try 'help'")

    def repl(self, lines: TextIO) -> None:
        for line in lines:
            if not self.running:
                break
            self.execute(line.rstrip("\n"))

    # -- commands ------------------------------------------------------------

    def do_help(self, args: list[str]) -> None:
        self._print(
            "commands: ls [path] | tree [path] | get <path> | "
            "set <path> <value> | rm <path> | rmtree <path> | "
            "find <pattern> | count | health | recover | checkpoint | "
            "metrics | trace [id] | slowops | profile [seconds] | "
            "flight [kind] | quit"
        )

    def do_ls(self, args: list[str]) -> None:
        path = args[0] if args else ()
        for name in self.server.list_dir(path):
            self._print(name)

    def do_tree(self, args: list[str]) -> None:
        path = args[0] if args else ()
        entries = self.server.read_subtree(path)
        if not entries:
            self._print("(empty)")
            return
        for relative, value in entries:
            self._print(f"{'/'.join(relative)} = {value!r}")

    def do_get(self, args: list[str]) -> None:
        (path,) = args
        self._print(repr(self.server.lookup(path)))

    def do_set(self, args: list[str]) -> None:
        path, raw = args[0], " ".join(args[1:])
        if not raw:
            self._print("usage: set <path> <value>")
            return
        self.server.bind(path, parse_value(raw))
        self._print("ok")

    def do_rm(self, args: list[str]) -> None:
        (path,) = args
        self.server.unbind(path)
        self._print("ok")

    def do_rmtree(self, args: list[str]) -> None:
        (path,) = args
        self.server.unbind_subtree(path)
        self._print("ok")

    def do_find(self, args: list[str]) -> None:
        (pattern,) = args
        for path, value in self.server.glob(pattern):
            self._print(f"{'/'.join(path)} = {value!r}")

    def do_count(self, args: list[str]) -> None:
        self._print(str(self.server.count()))

    def do_health(self, args: list[str]) -> None:
        if self.management is None:
            self._print("health is not available over this connection")
            return
        detail = self.management.health()
        line = f"state: {detail.get('state', '?')}"
        if detail.get("cause"):
            line += f" (cause: {detail['cause']})"
        if detail.get("checkpoint_retry_pending"):
            line += " [checkpoint retry pending]"
        self._print(line)

    def do_recover(self, args: list[str]) -> None:
        """``recover``: staged replica repair from a peer, via management.

        Shows where recovery stands first (stage, resumable state), then
        triggers the rebuild and reports what was shipped.
        """
        if self.management is None:
            self._print("recovery is not available over this connection")
            return
        status = self.management.recovery_status()
        self._print(
            f"health: {status.get('health', '?')}, "
            f"stage: {status.get('stage', '?')}"
            + (" [resumable state on disk]" if status.get("resumable") else "")
        )
        answer = self.management.recover()
        if not answer.get("ok"):
            self._print(f"recovery failed: {answer.get('error', 'unknown')}")
            return
        self._print(
            f"recovered from peer {answer.get('peer_id', '?')!r} as "
            f"version {answer.get('target_version', '?')}: "
            f"{answer.get('bytes_shipped', 0)} checkpoint bytes shipped, "
            f"{answer.get('entries_replayed', 0)} log records caught up"
            + (" (resumed)" if answer.get("resumed") else "")
        )

    def do_checkpoint(self, args: list[str]) -> None:
        checkpoint = getattr(self.server, "checkpoint", None)
        if checkpoint is None:
            self._print("checkpoint is not available over this connection")
            return
        self._print(f"checkpointed as version {checkpoint()}")

    def do_metrics(self, args: list[str]) -> None:
        if self.management is None:
            self._print("metrics are not available over this connection")
            return
        self._print(self.management.metrics_text().rstrip("\n"))

    def do_trace(self, args: list[str]) -> None:
        if self.management is None:
            self._print("traces are not available over this connection")
            return
        trace_id = args[0] if args else self.management.last_trace_id()
        if not trace_id:
            self._print("no traces recorded yet")
            return
        spans = self.management.trace_spans(trace_id)
        if not spans:
            self._print(f"no spans recorded for trace {trace_id!r}")
            return
        self._print(f"trace {trace_id}:")
        self._print(format_tree(build_tree(spans)).rstrip("\n"))

    def do_slowops(self, args: list[str]) -> None:
        if self.management is None:
            self._print("slow-op log is not available over this connection")
            return
        entries = self.management.slow_ops()
        if not entries:
            self._print("(no slow operations retained)")
            return
        for entry in reversed(entries):  # slowest-recent first
            attrs = entry.get("attrs") or {}
            extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            self._print(
                f"{entry['duration'] * 1000:10.3f}ms  "
                f"{entry['name']:<32} {extra}".rstrip()
            )

    def do_profile(self, args: list[str]) -> None:
        """``profile [seconds]``: flame stacks from the node's profiler.

        Without an argument, shows whatever the continuous sampler has
        accumulated; ``profile 0.5`` takes a fresh half-second burst.
        """
        if self.management is None:
            self._print("profiling is not available over this connection")
            return
        try:
            seconds = float(args[0]) if args else 0.0
        except ValueError:
            self._print("usage: profile [seconds]")
            return
        stacks = self.management.profile(seconds)
        if not stacks:
            self._print(
                "no profiler attached (start the node with "
                "--profile-interval)"
            )
            return
        self._print(stacks.rstrip("\n"))

    def do_flight(self, args: list[str]) -> None:
        """``flight [kind]``: the node's flight-recorder events."""
        if self.management is None:
            self._print(
                "the flight recorder is not available over this connection"
            )
            return
        events = self.management.flight_events()
        if args:
            events = [e for e in events if e.get("kind") == args[0]]
        if not events:
            self._print("(no flight events recorded)")
            return
        for event in events:
            fields = event.get("fields") or {}
            extra = " ".join(f"{k}={v!r}" for k, v in sorted(fields.items()))
            self._print(
                f"#{event['seq']:<5} t={event['time']:<12g} "
                f"{event['kind']:<24} {extra}".rstrip()
            )

    def do_quit(self, args: list[str]) -> None:
        self.running = False

    do_exit = do_quit

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")


def main(argv: list[str] | None = None, stdin: TextIO = sys.stdin,
         out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.shell",
        description="Browse and modify a name server database.",
    )
    parser.add_argument(
        "directory", nargs="?", help="local database directory"
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", help="connect to a TCP name server"
    )
    options = parser.parse_args(argv)

    if bool(options.directory) == bool(options.connect):
        parser.error("give either a directory or --connect host:port")

    if options.connect:
        from repro.nameserver.management import RemoteManagement
        from repro.rpc import TcpTransport

        host, _, port = options.connect.rpartition(":")
        transport = TcpTransport(host, int(port))
        server = RemoteNameServer(transport)
        management = RemoteManagement(transport)
    else:
        server = NameServer(LocalFS(options.directory))
        management = ManagementService(server)

    shell = Shell(server, out=out, management=management)
    shell.repl(stdin)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
