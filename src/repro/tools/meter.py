"""Scan metering shared by the offline tools (fsck and dump).

Both tools read every byte of a database directory.  Instead of bespoke
byte/time accounting, they route the work through the same
:class:`~repro.obs.metrics.MetricsRegistry` the server exports: a
metered :class:`~repro.storage.localfs.LocalFS` records the actual I/O
performed (the ``storage_read_*`` series) and a ``tool_runtime_seconds``
histogram times the pass, so the closing summary line is derived
entirely from the registry.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def timed_pass(registry: MetricsRegistry, tool: str):
    """Context manager timing one tool pass into the registry."""
    runtime = registry.histogram(
        "tool_runtime_seconds",
        "Wall time of one offline tool pass.",
        labelnames=("tool",),
    )
    return runtime.labels(tool).time()


def scan_summary(registry: MetricsRegistry, tool: str) -> str:
    """One line of scan totals, read back out of the registry."""
    def _value(name: str) -> float:
        family = registry.get(name)
        return family.value if family is not None else 0.0

    runtime = registry.get("tool_runtime_seconds")
    elapsed = runtime.labels(tool).sum if runtime is not None else 0.0
    return (
        f"scanned {int(_value('storage_read_bytes_total'))} bytes "
        f"in {int(_value('storage_read_calls_total'))} reads, "
        f"{elapsed:.3f}s elapsed"
    )
