"""fsck for database directories: validate every on-disk invariant.

Checks, in order:

1. **version protocol** — a committed version is named, its checkpoint
   and log both exist, and no stale ``newversion`` contradicts it;
2. **checkpoint framing** — magic, declared length, checksum;
3. **checkpoint payload** — the pickle decodes structurally (with
   whatever classes this process has registered; unknown record classes
   are reported as a warning, not an error);
4. **log framing** — every entry's magic, length, checksum and sequence
   continuity; a damaged *tail* is a warning (recovery truncates it), any
   other damage is an error;
5. **leftovers** — files outside the protocol's naming scheme, partial
   versions awaiting cleanup.

Errors mean recovery may fail or lose data; warnings mean recovery will
cope.  Exit status: 0 clean, 1 warnings only, 2 errors.

With ``--repair`` the tool also *salvages*: it completes or aborts an
interrupted version switch, restores a missing version file when a
complete version exists to name, truncates a damaged log tail to its
last good entry, falls back to a retained older version when the current
checkpoint is unreadable, and quarantines (renames, never deletes)
damaged redundant files.  Repair is conservative by construction — the
only data it discards is a torn log tail that strict recovery would
discard anyway — and idempotent: repairing a repaired directory is a
no-op.  After repairing it re-validates and exits with the fresh status.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from typing import TextIO

from repro.core.audit import archived_epochs
from repro.core.checkpoint import CheckpointDamaged, read_checkpoint
from repro.core.log import LogScan
from repro.core.version import (
    NEWVERSION_FILE,
    VERSION_FILE,
    checkpoint_name,
    complete_versions,
    logfile_name,
    numbered_files,
    read_current_version,
)
from repro.obs.metrics import MetricsRegistry
from repro.pickles import PickleReader, UnknownRecordClass
from repro.storage.errors import HardError, StorageError
from repro.storage.interface import FileSystem
from repro.storage.localfs import LocalFS
from repro.tools.meter import scan_summary, timed_pass

_KNOWN = re.compile(
    r"^(checkpoint\d+|logfile\d+|archive\d+|version|newversion"
    r"|manifest|recovery\.json|blackbox\.json|quarantine\..+)$"
)

#: the replica recoverer's fsynced resume point (see nameserver.recover)
RECOVERY_STATE_FILE = "recovery.json"

#: prefix given to damaged files set aside (never deleted) by ``--repair``
QUARANTINE_PREFIX = "quarantine."


@dataclass
class FsckReport:
    """Findings of one validation pass."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def note(self, message: str) -> None:
        self.notes.append(message)

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def exit_status(self) -> int:
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def write(self, out: TextIO) -> None:
        for message in self.errors:
            out.write(f"ERROR:   {message}\n")
        for message in self.warnings:
            out.write(f"warning: {message}\n")
        for message in self.notes:
            out.write(f"note:    {message}\n")
        verdict = ["clean", "warnings only", "errors found"][self.exit_status()]
        out.write(f"verdict: {verdict}\n")


def fsck_directory(fs: FileSystem) -> FsckReport:
    """Validate a database directory; read-only."""
    report = FsckReport()
    current = read_current_version(fs)
    recovery = _recovery_state(fs)
    recovery_target = (
        recovery.get("target_version") if recovery is not None else None
    )
    if recovery is not None:
        if recovery_target is None:
            report.warn(
                f"{RECOVERY_STATE_FILE} is unreadable: a resuming "
                f"recoverer will discard it and replan"
            )
        else:
            report.note(
                f"replica recovery in progress (stage "
                f"{recovery.get('stage', '?')!r}, staging version "
                f"{recovery_target}); resumable"
            )

    if current is None:
        if any(
            version != recovery_target for version in numbered_files(fs)
        ):
            report.error(
                "checkpoint/log files exist but no valid version file names "
                "them; recovery would bootstrap a fresh database"
            )
        elif recovery_target is not None:
            report.note(
                "no committed version yet: directory holds only the "
                "in-progress recovery's staged files"
            )
        else:
            report.note("empty directory: a fresh database would bootstrap here")
        return report

    report.note(f"current version {current.number} (from {current.source!r})")
    if current.source == NEWVERSION_FILE:
        report.warn(
            "switch interrupted after its commit point: restart will "
            "finish renaming newversion to version"
        )
    elif fs.exists(NEWVERSION_FILE):
        report.warn("stale/invalid newversion present; restart deletes it")

    _check_checkpoint(fs, current.number, report, fatal=True)
    _check_log(fs, logfile_name(current.number), report, tail_is_warning=True)

    for version in sorted(numbered_files(fs)):
        if version == current.number:
            continue
        if version < current.number:
            report.note(
                f"older version {version} retained "
                f"(hard-error redundancy or awaiting cleanup)"
            )
            _check_checkpoint(fs, version, report, fatal=False)
            if fs.exists(logfile_name(version)):
                _check_log(fs, logfile_name(version), report, tail_is_warning=False)
        elif version == recovery_target:
            report.note(
                f"version {version} is staged by the in-progress replica "
                f"recovery (invisible to restarts until its cutover)"
            )
        else:
            report.warn(
                f"partial newer version {version}: a checkpoint was "
                f"interrupted before its commit point; restart deletes it"
            )

    for epoch in archived_epochs(fs):
        _check_log(fs, f"archive{epoch}", report, tail_is_warning=False)

    for name in fs.list_names():
        if not _KNOWN.match(name):
            report.warn(f"unrecognised file {name!r} in database directory")

    return report


def _check_checkpoint(
    fs: FileSystem, version: int, report: FsckReport, fatal: bool
) -> None:
    name = checkpoint_name(version)
    if not fs.exists(name):
        report.error(f"{name} is missing")
        return
    try:
        payload = read_checkpoint(fs, name)
    except (CheckpointDamaged, HardError) as exc:
        message = f"{name}: {exc}"
        if fatal:
            report.error(message)
        else:
            report.warn(message)
        return
    try:
        reader = PickleReader(payload)
        reader.read()
        if not reader.at_end():
            report.error(f"{name}: trailing bytes after the pickled root")
            return
    except UnknownRecordClass as exc:
        report.warn(
            f"{name}: structurally valid; {exc} (register the application's "
            f"classes to decode fully)"
        )
        return
    except Exception as exc:  # noqa: BLE001 - any decode failure is a finding
        report.error(f"{name}: payload does not decode: {exc!r}")
        return
    report.note(f"{name}: framing and payload decode OK ({len(payload)} bytes)")


def _check_log(
    fs: FileSystem, name: str, report: FsckReport, tail_is_warning: bool
) -> None:
    if not fs.exists(name):
        report.error(f"{name} is missing")
        return
    scan = LogScan(fs, name)
    entries = sum(1 for _entry in scan)
    outcome = scan.outcome
    if outcome.damage is None:
        report.note(f"{name}: {entries} entries, all frames valid")
        return
    trailing_garbage = fs.size(name) - outcome.good_length
    message = (
        f"{name}: {outcome.damage}; {entries} entries readable, "
        f"{trailing_garbage} bytes after the last good entry"
    )
    if tail_is_warning:
        report.warn(f"{message} (recovery truncates a damaged tail)")
    else:
        report.error(message)


def repair_directory(fs: FileSystem) -> list[str]:
    """Salvage a damaged database directory; returns the actions taken.

    Conservative by construction: nothing that could hold committed data
    is deleted — damaged files are *quarantined* (renamed to
    ``quarantine.<name>``), and the only bytes discarded outright are a
    torn log tail that strict recovery would truncate anyway, plus
    partial files of a checkpoint that never reached its commit point.
    Idempotent: a second pass over a repaired directory does nothing.
    """
    actions: list[str] = []
    current = read_current_version(fs)

    # An in-progress replica recovery is aborted cleanly first: its staged
    # checkpoint may be complete-but-uncommitted, and the missing-version
    # salvage below must never promote a file that was half of an aborted
    # network transfer to "the committed state".  Aborting loses nothing
    # committed (staged files are invisible to restarts by definition) and
    # the recoverer simply replans on its next run.
    from repro.nameserver.recover import abandon_recovery

    if abandon_recovery(fs):
        actions.append(
            "aborted the in-progress replica recovery (staged files "
            "discarded; the recoverer replans from scratch)"
        )

    if current is None:
        # No usable version file.  If a complete, readable version exists
        # on disk, restore the marker naming the newest one; otherwise
        # there is nothing to salvage (a restart bootstraps fresh).
        usable = [v for v in complete_versions(fs) if _checkpoint_readable(fs, v)]
        if not usable:
            return actions
        chosen = usable[-1]
        fs.delete_if_exists(NEWVERSION_FILE)
        fs.write(VERSION_FILE, str(chosen).encode("ascii"))
        fs.fsync(VERSION_FILE)
        fs.fsync_dir()
        actions.append(f"restored missing version file naming version {chosen}")
        current = read_current_version(fs)
        if current is None:  # pragma: no cover - the write just succeeded
            return actions

    if not _checkpoint_readable(fs, current.number):
        # The committed checkpoint is unreadable: fall back to a retained
        # older complete version (the paper's hard-error redundancy),
        # quarantining the damaged pair.  Without a fallback the damage
        # is unrepairable and is left for fsck to report.
        fallback = [
            v
            for v in complete_versions(fs)
            if v < current.number and _checkpoint_readable(fs, v)
        ]
        if fallback:
            chosen = fallback[-1]
            fs.delete_if_exists(NEWVERSION_FILE)
            fs.write(VERSION_FILE, str(chosen).encode("ascii"))
            fs.fsync(VERSION_FILE)
            _quarantine(fs, checkpoint_name(current.number), actions)
            _quarantine(fs, logfile_name(current.number), actions)
            fs.fsync_dir()
            actions.append(
                f"checkpoint{current.number} unreadable: fell back to "
                f"retained complete version {chosen}"
            )
            current = read_current_version(fs)
            if current is None:  # pragma: no cover - fallback was verified
                return actions

    if current.source == NEWVERSION_FILE:
        # Interrupted after the commit point: finish the rename, exactly
        # as a restart would, but leave retained older versions alone.
        fs.delete_if_exists(VERSION_FILE)
        fs.rename(NEWVERSION_FILE, VERSION_FILE)
        fs.fsync_dir()
        actions.append(
            f"completed the interrupted switch to version {current.number}"
        )
    elif fs.exists(NEWVERSION_FILE):
        fs.delete(NEWVERSION_FILE)
        fs.fsync_dir()
        actions.append("removed stale newversion")

    # Partial newer versions: a checkpoint that never reached its commit
    # point; its files hold no committed data.
    for version, kinds in sorted(numbered_files(fs).items()):
        if version <= current.number:
            continue
        for kind in sorted(kinds):
            name = f"{kind}{version}"
            fs.delete_if_exists(name)
            actions.append(f"removed partial newer-version file {name}")
        fs.fsync_dir()

    # The current log: truncate a damaged tail to the last good entry —
    # the same bytes strict recovery would refuse to replay.
    log_name = logfile_name(current.number)
    outcome = _scan_outcome(fs, log_name)
    if outcome.damage is not None:
        dropped = fs.size(log_name) - outcome.good_length
        fs.truncate(log_name, outcome.good_length)
        fs.fsync(log_name)
        fs.fsync_dir()
        actions.append(
            f"truncated {log_name} to its last good entry "
            f"({dropped} damaged bytes discarded)"
        )

    # Retained older versions are redundancy; a damaged or incomplete
    # pair is worse than none (fsck keeps flagging it), so quarantine the
    # whole pair when either half is unreadable or missing.
    for version in sorted(numbered_files(fs)):
        if version >= current.number:
            continue
        ckpt, log = checkpoint_name(version), logfile_name(version)
        broken = (
            not fs.exists(ckpt)
            or not fs.exists(log)
            or not _checkpoint_readable(fs, version)
            or _scan_outcome(fs, log).damage is not None
        )
        if broken:
            for name in (ckpt, log):
                if fs.exists(name):
                    _quarantine(fs, name, actions)
            fs.fsync_dir()

    # Damaged audit archives: quarantine (they are history, not state).
    for epoch in archived_epochs(fs):
        name = f"archive{epoch}"
        if _scan_outcome(fs, name).damage is not None:
            _quarantine(fs, name, actions)
            fs.fsync_dir()

    return actions


def _recovery_state(fs: FileSystem) -> dict | None:
    """The recoverer's resume state: None if absent, {} if unreadable."""
    if not fs.exists(RECOVERY_STATE_FILE):
        return None
    try:
        state = json.loads(fs.read(RECOVERY_STATE_FILE))
    except Exception:  # noqa: BLE001 - any damage means "unreadable"
        return {}
    if not isinstance(state, dict) or not isinstance(
        state.get("target_version"), int
    ):
        return {}
    return state


def _checkpoint_readable(fs: FileSystem, version: int) -> bool:
    try:
        read_checkpoint(fs, checkpoint_name(version))
    except (CheckpointDamaged, StorageError):
        return False
    return True


def _scan_outcome(fs: FileSystem, name: str):
    scan = LogScan(fs, name)
    for _entry in scan:
        pass
    return scan.outcome


def _quarantine(fs: FileSystem, name: str, actions: list[str]) -> None:
    target = QUARANTINE_PREFIX + name
    fs.delete_if_exists(target)
    fs.rename(name, target)
    actions.append(f"quarantined {name} as {target}")


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.fsck",
        description="Validate the on-disk invariants of a small-database "
        "directory.",
    )
    parser.add_argument("directory", help="the database directory")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="salvage what validation flags (quarantines, never deletes, "
        "damaged data), then re-validate",
    )
    options = parser.parse_args(argv)
    # The scan's own I/O and runtime go through a metrics registry (the
    # LocalFS meter counts the bytes actually read), so the summary line
    # is the same accounting a server would export.
    registry = MetricsRegistry()
    fs = LocalFS(options.directory, registry=registry)
    with timed_pass(registry, "fsck"):
        report = fsck_directory(fs)
        # A resumable recovery is only a note (a restart resumes it), but
        # --repair states the operator wants the directory settled now, so
        # it counts as repairable: the staged files are abandoned.
        abandonable = fs.exists(RECOVERY_STATE_FILE)
        if options.repair and (not report.clean or abandonable):
            for action in repair_directory(fs):
                out.write(f"repair:  {action}\n")
            report = fsck_directory(fs)
    report.write(out)
    out.write(scan_summary(registry, "fsck") + "\n")
    return report.exit_status()


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
