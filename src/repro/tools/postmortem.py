"""Postmortem: reconstruct a merged timeline from a black-box dump.

When a node degrades (or is SIGTERMed) it leaves a flight-recorder dump
— ``blackbox.json`` next to the spare-dir emergency snapshot, or in the
data directory (see :mod:`repro.nameserver.serve`).  This tool renders
that dump as a human-readable timeline, and can *merge* it with the two
other memories a node exports: trace spans (``/trace.json`` or the
``trace_spans`` management RPC, saved to a file) and the slow-op log
(``/slowops.json``).  All three carry times from the same node clock,
so sorting their entries together reconstructs the causal story::

    python -m repro.tools.postmortem /spare/blackbox.json \
        --trace trace.json --slowops slowops.json

Exit status: 0 on a rendered timeline, 2 on an unreadable or invalid
dump.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.flight import load_blackbox

#: kinds whose appearance usually *explains* the dump; highlighted first
#: in the summary so an operator reads the punchline before the log.
NOTEWORTHY_KINDS = (
    "fault_injected",
    "storage_fault",
    "health_transition",
    "emergency_checkpoint",
    "checkpoint_aborted",
    "log_tail_damaged",
    "commit_barrier_poisoned",
    "rpc_call_failed",
)


def build_timeline(
    dump: dict,
    spans: list[dict] | None = None,
    slow_ops: list[dict] | None = None,
) -> list[dict]:
    """Merge flight events, trace spans and slow ops into one timeline.

    Every item becomes ``{"time", "source", "what", "detail"}``; the
    list is sorted by time (stable, so equal-time flight events keep
    their ring order).  Spans and slow ops contribute their *start*
    time, with the duration in the detail.
    """
    items: list[dict] = []
    for event in dump.get("events", []):
        fields = event.get("fields") or {}
        detail = " ".join(
            f"{key}={value!r}" for key, value in sorted(fields.items())
        )
        items.append(
            {
                "time": float(event.get("time", 0.0)),
                "source": "flight",
                "what": str(event.get("kind", "?")),
                "detail": detail,
            }
        )
    for span in spans or []:
        attrs = span.get("attrs") or {}
        extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
        duration = span.get("duration")
        if duration is not None:
            extra = f"{duration * 1000:.3f}ms {extra}".rstrip()
        items.append(
            {
                "time": float(span.get("start", 0.0)),
                "source": "trace",
                "what": str(span.get("name", "?")),
                "detail": extra,
            }
        )
    for entry in slow_ops or []:
        attrs = entry.get("attrs") or {}
        extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
        duration = entry.get("duration")
        if duration is not None:
            extra = f"{duration * 1000:.3f}ms {extra}".rstrip()
        items.append(
            {
                "time": float(entry.get("start", 0.0)),
                "source": "slowop",
                "what": str(entry.get("name", "?")),
                "detail": extra,
            }
        )
    items.sort(key=lambda item: item["time"])
    return items


def summarize(dump: dict) -> list[str]:
    """The dump's headline: counts per kind, noteworthy kinds first."""
    counts: dict[str, int] = {}
    for event in dump.get("events", []):
        kind = str(event.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines = [
        f"format {dump.get('format')}, "
        f"{len(dump.get('events', []))} events retained "
        f"({dump.get('recorded', '?')} recorded, "
        f"{dump.get('dropped', 0)} dropped), "
        f"dumped at t={dump.get('dumped_at', '?')}"
    ]
    noteworthy = [k for k in NOTEWORTHY_KINDS if k in counts]
    if noteworthy:
        lines.append(
            "noteworthy: "
            + ", ".join(f"{kind}×{counts[kind]}" for kind in noteworthy)
        )
    routine = sorted(set(counts) - set(noteworthy))
    if routine:
        lines.append(
            "routine:    "
            + ", ".join(f"{kind}×{counts[kind]}" for kind in routine)
        )
    return lines


def render_timeline(items: list[dict]) -> str:
    """One line per item: time, source, what, detail."""
    if not items:
        return "(empty timeline)"
    lines = []
    for item in items:
        lines.append(
            f"t={item['time']:<14g} {item['source']:<7} "
            f"{item['what']:<26} {item['detail']}".rstrip()
        )
    return "\n".join(lines)


def _load_json_file(path: str) -> object:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.postmortem",
        description="Render a flight-recorder black box (optionally "
        "merged with trace spans and the slow-op log) as a timeline.",
    )
    parser.add_argument("blackbox", help="path to blackbox.json")
    parser.add_argument(
        "--trace", default=None, metavar="SPANS_JSON",
        help="span dicts saved from /trace.json or the trace_spans RPC",
    )
    parser.add_argument(
        "--slowops", default=None, metavar="SLOWOPS_JSON",
        help="entries saved from /slowops.json or the slow_ops RPC",
    )
    parser.add_argument(
        "--kind", default=None,
        help="show only flight events of this kind",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.blackbox, "rb") as f:
            dump = load_blackbox(f.read())
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"postmortem: cannot read black box: {exc}", file=sys.stderr)
        return 2

    spans = slow_ops = None
    try:
        if args.trace is not None:
            spans = _load_json_file(args.trace)
        if args.slowops is not None:
            slow_ops = _load_json_file(args.slowops)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"postmortem: cannot read sidecar: {exc}", file=sys.stderr)
        return 2

    if args.kind is not None:
        dump = dict(dump)
        dump["events"] = [
            e for e in dump.get("events", []) if e.get("kind") == args.kind
        ]

    for line in summarize(dump):
        print(line)
    print()
    print(render_timeline(build_timeline(dump, spans, slow_ops)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
