"""Postmortem: reconstruct a merged timeline from black-box dumps.

When a node degrades (or is SIGTERMed) it leaves a flight-recorder dump
— ``blackbox.json`` next to the spare-dir emergency snapshot, or in the
data directory (see :mod:`repro.nameserver.serve`).  This tool renders
that dump as a human-readable timeline, and can *merge* it with the two
other memories a node exports: trace spans (``/trace.json`` or the
``trace_spans`` management RPC, saved to a file) and the slow-op log
(``/slowops.json``).  All three carry times from the same node clock,
so sorting their entries together reconstructs the causal story::

    python -m repro.tools.postmortem /spare/blackbox.json \
        --trace trace.json --slowops slowops.json

The *cluster* mode builds one merged incident timeline for a whole
cluster — every replica's flight events, slow ops and spans plus the
coordinator's own ring (promotions, map epochs, SLO burn alerts)::

    python -m repro.tools.postmortem --cluster 127.0.0.1:9800   # live
    python -m repro.tools.postmortem --cluster-dir /var/lib/cluster

Node wall clocks are never compared raw: per-node clock offsets are
estimated from cross-node parent/child span pairs (a child RPC span is
contained in its parent's interval, so midpoint differences estimate
the skew), and flight events that carry a map ``epoch`` anchor the
ordering — an event at epoch 5 can never sort before one at epoch 4,
whatever the clocks claim.  See docs/FORMATS.md for the item schema.

Exit status: 0 on a rendered timeline, 2 on an unreadable or invalid
dump.
"""

from __future__ import annotations

import argparse
import glob as globmod
import json
import os
import sys

from repro.obs.flight import FLIGHT_FORMAT, load_blackbox

#: kinds whose appearance usually *explains* the dump; highlighted first
#: in the summary so an operator reads the punchline before the log.
NOTEWORTHY_KINDS = (
    "fault_injected",
    "storage_fault",
    "health_transition",
    "emergency_checkpoint",
    "checkpoint_aborted",
    "log_tail_damaged",
    "commit_barrier_poisoned",
    "rpc_call_failed",
    "replica_killed",
    "replica_lost",
    "primary_promoted",
    "slo_burn_alert",
)


def build_timeline(
    dump: dict,
    spans: list[dict] | None = None,
    slow_ops: list[dict] | None = None,
) -> list[dict]:
    """Merge flight events, trace spans and slow ops into one timeline.

    Every item becomes ``{"time", "source", "what", "detail"}``; the
    list is sorted by time (stable, so equal-time flight events keep
    their ring order).  Spans and slow ops contribute their *start*
    time, with the duration in the detail.
    """
    items: list[dict] = []
    for event in dump.get("events", []):
        fields = event.get("fields") or {}
        detail = " ".join(
            f"{key}={value!r}" for key, value in sorted(fields.items())
        )
        items.append(
            {
                "time": float(event.get("time", 0.0)),
                "source": "flight",
                "what": str(event.get("kind", "?")),
                "detail": detail,
            }
        )
    for span in spans or []:
        attrs = span.get("attrs") or {}
        extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
        duration = span.get("duration")
        if duration is not None:
            extra = f"{duration * 1000:.3f}ms {extra}".rstrip()
        items.append(
            {
                "time": float(span.get("start", 0.0)),
                "source": "trace",
                "what": str(span.get("name", "?")),
                "detail": extra,
            }
        )
    for entry in slow_ops or []:
        attrs = entry.get("attrs") or {}
        extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
        duration = entry.get("duration")
        if duration is not None:
            extra = f"{duration * 1000:.3f}ms {extra}".rstrip()
        items.append(
            {
                "time": float(entry.get("start", 0.0)),
                "source": "slowop",
                "what": str(entry.get("name", "?")),
                "detail": extra,
            }
        )
    items.sort(key=lambda item: item["time"])
    return items


def summarize(dump: dict) -> list[str]:
    """The dump's headline: counts per kind, noteworthy kinds first."""
    counts: dict[str, int] = {}
    for event in dump.get("events", []):
        kind = str(event.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines = [
        f"format {dump.get('format')}, "
        f"{len(dump.get('events', []))} events retained "
        f"({dump.get('recorded', '?')} recorded, "
        f"{dump.get('dropped', 0)} dropped), "
        f"dumped at t={dump.get('dumped_at', '?')}"
    ]
    noteworthy = [k for k in NOTEWORTHY_KINDS if k in counts]
    if noteworthy:
        lines.append(
            "noteworthy: "
            + ", ".join(f"{kind}×{counts[kind]}" for kind in noteworthy)
        )
    routine = sorted(set(counts) - set(noteworthy))
    if routine:
        lines.append(
            "routine:    "
            + ", ".join(f"{kind}×{counts[kind]}" for kind in routine)
        )
    return lines


def render_timeline(items: list[dict]) -> str:
    """One line per item: time, source, what, detail."""
    if not items:
        return "(empty timeline)"
    lines = []
    for item in items:
        lines.append(
            f"t={item['time']:<14g} {item['source']:<7} "
            f"{item['what']:<26} {item['detail']}".rstrip()
        )
    return "\n".join(lines)


# -- cluster mode ---------------------------------------------------------------


def gather_cluster(address: str) -> dict:
    """Pull every node's memories from a *live* cluster.

    Dials the coordinator at ``host:port`` for the shard map and its own
    flight ring, then every replica's management RPC for flight events,
    slow ops and the whole span ring.  Unreachable replicas are recorded
    as such rather than failing the gather — a postmortem usually runs
    *because* something is down.
    """
    from repro.cluster.coordinator import RemoteCoordinator
    from repro.cluster.shardmap import ShardMap
    from repro.nameserver.management import RemoteManagement
    from repro.rpc import TcpTransport

    host, _, port = address.rpartition(":")
    nodes: dict[str, dict] = {}
    coordinator = RemoteCoordinator(TcpTransport(host, int(port)))
    try:
        shard_map = ShardMap.from_wire(coordinator.get_map())
        try:
            events = coordinator.flight_events()
        except Exception:
            events = []  # an older coordinator without the obs plane
        nodes["coordinator"] = {
            "dump": _envelope(events, node="coordinator", cause="gather"),
            "spans": [],
            "slow_ops": [],
        }
        for shard in shard_map.shards:
            for replica in shard.replica_set:
                rid = replica.replica_id
                rhost, _, rport = replica.address.rpartition(":")
                try:
                    mgmt = RemoteManagement(TcpTransport(rhost, int(rport)))
                    try:
                        nodes[rid] = {
                            "dump": _envelope(
                                mgmt.flight_events(), node=rid, cause="gather"
                            ),
                            "spans": mgmt.trace_spans(""),
                            "slow_ops": mgmt.slow_ops(),
                        }
                    finally:
                        mgmt.close()
                except Exception as exc:
                    nodes[rid] = {"unreachable": f"{exc}"}
    finally:
        coordinator.close()
    return {"nodes": nodes}


def gather_cluster_dir(base_dir: str) -> dict:
    """Collect the black boxes a cluster left on disk (no live nodes).

    Scans ``data/<replica>/blackbox.json`` (SIGTERM dumps and the
    supervisor's pre-kill dumps) and ``postmortem/*blackbox.json`` (the
    boxes salvaged from replicas that died unexpectedly).
    """
    nodes: dict[str, dict] = {}
    for path in sorted(
        globmod.glob(os.path.join(base_dir, "data", "*", "blackbox.json"))
    ):
        rid = os.path.basename(os.path.dirname(path))
        try:
            with open(path, "rb") as f:
                dump = load_blackbox(f.read())
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            nodes[rid] = {"unreachable": f"{exc}"}
            continue
        nodes[rid] = {"dump": dump, "spans": [], "slow_ops": []}
    for path in sorted(
        globmod.glob(os.path.join(base_dir, "postmortem", "*blackbox.json"))
    ):
        rid = os.path.basename(path).split("-")[0]
        if rid in nodes:
            continue  # the live directory's box is newer
        try:
            with open(path, "rb") as f:
                dump = load_blackbox(f.read())
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            nodes[rid] = {"unreachable": f"{exc}"}
            continue
        nodes[rid] = {"dump": dump, "spans": [], "slow_ops": []}
    return {"nodes": nodes}


def _envelope(events: list, node: str, cause: str) -> dict:
    """Wrap a live flight ring in the standard black-box envelope."""
    return {
        "format": FLIGHT_FORMAT,
        "dumped_at": max(
            [float(e.get("time", 0.0)) for e in events], default=0.0
        ),
        "recorded": len(events),
        "dropped": 0,
        "events": events,
        "node": node,
        "cause": cause,
    }


def estimate_clock_offsets(spans_by_node: dict[str, list[dict]]) -> dict:
    """Per-node clock offsets from cross-node parent/child span pairs.

    A child RPC span recorded on node B is contained (in true time)
    inside its parent's interval on node A, so the difference of the two
    interval midpoints estimates B's clock relative to A's.  Offsets are
    averaged per node pair and propagated breadth-first from a reference
    node; a node with no span link to the rest keeps offset 0.0.

    Returns ``{node: seconds to ADD to that node's times}``.
    """
    index: dict[tuple[str, str], tuple[str, float]] = {}
    for node, spans in spans_by_node.items():
        for span in spans:
            mid = float(span.get("start", 0.0)) + (
                float(span.get("duration") or 0.0) / 2.0
            )
            index[(span.get("trace_id", ""), span.get("span_id", ""))] = (
                node,
                mid,
            )
    # edge (a, b) -> list of (b's clock - a's clock) estimates
    edges: dict[tuple[str, str], list[float]] = {}
    for node, spans in spans_by_node.items():
        for span in spans:
            parent_id = span.get("parent_id")
            if not parent_id:
                continue
            parent = index.get((span.get("trace_id", ""), parent_id))
            if parent is None or parent[0] == node:
                continue
            parent_node, parent_mid = parent
            mid = float(span.get("start", 0.0)) + (
                float(span.get("duration") or 0.0) / 2.0
            )
            edges.setdefault((parent_node, node), []).append(mid - parent_mid)
    offsets = {node: 0.0 for node in spans_by_node}
    if not edges:
        return offsets
    neighbours: dict[str, list[tuple[str, float]]] = {}
    for (a, b), skews in edges.items():
        skew = sum(skews) / len(skews)
        neighbours.setdefault(a, []).append((b, skew))
        neighbours.setdefault(b, []).append((a, -skew))
    root = sorted(neighbours)[0]
    seen = {root}
    frontier = [root]
    while frontier:
        here = frontier.pop()
        for there, skew in neighbours.get(here, []):
            if there in seen:
                continue
            seen.add(there)
            # there's clock reads `skew` ahead of here's: subtract it.
            offsets[there] = offsets.get(here, 0.0) - skew
            frontier.append(there)
    return offsets


def build_cluster_timeline(gathered: dict) -> list[dict]:
    """One merged incident timeline across every gathered node.

    Each item is the single-node shape plus ``node``, ``epoch`` and
    ``aligned`` (the offset-corrected time actually sorted on).  The
    sort key is ``(epoch, aligned)``: flight events carrying a map
    ``epoch`` anchor causality, and every item inherits the last epoch
    its node had seen — cross-node ordering never contradicts the map's
    own history, however skewed the wall clocks.
    """
    nodes = gathered.get("nodes", {})
    spans_by_node = {
        node: info.get("spans", [])
        for node, info in nodes.items()
        if "dump" in info
    }
    offsets = estimate_clock_offsets(spans_by_node)
    items: list[dict] = []
    for node, info in sorted(nodes.items()):
        if "dump" not in info:
            continue
        offset = offsets.get(node, 0.0)
        node_items = build_timeline(
            info["dump"], info.get("spans"), info.get("slow_ops")
        )
        # Carry each node's last-seen epoch forward onto later items.
        epoch = 0
        for item, event in _with_events(node_items, info["dump"]):
            if event is not None:
                fields = event.get("fields") or {}
                if "epoch" in fields:
                    epoch = int(fields["epoch"])
            item["node"] = node
            item["epoch"] = epoch
            item["aligned"] = item["time"] + offset
            items.append(item)
    items.sort(key=lambda item: (item["epoch"], item["aligned"]))
    return items


def _with_events(items: list[dict], dump: dict):
    """Pair timeline items back with the flight events they came from."""
    events = list(dump.get("events", []))
    used = 0
    for item in items:
        if item["source"] == "flight" and used < len(events):
            yield item, events[used]
            used += 1
        else:
            yield item, None


def render_cluster_timeline(items: list[dict]) -> str:
    """One line per item: epoch, aligned time, node, source, what."""
    if not items:
        return "(empty timeline)"
    lines = []
    for item in items:
        lines.append(
            f"e{item.get('epoch', 0):<3} "
            f"t={item.get('aligned', item['time']):<14g} "
            f"{item.get('node', '?'):<12} {item['source']:<7} "
            f"{item['what']:<26} {item['detail']}".rstrip()
        )
    return "\n".join(lines)


def _load_json_file(path: str) -> object:
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.postmortem",
        description="Render a flight-recorder black box (optionally "
        "merged with trace spans and the slow-op log) as a timeline.",
    )
    parser.add_argument(
        "blackbox", nargs="?", default=None,
        help="path to blackbox.json (single-node mode)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="SPANS_JSON",
        help="span dicts saved from /trace.json or the trace_spans RPC",
    )
    parser.add_argument(
        "--slowops", default=None, metavar="SLOWOPS_JSON",
        help="entries saved from /slowops.json or the slow_ops RPC",
    )
    parser.add_argument(
        "--kind", default=None,
        help="show only flight events of this kind",
    )
    parser.add_argument(
        "--cluster", default=None, metavar="HOST:PORT",
        help="gather from a live cluster's coordinator and merge every "
        "node's memories into one incident timeline",
    )
    parser.add_argument(
        "--cluster-dir", default=None, metavar="PATH",
        help="merge the black boxes a (dead) cluster left under its "
        "base directory instead of dialing live nodes",
    )
    args = parser.parse_args(argv)

    if args.cluster is not None or args.cluster_dir is not None:
        return _cluster_main(args)
    if args.blackbox is None:
        parser.error("a blackbox path, --cluster or --cluster-dir required")

    try:
        with open(args.blackbox, "rb") as f:
            dump = load_blackbox(f.read())
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"postmortem: cannot read black box: {exc}", file=sys.stderr)
        return 2

    spans = slow_ops = None
    try:
        if args.trace is not None:
            spans = _load_json_file(args.trace)
        if args.slowops is not None:
            slow_ops = _load_json_file(args.slowops)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"postmortem: cannot read sidecar: {exc}", file=sys.stderr)
        return 2

    if args.kind is not None:
        dump = dict(dump)
        dump["events"] = [
            e for e in dump.get("events", []) if e.get("kind") == args.kind
        ]

    for line in summarize(dump):
        print(line)
    print()
    print(render_timeline(build_timeline(dump, spans, slow_ops)))
    return 0


def _cluster_main(args) -> int:
    try:
        if args.cluster is not None:
            gathered = gather_cluster(args.cluster)
        else:
            gathered = gather_cluster_dir(args.cluster_dir)
    except Exception as exc:
        print(f"postmortem: cluster gather failed: {exc}", file=sys.stderr)
        return 2
    nodes = gathered.get("nodes", {})
    if not any("dump" in info for info in nodes.values()):
        print("postmortem: no black boxes gathered", file=sys.stderr)
        return 2
    for node, info in sorted(nodes.items()):
        if "dump" in info:
            dump = info["dump"]
            print(
                f"{node}: {len(dump.get('events', []))} events, "
                f"{len(info.get('spans', []))} spans, "
                f"{len(info.get('slow_ops', []))} slow ops"
            )
        else:
            print(f"{node}: UNREACHABLE ({info.get('unreachable')})")
    print()
    items = build_cluster_timeline(gathered)
    if args.kind is not None:
        items = [
            item
            for item in items
            if item["source"] == "flight" and item["what"] == args.kind
        ]
    print(render_cluster_timeline(items))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
