"""The paper's three-mode lock: shared / update / exclusive.

Compatibility matrix (section 3)::

                shared      update      exclusive
    shared      compatible  compatible  conflict
    update      compatible  conflict    conflict
    exclusive   conflict    conflict    conflict

The protocol the database builds on top:

* an **enquiry** runs under *shared*;
* an **update** acquires *update* (excluding other updates but admitting
  enquiries), validates its preconditions and writes its log entry, then
  **upgrades** to *exclusive* for the virtual-memory mutation only;
* a **checkpoint** holds *update* while pickling, so it snapshots a
  consistent state without ever blocking enquiries.

The upgrade path is deadlock-free because only one thread can hold
*update* at a time, so at most one upgrade is ever pending; it merely
waits for the shared holders to drain.  While an upgrade (or a direct
exclusive request) is pending, new shared requests are held back so the
upgrade cannot starve.

The lock is intentionally not reentrant and a thread must not request a
second mode while holding one (other than via :meth:`upgrade` /
:meth:`downgrade`); doing so raises :class:`LockProtocolError` where
detectable rather than deadlocking silently.
"""

from __future__ import annotations

import enum
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class LockMode(enum.Enum):
    SHARED = "shared"
    UPDATE = "update"
    EXCLUSIVE = "exclusive"


#: (held, requested) pairs that may coexist.
COMPATIBILITY: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.SHARED, LockMode.SHARED): True,
    (LockMode.SHARED, LockMode.UPDATE): True,
    (LockMode.SHARED, LockMode.EXCLUSIVE): False,
    (LockMode.UPDATE, LockMode.SHARED): True,
    (LockMode.UPDATE, LockMode.UPDATE): False,
    (LockMode.UPDATE, LockMode.EXCLUSIVE): False,
    (LockMode.EXCLUSIVE, LockMode.SHARED): False,
    (LockMode.EXCLUSIVE, LockMode.UPDATE): False,
    (LockMode.EXCLUSIVE, LockMode.EXCLUSIVE): False,
}


class LockProtocolError(Exception):
    """The lock was used outside its protocol (bad release, bad upgrade…)."""


class LockTimeout(Exception):
    """The lock could not be acquired within the requested timeout."""


@dataclass
class LockStats:
    """Counters for lock traffic (E10 evidence)."""

    shared_acquired: int = 0
    update_acquired: int = 0
    exclusive_acquired: int = 0
    upgrades: int = 0
    shared_waits: int = 0
    update_waits: int = 0
    exclusive_waits: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "shared_acquired": self.shared_acquired,
                "update_acquired": self.update_acquired,
                "exclusive_acquired": self.exclusive_acquired,
                "upgrades": self.upgrades,
                "shared_waits": self.shared_waits,
                "update_waits": self.update_waits,
                "exclusive_waits": self.exclusive_waits,
            }


class CommitBarrier:
    """A leader/follower rendezvous for group commit.

    Writers take monotonically increasing *tickets* for work they have
    staged (typically an unsynced log append); one *leader* at a time
    performs the shared completion step (one fsync covering every staged
    ticket) and publishes the new completion watermark; followers block
    until the watermark covers their ticket.  The barrier knows nothing
    about logs — completion is whatever the leader does between
    :meth:`try_lead` and :meth:`finish`::

        ticket = barrier.issue()              # after staging the work
        while not barrier.is_complete(ticket):
            claim = barrier.try_lead()
            if claim is None:                 # someone else is leading
                barrier.wait_progress(ticket)
                continue
            try:
                shared_fsync()                # covers tickets 1..claim
            except BaseException as exc:
                barrier.fail(exc)
                raise
            barrier.finish(claim)

    A leader failure is **sticky**: the staged work behind a failed sync
    can no longer be proven durable, so every current and future waiter
    re-raises the leader's exception instead of hanging.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._issued = 0
        self._completed = 0
        self._leader_active = False
        self._failure: BaseException | None = None

    def issue(self) -> int:
        """Take the next ticket; wakes a leader holding for a batch."""
        with self._cond:
            self._check_failed()
            self._issued += 1
            self._cond.notify_all()
            return self._issued

    def issued(self) -> int:
        with self._cond:
            return self._issued

    def completed(self) -> int:
        with self._cond:
            return self._completed

    def pending(self) -> int:
        """Tickets issued but not yet covered by a completion."""
        with self._cond:
            return self._issued - self._completed

    def is_complete(self, ticket: int) -> bool:
        with self._cond:
            self._check_failed()
            return self._completed >= ticket

    def try_lead(self) -> int | None:
        """Claim leadership if there is uncompleted work.

        Returns the watermark the new leader must complete (every ticket
        up to it), or ``None`` when another leader is active or nothing
        is pending.
        """
        with self._cond:
            self._check_failed()
            if self._leader_active or self._completed >= self._issued:
                return None
            self._leader_active = True
            return self._issued

    def hold(self, target_pending: int, timeout: float) -> int:
        """Leader only: wait up to ``timeout`` seconds for more joiners.

        Returns the refreshed watermark once ``target_pending`` tickets
        are pending or the timeout elapses — the absorb window that lets
        a batch fill before the leader pays the shared fsync.
        """
        with self._cond:
            if not self._leader_active:
                raise LockProtocolError("hold() requires leadership")
            self._cond.wait_for(
                lambda: self._issued - self._completed >= target_pending,
                timeout=timeout,
            )
            return self._issued

    def finish(self, upto: int) -> None:
        """Leader only: publish completion of every ticket up to ``upto``."""
        with self._cond:
            if not self._leader_active:
                raise LockProtocolError("finish() requires leadership")
            self._leader_active = False
            if upto > self._completed:
                self._completed = upto
            self._cond.notify_all()

    def fail(self, exc: BaseException) -> None:
        """Leader only: record a sticky failure and wake every waiter."""
        with self._cond:
            self._failure = exc
            self._leader_active = False
            self._cond.notify_all()

    def wait_progress(self, ticket: int, timeout: float | None = None) -> None:
        """Block until ``ticket`` completes, leadership frees up with work
        still pending (the caller should then try to lead), or a failure
        is recorded (re-raised here)."""
        with self._cond:
            self._cond.wait_for(
                lambda: (
                    self._failure is not None
                    or self._completed >= ticket
                    or (not self._leader_active and self._completed < self._issued)
                ),
                timeout=timeout,
            )
            self._check_failed()

    def _check_failed(self) -> None:
        if self._failure is not None:
            raise self._failure


class SUELock:
    """A shared/update/exclusive lock with update→exclusive upgrade."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._shared_holders: dict[int, int] = {}  # thread ident -> count (==1)
        self._update_holder: int | None = None
        self._exclusive_holder: int | None = None
        #: number of threads waiting for exclusive (directly or by upgrade);
        #: while non-zero, new shared requests are held back (anti-starvation)
        self._exclusive_pending = 0
        self.stats = LockStats()

    # -- acquire / release ----------------------------------------------------

    def acquire(self, mode: LockMode, timeout: float | None = None) -> None:
        me = threading.get_ident()
        if mode is LockMode.SHARED:
            self._acquire_shared(me, timeout)
        elif mode is LockMode.UPDATE:
            self._acquire_update(me, timeout)
        elif mode is LockMode.EXCLUSIVE:
            self._acquire_exclusive(me, timeout)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown mode {mode!r}")

    def release(self, mode: LockMode) -> None:
        me = threading.get_ident()
        with self._cond:
            if mode is LockMode.SHARED:
                if self._shared_holders.get(me, 0) == 0:
                    raise LockProtocolError("releasing shared lock not held")
                del self._shared_holders[me]
            elif mode is LockMode.UPDATE:
                if self._update_holder != me:
                    raise LockProtocolError("releasing update lock not held")
                self._update_holder = None
            elif mode is LockMode.EXCLUSIVE:
                if self._exclusive_holder != me:
                    raise LockProtocolError("releasing exclusive lock not held")
                self._exclusive_holder = None
            self._cond.notify_all()

    def upgrade(self, timeout: float | None = None) -> None:
        """Convert a held update lock to exclusive.

        Waits for current shared holders to drain; new shared requests are
        held back while the upgrade is pending.
        """
        me = threading.get_ident()
        with self._cond:
            if self._update_holder != me:
                raise LockProtocolError("upgrade requires holding the update lock")
            if me in self._shared_holders:
                raise LockProtocolError(
                    "cannot upgrade while also holding a shared lock"
                )
            self._exclusive_pending += 1
            try:
                if not self._wait_for(lambda: not self._shared_holders, timeout):
                    raise LockTimeout("timed out waiting for shared holders to drain")
            finally:
                self._exclusive_pending -= 1
            self._update_holder = None
            self._exclusive_holder = me
            with self.stats._lock:
                self.stats.upgrades += 1
            self._cond.notify_all()

    def downgrade(self) -> None:
        """Convert a held exclusive lock back to update."""
        me = threading.get_ident()
        with self._cond:
            if self._exclusive_holder != me:
                raise LockProtocolError("downgrade requires holding exclusive")
            self._exclusive_holder = None
            self._update_holder = me
            self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def shared(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire(LockMode.SHARED, timeout)
        try:
            yield
        finally:
            self.release(LockMode.SHARED)

    @contextmanager
    def update(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire(LockMode.UPDATE, timeout)
        try:
            yield
        finally:
            self.release(LockMode.UPDATE)

    @contextmanager
    def exclusive(self, timeout: float | None = None) -> Iterator[None]:
        self.acquire(LockMode.EXCLUSIVE, timeout)
        try:
            yield
        finally:
            self.release(LockMode.EXCLUSIVE)

    @contextmanager
    def upgraded(self, timeout: float | None = None) -> Iterator[None]:
        """Temporarily upgrade update→exclusive around a mutation."""
        self.upgrade(timeout)
        try:
            yield
        finally:
            self.downgrade()

    # -- introspection ----------------------------------------------------------

    def holders(self) -> dict[str, object]:
        with self._cond:
            return {
                "shared": len(self._shared_holders),
                "update": self._update_holder is not None,
                "exclusive": self._exclusive_holder is not None,
                "exclusive_pending": self._exclusive_pending,
            }

    # -- internals ----------------------------------------------------------------

    def _acquire_shared(self, me: int, timeout: float | None) -> None:
        with self._cond:
            if me in self._shared_holders:
                raise LockProtocolError("shared lock is not reentrant")
            if self._exclusive_holder == me or self._update_holder == me:
                raise LockProtocolError(
                    "cannot take shared while holding update/exclusive"
                )

            def admissible() -> bool:
                return self._exclusive_holder is None and not self._exclusive_pending

            if not admissible():
                with self.stats._lock:
                    self.stats.shared_waits += 1
            if not self._wait_for(admissible, timeout):
                raise LockTimeout("timed out acquiring shared lock")
            self._shared_holders[me] = 1
            with self.stats._lock:
                self.stats.shared_acquired += 1

    def _acquire_update(self, me: int, timeout: float | None) -> None:
        with self._cond:
            if self._update_holder == me or self._exclusive_holder == me:
                raise LockProtocolError("update lock is not reentrant")
            if me in self._shared_holders:
                raise LockProtocolError(
                    "cannot take update while holding shared (deadlock hazard)"
                )

            def admissible() -> bool:
                return (
                    self._update_holder is None
                    and self._exclusive_holder is None
                    and not self._exclusive_pending
                )

            if not admissible():
                with self.stats._lock:
                    self.stats.update_waits += 1
            if not self._wait_for(admissible, timeout):
                raise LockTimeout("timed out acquiring update lock")
            self._update_holder = me
            with self.stats._lock:
                self.stats.update_acquired += 1

    def _acquire_exclusive(self, me: int, timeout: float | None) -> None:
        with self._cond:
            if self._exclusive_holder == me or self._update_holder == me:
                raise LockProtocolError("exclusive lock is not reentrant")
            if me in self._shared_holders:
                raise LockProtocolError(
                    "cannot take exclusive while holding shared (deadlock hazard)"
                )
            self._exclusive_pending += 1
            try:

                def admissible() -> bool:
                    return (
                        self._update_holder is None
                        and self._exclusive_holder is None
                        and not self._shared_holders
                    )

                if not admissible():
                    with self.stats._lock:
                        self.stats.exclusive_waits += 1
                if not self._wait_for(admissible, timeout):
                    raise LockTimeout("timed out acquiring exclusive lock")
            finally:
                self._exclusive_pending -= 1
            self._exclusive_holder = me
            with self.stats._lock:
                self.stats.exclusive_acquired += 1
            self._cond.notify_all()

    def _wait_for(self, predicate, timeout: float | None) -> bool:
        """``Condition.wait_for`` under the already-held condition lock."""
        return self._cond.wait_for(predicate, timeout=timeout)
