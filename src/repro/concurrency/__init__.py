"""Concurrency control: the paper's shared/update/exclusive lock."""

from repro.concurrency.locks import (
    COMPATIBILITY,
    CommitBarrier,
    LockMode,
    LockProtocolError,
    LockStats,
    LockTimeout,
    SUELock,
)

__all__ = [
    "COMPATIBILITY",
    "CommitBarrier",
    "LockMode",
    "LockProtocolError",
    "LockStats",
    "LockTimeout",
    "SUELock",
]
