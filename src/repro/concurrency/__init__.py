"""Concurrency control: the paper's shared/update/exclusive lock."""

from repro.concurrency.locks import (
    COMPATIBILITY,
    LockMode,
    LockProtocolError,
    LockStats,
    LockTimeout,
    SUELock,
)

__all__ = [
    "COMPATIBILITY",
    "LockMode",
    "LockProtocolError",
    "LockStats",
    "LockTimeout",
    "SUELock",
]
