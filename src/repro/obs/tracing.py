"""Cross-RPC tracing: spans, causality, and wire-context propagation.

A :class:`Span` is one timed operation; a :class:`Tracer` collects
finished spans in a bounded ring.  Spans form trees through parent ids,
and the tree crosses process boundaries by serialising a
:class:`SpanContext` into the RPC call header (see
:func:`repro.rpc.interface.encode_request`), so one name server update
traces as::

    rpc.client.bind
      rpc.server.bind
        db.update
          db.explore
          db.pickle
          db.log_append
          db.apply
          db.commit_barrier
            commit.fsync

The active span is tracked per thread; instrumentation deep in the stack
attaches children with :func:`child_span` without any plumbing — when no
span is active (tracing off, or an untraced caller) it returns a shared
no-op span whose cost is one thread-local read, which is how the
database keeps its instrumentation overhead within the ≤5 % budget.

All timing runs on the tracer's injectable clock: under a
:class:`~repro.sim.clock.SimClock` span durations are the modelled 1987
times, matching every other measurement in the package.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque

from repro.sim.clock import Clock, WallClock

_active = threading.local()
_span_counter = itertools.count(1)


def _new_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """The portable identity of a span: enough to parent a remote child."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_header(self) -> str:
        """Serialise for the RPC call header (``traceid-spanid``)."""
        return f"{self.trace_id}-{self.span_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.trace_id}, {self.span_id})"


def extract(header: str) -> SpanContext | None:
    """Parse a call-header trace context; None for absent or malformed."""
    if not header:
        return None
    trace_id, sep, span_id = header.partition("-")
    if not sep or not trace_id or not span_id:
        return None
    return SpanContext(trace_id, span_id)


class Span:
    """One timed operation, linked to its parent by ids."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start", "end_time", "attrs", "events", "error",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, object] | None = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start = tracer.clock.now()
        self.end_time: float | None = None
        self.attrs: dict[str, object] = dict(attrs) if attrs else {}
        self.events: list[tuple[float, str, dict[str, object]]] = []
        self.error: str | None = None

    # -- structure -----------------------------------------------------------

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def child(self, name: str, **attrs: object) -> "Span":
        return self.tracer.start_span(name, parent=self, attrs=attrs)

    # -- annotation ----------------------------------------------------------

    def set(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self

    def event(self, name: str, **attrs: object) -> None:
        self.events.append((self.tracer.clock.now(), name, attrs))

    # -- lifecycle -----------------------------------------------------------

    def duration(self) -> float:
        end = self.end_time if self.end_time is not None else self.tracer.clock.now()
        return end - self.start

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    def end(self) -> None:
        if self.end_time is not None:
            return
        self.end_time = self.tracer.clock.now()
        self.tracer._record(self)

    def __enter__(self) -> "Span":
        _push(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None and self.error is None:
            self.error = repr(exc)
        _pop(self)
        self.end()

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end_time,
            "duration": self.duration(),
            "attrs": dict(self.attrs),
            "events": [
                {"time": t, "name": n, "attrs": dict(a)}
                for t, n, a in self.events
            ],
            "error": self.error,
        }


class _NullSpan:
    """The shared do-nothing span used when tracing is inactive."""

    __slots__ = ()

    def set(self, key: str, value: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: object) -> None:
        pass

    def end(self) -> None:
        pass

    def duration(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and keeps the most recent finished ones.

    ``capacity`` bounds memory: the ring keeps the newest finished spans.
    ``slow_log``, when given, receives every finished span (it applies
    its own threshold — see :class:`repro.obs.export.SlowOpLog`).

    ``sample_1_in`` is head-based sampling: only every Nth *root* span
    is recorded (the rest get :data:`NULL_SPAN`, costing one counter
    bump).  The decision is made once, at trace start — a sampled-out
    root emits no trace header, so nothing downstream records either,
    while header-parented server spans are *always* kept: whichever node
    started the trace already decided it should exist, and dropping
    fragments here would tear cross-node trees apart.  The default of 1
    keeps every trace.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        capacity: int = 4096,
        slow_log: object | None = None,
        sample_1_in: int = 1,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity counts from 1")
        if sample_1_in < 1:
            raise ValueError("sample_1_in counts from 1 (1 = keep all)")
        self.clock = clock if clock is not None else WallClock()
        self.slow_log = slow_log
        self.sample_1_in = sample_1_in
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.spans_started = 0
        self.spans_dropped = 0
        self.spans_sampled_out = 0
        self._roots_seen = 0

    # -- creation ------------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        attrs: dict[str, object] | None = None,
    ) -> Span:
        if parent is None:
            if self.sample_1_in > 1:
                with self._lock:
                    self._roots_seen += 1
                    kept = self._roots_seen % self.sample_1_in == 1
                    if not kept:
                        self.spans_sampled_out += 1
                if not kept:
                    return NULL_SPAN  # type: ignore[return-value]
            trace_id, parent_id = _new_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        with self._lock:
            self.spans_started += 1
        return Span(self, name, trace_id, parent_id, attrs)

    def span(self, name: str, **attrs: object) -> Span:
        """A span parented on the thread's active span (or a new root).

        Use as a context manager: entering makes it the active span.
        """
        return self.start_span(name, parent=current_span(), attrs=attrs)

    # -- collection ----------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self.spans_dropped += 1
            self._finished.append(span)
        if self.slow_log is not None:
            self.slow_log.offer(span)

    def finished_spans(self, trace_id: str | None = None) -> list[Span]:
        with self._lock:
            spans = list(self._finished)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def trace_ids(self) -> list[str]:
        """Distinct trace ids present in the ring, oldest first."""
        seen: dict[str, None] = {}
        for span in self.finished_spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def last_trace_id(self) -> str | None:
        ids = self.trace_ids()
        return ids[-1] if ids else None

    def tree(self, trace_id: str) -> dict[str, object] | None:
        """The span tree of one trace (see :func:`build_tree`)."""
        return build_tree(s.to_dict() for s in self.finished_spans(trace_id))


def build_tree(span_dicts) -> dict[str, object] | None:
    """Assemble span dicts (one trace's worth) into a nested tree.

    Accepts dicts from any mix of tracers — this is how a client-side
    tracer's spans and a server's management-exported spans combine into
    the single cross-process tree the trace header promises.  Orphans
    (spans whose parent is missing from the set) attach to the root.
    Returns ``None`` when no spans are given.
    """
    spans = [dict(s) for s in span_dicts]
    if not spans:
        return None
    spans.sort(key=lambda s: (s["start"], s["span_id"]))
    by_id = {}
    for span in spans:
        span["children"] = []
        by_id[span["span_id"]] = span
    roots = []
    for span in spans:
        parent = by_id.get(span["parent_id"]) if span["parent_id"] else None
        if parent is None:
            roots.append(span)
        else:
            parent["children"].append(span)
    if len(roots) == 1:
        return roots[0]
    # Multiple roots (e.g. a lost parent): synthesise one holding node.
    return {
        "name": "<trace>",
        "trace_id": spans[0]["trace_id"],
        "span_id": "",
        "parent_id": None,
        "start": roots[0]["start"],
        "end": None,
        "duration": 0.0,
        "attrs": {},
        "events": [],
        "error": None,
        "children": roots,
    }


def span_names(tree: dict[str, object] | None) -> list[str]:
    """Flatten a tree into depth-first span names (test/assertion helper)."""
    if tree is None:
        return []
    names = [tree["name"]]
    for child in tree["children"]:
        names.extend(span_names(child))
    return names


def format_tree(tree: dict[str, object] | None, unit: str = "ms") -> str:
    """Render a span tree for terminals (the shell's ``trace`` command)."""
    if tree is None:
        return "(no trace)"
    scale = 1000.0 if unit == "ms" else 1.0
    lines: list[str] = []

    def walk(node: dict[str, object], depth: int) -> None:
        attrs = node.get("attrs") or {}
        extra = "".join(f" {k}={v!r}" for k, v in sorted(attrs.items()))
        error = f"  ERROR {node['error']}" if node.get("error") else ""
        lines.append(
            f"{'  ' * depth}{node['name']:<32} "
            f"{node['duration'] * scale:10.3f} {unit}{extra}{error}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    walk(tree, 0)
    return "\n".join(lines)


# -- thread-local active span ---------------------------------------------------


def _stack() -> list[Span]:
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    return stack


def _push(span: Span) -> None:
    _stack().append(span)


def _pop(span: Span) -> None:
    stack = _stack()
    if stack and stack[-1] is span:
        stack.pop()
    elif span in stack:  # unbalanced exit; recover rather than corrupt
        stack.remove(span)


def current_span() -> Span | None:
    """The thread's innermost active span, or None."""
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


def child_span(name: str, **attrs: object):
    """A child of the active span, or the no-op span when none is active.

    The zero-config hook for deep layers: returned spans are context
    managers either way, so instrumentation reads as ``with
    child_span("db.log_append") as span: ...`` and costs almost nothing
    when tracing is off.
    """
    parent = current_span()
    if parent is None:
        return NULL_SPAN
    return parent.tracer.start_span(name, parent=parent, attrs=attrs)


def maybe_span(tracer: Tracer | None, name: str, **attrs: object):
    """A span under the active span, else a root on ``tracer``, else no-op.

    The entry-point hook: layers that can *start* traces (the database,
    the RPC client and server) call this so a traced caller gets a child
    span, an explicitly configured tracer gets a root span, and an
    uninstrumented deployment gets the no-op.
    """
    parent = current_span()
    if parent is not None:
        return parent.tracer.start_span(name, parent=parent, attrs=attrs)
    if tracer is not None:
        return tracer.start_span(name, parent=None, attrs=attrs)
    return NULL_SPAN
