"""End-to-end observability smoke check (used as a CI job).

Boots a real TCP name server node with its HTTP metrics endpoint, runs a
small scripted workload through a traced RPC client, then verifies the
two tentpole observability claims against the *running* system:

1. the Prometheus scrape contains live series from every instrumented
   layer — core database, RPC, replication and storage; and
2. one traced update assembles into a single cross-process trace tree
   containing the client call, the server dispatch, the log append and
   the fsync/commit barrier.

Run it directly::

    PYTHONPATH=src python -m repro.obs.smoke

Exit status 0 means both checks passed; failures print what was missing
and exit 1.  No third-party dependencies: the scrape uses urllib.
"""

from __future__ import annotations

import sys
import tempfile
import urllib.request
from typing import TextIO

#: One series per instrumented layer that a freshly exercised node must
#: export.  Kept deliberately small and stable: this is a liveness check
#: of the pipeline, not a catalogue test (tests/obs does that).
REQUIRED_METRICS = (
    "db_updates_total",            # core database
    "db_log_fsyncs_total",         # commit path
    "db_update_seconds",           # core latency histogram
    "rpc_server_calls_total",      # RPC server
    "rpc_reply_cache_misses_total",  # at-most-once machinery
    "replication_records_propagated_total",  # replication layer
    "storage_write_bytes_total",   # storage layer (LocalFS meter)
    "storage_fsync_seconds",       # storage latency histogram
)

#: Span names that must appear in the assembled client+server trace tree.
REQUIRED_SPANS = (
    "rpc.client.bind",   # client stub
    "rpc.server.bind",   # server dispatch (child via header propagation)
    "db.update",         # database update
    "db.log_append",     # log write
    "db.commit_barrier",  # durability wait
    "commit.fsync",      # the group-commit leader's fsync
)


def run_smoke(out: TextIO = sys.stdout) -> int:
    from repro.nameserver.client import RemoteNameServer
    from repro.nameserver.management import RemoteManagement
    from repro.nameserver.serve import NodeOptions, build_node
    from repro.obs import MetricsRegistry, Tracer, build_tree, merge_trees, span_names
    from repro.rpc import TcpTransport

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as directory:
        node = build_node(NodeOptions(directory=directory, metrics_port=0))
        client_registry = MetricsRegistry()
        client_tracer = Tracer()
        transport = TcpTransport("127.0.0.1", node.port)
        try:
            server = RemoteNameServer(
                transport, registry=client_registry, tracer=client_tracer
            )
            management = RemoteManagement(transport)

            # -- scripted workload -------------------------------------------
            for i in range(5):
                server.bind(f"hosts/h{i}", {"addr": f"10.0.0.{i}"})
            for i in range(5):
                assert server.lookup(f"hosts/h{i}")["addr"] == f"10.0.0.{i}"
            server.unbind("hosts/h4")

            # -- check 1: the Prometheus scrape covers every layer ------------
            url = f"http://127.0.0.1:{node.metrics_exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                scrape = response.read().decode("utf-8")
            for name in REQUIRED_METRICS:
                if f"\n{name}" not in f"\n{scrape}":
                    failures.append(f"metric {name!r} missing from {url}")
            updates = _sample(scrape, "db_updates_total")
            if updates is not None and updates < 6:  # 5 binds + 1 unbind
                failures.append(f"db_updates_total={updates}, expected >= 6")

            # -- check 2: one update is one cross-process trace tree ----------
            trace_id = client_tracer.last_trace_id()
            if not trace_id:
                failures.append("client tracer recorded no spans")
            else:
                client_spans = [
                    span.to_dict()
                    for span in client_tracer.finished_spans(trace_id)
                ]
                server_spans = management.trace_spans(trace_id)
                tree = merge_trees(client_spans, server_spans)
                names = set(span_names(tree))
                for name in REQUIRED_SPANS:
                    # The last client call was unbind, not bind; accept the
                    # method actually traced.
                    wanted = name.replace(".bind", ".unbind")
                    if wanted not in names:
                        failures.append(
                            f"span {wanted!r} missing from trace {trace_id} "
                            f"(got {sorted(names)})"
                        )
                if tree is None or tree["name"] == "<trace>":
                    failures.append(
                        f"trace {trace_id} did not assemble into a single "
                        f"rooted tree (root {tree and tree['name']!r})"
                    )
                else:
                    from repro.obs import format_tree

                    out.write(f"trace {trace_id}:\n")
                    out.write(format_tree(tree) + "\n")
        finally:
            transport.close()
            node.shutdown()

    if failures:
        for failure in failures:
            out.write(f"FAIL: {failure}\n")
        return 1
    out.write(
        f"observability smoke OK: {len(REQUIRED_METRICS)} metrics across "
        f"4 layers, one complete client-to-fsync trace\n"
    )
    return 0


def _sample(scrape: str, name: str) -> float | None:
    """The value of an unlabelled sample in Prometheus text, if present."""
    for line in scrape.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[-1])
    return None


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    return run_smoke(out)


if __name__ == "__main__":  # pragma: no cover - exercised via run_smoke()
    sys.exit(main())
