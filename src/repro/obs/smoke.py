"""End-to-end observability smoke check (used as a CI job).

Boots a real TCP name server node with its HTTP metrics endpoint, runs a
small scripted workload through a traced RPC client, then verifies the
two tentpole observability claims against the *running* system:

1. the Prometheus scrape contains live series from every instrumented
   layer — core database, RPC, replication and storage; and
2. one traced update assembles into a single cross-process trace tree
   containing the client call, the server dispatch, the log append and
   the fsync/commit barrier.

Run it directly::

    PYTHONPATH=src python -m repro.obs.smoke

Exit status 0 means both checks passed; failures print what was missing
and exit 1.  No third-party dependencies: the scrape uses urllib.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import urllib.request
from typing import TextIO

#: One series per instrumented layer that a freshly exercised node must
#: export.  Kept deliberately small and stable: this is a liveness check
#: of the pipeline, not a catalogue test (tests/obs does that).
REQUIRED_METRICS = (
    "db_updates_total",            # core database
    "db_log_fsyncs_total",         # commit path
    "db_update_seconds",           # core latency histogram
    "rpc_server_calls_total",      # RPC server
    "rpc_reply_cache_misses_total",  # at-most-once machinery
    "replication_records_propagated_total",  # replication layer
    "storage_write_bytes_total",   # storage layer (LocalFS meter)
    "storage_fsync_seconds",       # storage latency histogram
)

#: Span names that must appear in the assembled client+server trace tree.
REQUIRED_SPANS = (
    "rpc.client.bind",   # client stub
    "rpc.server.bind",   # server dispatch (child via header propagation)
    "db.update",         # database update
    "db.log_append",     # log write
    "db.commit_barrier",  # durability wait
    "commit.fsync",      # the group-commit leader's fsync
)


def run_smoke(out: TextIO = sys.stdout) -> int:
    from repro.nameserver.client import RemoteNameServer
    from repro.nameserver.management import RemoteManagement
    from repro.nameserver.serve import NodeOptions, build_node
    from repro.obs import MetricsRegistry, Tracer, build_tree, merge_trees, span_names
    from repro.rpc import TcpTransport

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as directory:
        node = build_node(NodeOptions(directory=directory, metrics_port=0))
        client_registry = MetricsRegistry()
        client_tracer = Tracer()
        transport = TcpTransport("127.0.0.1", node.port)
        try:
            server = RemoteNameServer(
                transport, registry=client_registry, tracer=client_tracer
            )
            management = RemoteManagement(transport)

            # -- scripted workload -------------------------------------------
            for i in range(5):
                server.bind(f"hosts/h{i}", {"addr": f"10.0.0.{i}"})
            for i in range(5):
                assert server.lookup(f"hosts/h{i}")["addr"] == f"10.0.0.{i}"
            server.unbind("hosts/h4")

            # -- check 1: the Prometheus scrape covers every layer ------------
            url = f"http://127.0.0.1:{node.metrics_exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                scrape = response.read().decode("utf-8")
            for name in REQUIRED_METRICS:
                if f"\n{name}" not in f"\n{scrape}":
                    failures.append(f"metric {name!r} missing from {url}")
            updates = _sample(scrape, "db_updates_total")
            if updates is not None and updates < 6:  # 5 binds + 1 unbind
                failures.append(f"db_updates_total={updates}, expected >= 6")

            # -- check 2: one update is one cross-process trace tree ----------
            trace_id = client_tracer.last_trace_id()
            if not trace_id:
                failures.append("client tracer recorded no spans")
            else:
                client_spans = [
                    span.to_dict()
                    for span in client_tracer.finished_spans(trace_id)
                ]
                server_spans = management.trace_spans(trace_id)
                tree = merge_trees(client_spans, server_spans)
                names = set(span_names(tree))
                for name in REQUIRED_SPANS:
                    # The last client call was unbind, not bind; accept the
                    # method actually traced.
                    wanted = name.replace(".bind", ".unbind")
                    if wanted not in names:
                        failures.append(
                            f"span {wanted!r} missing from trace {trace_id} "
                            f"(got {sorted(names)})"
                        )
                if tree is None or tree["name"] == "<trace>":
                    failures.append(
                        f"trace {trace_id} did not assemble into a single "
                        f"rooted tree (root {tree and tree['name']!r})"
                    )
                else:
                    from repro.obs import format_tree

                    out.write(f"trace {trace_id}:\n")
                    out.write(format_tree(tree) + "\n")
        finally:
            transport.close()
            node.shutdown()

    if failures:
        for failure in failures:
            out.write(f"FAIL: {failure}\n")
        return 1
    out.write(
        f"observability smoke OK: {len(REQUIRED_METRICS)} metrics across "
        f"4 layers, one complete client-to-fsync trace\n"
    )
    return 0


#: Span names that must appear in the assembled *cluster* trace: router
#: retry loop, client stub, primary dispatch, durability, and the eager
#: propagation to a follower — one update traced end to end.
REQUIRED_CLUSTER_SPANS = (
    "router.bind",
    "rpc.client.bind",
    "rpc.server.bind",
    "db.update",
    "db.log_append",
    "rpc.server.apply_remote",  # the follower's half of eager propagation
)


def run_cluster_smoke(out: TextIO = sys.stdout) -> int:
    """The cluster-plane smoke: 2 shards × 2 replicas, real processes.

    Verifies the cluster observability claims end to end:

    1. one routed update assembles into a single cross-node trace tree
       (router → primary → follower) with a non-empty critical-path
       breakdown, pulled by the coordinator's trace collector; and
    2. the coordinator's ``/cluster/metrics`` rollups equal the sum of
       the per-node scrapes they were derived from, and serve over HTTP.
    """
    from repro.cluster.serve import ClusterSupervisor
    from repro.obs import Tracer, span_names

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="obs-cluster-smoke-") as base:
        with ClusterSupervisor(
            base, num_shards=2, replicas=2, metrics_port=0
        ) as supervisor:
            coordinator = supervisor.coordinator
            router_tracer = Tracer()
            router = supervisor.router(tracer=router_tracer)
            try:
                # -- scripted workload ------------------------------------
                # Heads h0..h7 spread across both shards' hash ranges.
                for i in range(8):
                    router.bind(f"h{i}/addr", {"addr": f"10.0.0.{i}"})
                # The newest trace at this point is the last *update* —
                # the one that must reconstruct router -> primary ->
                # follower.  The lookups below only add more traffic.
                trace_id = router_tracer.last_trace_id()
                for i in range(8):
                    assert router.lookup(f"h{i}/addr")["addr"] == (
                        f"10.0.0.{i}"
                    )

                # -- check 1: one cross-node trace tree -------------------
                if not trace_id:
                    failures.append("router tracer recorded no spans")
                router_spans = [
                    span.to_dict() for span in router_tracer.finished_spans()
                ]
                collector = coordinator.trace_collector
                collector.ingest("router", router_spans)
                poll = collector.poll()
                unreachable = [
                    node
                    for node, info in poll["nodes"].items()
                    if not info.get("reachable")
                ]
                if unreachable:
                    failures.append(f"unreachable replicas: {unreachable}")
                assembled = collector.assemble(trace_id) if trace_id else {}
                nodes = assembled.get("nodes", [])
                if len(nodes) < 3:
                    failures.append(
                        f"trace {trace_id} spans {len(nodes)} node(s) "
                        f"({nodes}), expected router + primary + follower"
                    )
                names = set(span_names(assembled.get("tree")))
                for name in REQUIRED_CLUSTER_SPANS:
                    if name not in names:
                        failures.append(
                            f"span {name!r} missing from cluster trace "
                            f"{trace_id} (got {sorted(names)})"
                        )
                path = assembled.get("critical_path") or {}
                if not path.get("steps"):
                    failures.append(
                        f"trace {trace_id} produced no critical path"
                    )
                elif not path.get("total_s", 0) > 0:
                    failures.append(
                        f"critical path total is {path.get('total_s')}"
                    )
                else:
                    out.write(f"cluster trace {trace_id}:\n")
                    for step in path["steps"]:
                        out.write(
                            f"  {step['stage']:<12} {step['name']:<28} "
                            f"node={step['node']} "
                            f"self={step['self_s'] * 1000:.3f}ms\n"
                        )

                # -- check 2: rollups equal the sum of per-node scrapes ---
                scrape = coordinator.cluster_metrics_snapshot()
                per_node = _counter_sum(scrape["per_replica"], "db_updates_total")
                rolled = _counter_sum(scrape["cluster"], "db_updates_total")
                if per_node <= 0:
                    failures.append("no db_updates_total in per-node scrapes")
                if abs(per_node - rolled) > 1e-9:
                    failures.append(
                        f"cluster rollup db_updates_total={rolled} != "
                        f"sum of per-node scrapes {per_node}"
                    )

                # -- check 3: the rollups serve over HTTP -----------------
                port = supervisor.metrics_exporter.port
                url = f"http://127.0.0.1:{port}/cluster/metrics"
                with urllib.request.urlopen(url, timeout=10) as response:
                    text = response.read().decode("utf-8")
                if "db_updates_total" not in text:
                    failures.append(f"db_updates_total missing from {url}")

                # -- check 4: the SLO monitor evaluates -------------------
                slo = coordinator.cluster_slo()
                if not slo.get("targets"):
                    failures.append("cluster_slo() reported no targets")
            finally:
                router.close()

    if failures:
        for failure in failures:
            out.write(f"FAIL: {failure}\n")
        return 1
    out.write(
        "cluster observability smoke OK: one update traced router -> "
        "primary -> follower with a critical path, rollups = sum of "
        "per-node scrapes, SLOs evaluated\n"
    )
    return 0


def _counter_sum(snapshot: dict, family: str) -> float:
    """Sum of every series value of one counter family in a snapshot."""
    entry = snapshot.get(family)
    if not entry:
        return 0.0
    return sum(
        float(series.get("value", 0.0)) for series in entry.get("series", [])
    )


def _sample(scrape: str, name: str) -> float | None:
    """The value of an unlabelled sample in Prometheus text, if present."""
    for line in scrape.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[-1])
    return None


def main(argv: list[str] | None = None, out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.smoke",
        description="End-to-end observability smoke checks.",
    )
    parser.add_argument(
        "--cluster", action="store_true",
        help="run the cluster-plane smoke (2 shards x 2 replicas) "
        "instead of the single-node one",
    )
    args = parser.parse_args(argv)
    if args.cluster:
        return run_cluster_smoke(out)
    return run_smoke(out)


if __name__ == "__main__":  # pragma: no cover - exercised via run_smoke()
    sys.exit(main())
