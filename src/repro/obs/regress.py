"""The benchmark-regression sentry: a memory for the perf trajectory.

The paper justifies its design with measured numbers; this module makes
sure those numbers cannot silently drift.  Every E1–E16 benchmark emits
*normalized metrics* — name → ``{"value", "unit", "direction"}`` — into
its ``BENCH_E<n>.json`` (see ``benchmarks/conftest.py``), runs append to
a committed baseline store ``benchmarks/results/trajectory.jsonl`` (one
JSON object per run), and::

    PYTHONPATH=src python -m repro.obs.regress

compares the current results directory against the recent baseline
window with a robust statistical test: the tolerance band around the
baseline **median** is ``max(mad_k·MAD, rel_tol·|median|, abs_tol)``,
where MAD is the median absolute deviation — robust to the odd outlier
run in a way mean±stddev is not.  A metric whose ``direction`` is
``"lower"`` regresses by exceeding the band upward, ``"higher"`` by
falling below it, ``"none"`` is informational and never gates.  The
process exits nonzero on any regression (or on a metric that vanished),
so CI can gate on it; a first run with no baseline passes.

Per-metric tolerances live in an optional JSON config (``--config``,
default ``benchmarks/results/regress.json``) mapping metric name →
``{"rel_tol": ..., "mad_k": ..., "abs_tol": ..., "direction": ...}``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass
from statistics import median

#: accepted metric directions
DIRECTIONS = ("lower", "higher", "none")

#: default comparison tunables (overridable globally and per metric)
DEFAULT_WINDOW = 20
DEFAULT_MAD_K = 5.0
DEFAULT_REL_TOL = 0.05
DEFAULT_ABS_TOL = 1e-9

TRAJECTORY_FILE = "trajectory.jsonl"


def metric(value: float, unit: str = "", direction: str = "lower") -> dict:
    """One normalized benchmark metric entry.

    ``direction`` says which way is better: ``"lower"`` (latencies,
    bytes), ``"higher"`` (throughput), or ``"none"`` (informational —
    tracked in the trajectory but never a regression, e.g. source-line
    counts that legitimately grow).
    """
    if direction not in DIRECTIONS:
        raise ValueError(
            f"direction must be one of {DIRECTIONS}, not {direction!r}"
        )
    return {"value": float(value), "unit": unit, "direction": direction}


# -- stores ---------------------------------------------------------------------


def load_results(results_dir: str) -> dict[str, dict]:
    """All normalized metrics from a results directory's ``BENCH_*.json``."""
    out: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        for name, entry in (data.get("metrics") or {}).items():
            out[name] = dict(entry)
    return out


def load_trajectory(path: str) -> list[dict]:
    """The baseline store: one JSON run object per line, oldest first."""
    if not os.path.exists(path):
        return []
    runs: list[dict] = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                runs.append(json.loads(line))
    return runs


def append_run(
    path: str,
    metrics: dict[str, dict],
    run_id: str | None = None,
    note: str | None = None,
) -> dict:
    """Append one run's metrics to the trajectory store; returns the entry."""
    existing = load_trajectory(path)
    entry: dict = {
        "run_id": run_id if run_id else f"run-{len(existing) + 1}",
        "metrics": {name: dict(m) for name, m in sorted(metrics.items())},
    }
    if note:
        entry["note"] = note
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


# -- comparison -----------------------------------------------------------------


@dataclass
class Verdict:
    """One metric's comparison against the baseline window."""

    metric: str
    status: str  # "ok" | "regressed" | "improved" | "new" | "missing" | "info"
    value: float | None = None
    unit: str = ""
    direction: str = "lower"
    baseline_median: float | None = None
    tolerance: float | None = None
    history: int = 0

    @property
    def gating(self) -> bool:
        return self.status in ("regressed", "missing")

    def describe(self) -> str:
        if self.status == "missing":
            return (
                f"{self.metric}: present in the baseline but absent from "
                f"this run"
            )
        base = f"{self.metric} = {self.value:g}{self.unit}"
        if self.status in ("new", "info"):
            return f"{base} ({self.status})"
        return (
            f"{base} vs median {self.baseline_median:g} "
            f"± {self.tolerance:g} over {self.history} run(s): {self.status}"
        )


def _tolerance(
    history: list[float],
    med: float,
    mad_k: float,
    rel_tol: float,
    abs_tol: float,
) -> float:
    mad = median(abs(x - med) for x in history)
    return max(mad_k * mad, rel_tol * abs(med), abs_tol)


def compare(
    current: dict[str, dict],
    trajectory: list[dict],
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
    overrides: dict[str, dict] | None = None,
) -> list[Verdict]:
    """Judge every current metric against the recent baseline window.

    Also reports metrics that the baseline window knows but the current
    run does not emit (``"missing"`` — a benchmark silently dropping a
    number is itself a regression of the measurement discipline).
    """
    overrides = overrides or {}
    recent = trajectory[-window:] if window > 0 else list(trajectory)
    verdicts: list[Verdict] = []
    for name, entry in sorted(current.items()):
        o = overrides.get(name, {})
        value = float(entry["value"])
        unit = str(entry.get("unit", ""))
        direction = str(o.get("direction", entry.get("direction", "lower")))
        if direction not in DIRECTIONS:
            raise ValueError(f"{name}: bad direction {direction!r}")
        verdict = Verdict(name, "ok", value, unit, direction)
        if direction == "none":
            verdict.status = "info"
            verdicts.append(verdict)
            continue
        history = [
            float(run["metrics"][name]["value"])
            for run in recent
            if name in (run.get("metrics") or {})
        ]
        verdict.history = len(history)
        if not history:
            verdict.status = "new"
            verdicts.append(verdict)
            continue
        med = median(history)
        tol = _tolerance(
            history,
            med,
            float(o.get("mad_k", mad_k)),
            float(o.get("rel_tol", rel_tol)),
            float(o.get("abs_tol", abs_tol)),
        )
        verdict.baseline_median = med
        verdict.tolerance = tol
        delta = value - med
        worse = delta > tol if direction == "lower" else delta < -tol
        better = delta < -tol if direction == "lower" else delta > tol
        if worse:
            verdict.status = "regressed"
        elif better:
            verdict.status = "improved"
        verdicts.append(verdict)
    known = {
        name
        for run in recent
        for name in (run.get("metrics") or {})
    }
    for name in sorted(known - set(current)):
        verdicts.append(Verdict(name, "missing"))
    return verdicts


def format_verdicts(verdicts: list[Verdict]) -> str:
    """A terminal table, regressions first."""
    order = {"regressed": 0, "missing": 1, "improved": 2, "new": 3,
             "info": 4, "ok": 5}
    lines = [f"{'status':<10} metric"]
    for verdict in sorted(
        verdicts, key=lambda v: (order.get(v.status, 9), v.metric)
    ):
        lines.append(f"{verdict.status:<10} {verdict.describe()}")
    return "\n".join(lines)


# -- CLI ------------------------------------------------------------------------


def _default_results_dir() -> str:
    return os.path.join("benchmarks", "results")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.regress",
        description="Compare benchmark results against the trajectory "
        "baseline; exit nonzero on regression.",
    )
    parser.add_argument(
        "--results-dir", default=_default_results_dir(),
        help="directory holding the current run's BENCH_*.json",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"trajectory store (default: <results-dir>/{TRAJECTORY_FILE})",
    )
    parser.add_argument(
        "--config", default=None,
        help="per-metric override JSON "
        "(default: <results-dir>/regress.json when present)",
    )
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="baseline runs considered (newest N)")
    parser.add_argument("--mad-k", type=float, default=DEFAULT_MAD_K)
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL)
    parser.add_argument("--abs-tol", type=float, default=DEFAULT_ABS_TOL)
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="do not fail when a baseline metric is absent from this run",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="append this run's metrics to the trajectory store",
    )
    parser.add_argument("--run-id", default=None,
                        help="identifier stored with --record")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the summary line")
    args = parser.parse_args(argv)

    baseline = (
        args.baseline
        if args.baseline is not None
        else os.path.join(args.results_dir, TRAJECTORY_FILE)
    )
    current = load_results(args.results_dir)
    if not current:
        print(
            f"regress: no normalized metrics under {args.results_dir!r} — "
            f"run the benchmarks first (pytest benchmarks -q)",
            file=sys.stderr,
        )
        return 2

    overrides: dict[str, dict] = {}
    config_path = args.config
    if config_path is None:
        candidate = os.path.join(args.results_dir, "regress.json")
        config_path = candidate if os.path.exists(candidate) else None
    if config_path is not None:
        with open(config_path, "r", encoding="utf-8") as f:
            overrides = json.load(f)

    trajectory = load_trajectory(baseline)
    verdicts = compare(
        current,
        trajectory,
        window=args.window,
        mad_k=args.mad_k,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        overrides=overrides,
    )
    failures = [
        v for v in verdicts
        if v.status == "regressed"
        or (v.status == "missing" and not args.allow_missing)
    ]
    if not args.quiet:
        print(format_verdicts(verdicts))
    counts: dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict.status] = counts.get(verdict.status, 0) + 1
    summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    print(
        f"regress: {len(verdicts)} metrics vs {min(len(trajectory), args.window)}"
        f"/{len(trajectory)} baseline run(s): {summary}"
    )
    if args.record:
        entry = append_run(baseline, current, run_id=args.run_id)
        print(f"recorded run {entry['run_id']!r} to {baseline}")
    if failures:
        for verdict in failures:
            print(f"REGRESSION {verdict.describe()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
