"""Cluster trace collection: cross-node trees and critical paths.

Per-node tracers keep their finished spans in bounded rings, exported
over the ``trace_spans`` management RPC.  That answers "what did *this*
process do" — but one cluster update touches a router, a shard primary
and its followers, and the paper-style question ("54 msecs = 6 + 22 +
20 + 6") needs the whole journey.  :class:`ClusterTraceCollector` is the
coordinator-side puller that closes the gap: it drains every replica's
ring, groups span dicts by the propagated trace id (tagging each with
the node it came from), and assembles per-trace trees on demand.

:func:`critical_path` then walks one assembled tree along its
longest-duration child chain, attributing *self time* (a span's duration
minus the child it descended into) to pipeline stages::

    router queue → transport → shard dispatch → log append →
        group-commit fsync → replica ack

so an operator reads "this update spent 1.2 ms in transport and 18 ms in
the group-commit fsync" straight off the coordinator.

Head-based sampling keeps collection cheap under load: with
``sample_1_in=N`` only traces whose id hashes into the 1/N bucket are
*retained* by the collector (a deterministic crc32 decision, so repeated
polls agree), independent of any sampling the nodes themselves do.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from zlib import crc32

from repro.obs.export import merge_trees

__all__ = [
    "ClusterTraceCollector",
    "critical_path",
    "stage_of",
]

#: ordered pipeline stages a critical path is attributed to
STAGES = (
    "router",
    "transport",
    "dispatch",
    "log_append",
    "fsync",
    "replica_ack",
    "db",
    "other",
)

#: prefix → stage, first match wins (checked in order)
_STAGE_RULES = (
    ("router.", "router"),
    ("rpc.client.apply_remote", "replica_ack"),
    ("rpc.client.updates_since", "replica_ack"),
    ("rpc.client.", "transport"),
    ("rpc.transport", "transport"),
    ("rpc.server.apply_remote", "replica_ack"),
    ("rpc.server.", "dispatch"),
    ("db.log_append", "log_append"),
    ("db.commit_barrier", "fsync"),
    ("commit.fsync", "fsync"),
    ("db.", "db"),
)


def stage_of(span_name: str) -> str:
    """Map one span name onto its pipeline stage (``"other"`` unknown)."""
    for prefix, stage in _STAGE_RULES:
        if span_name.startswith(prefix):
            return stage
    return "other"


def critical_path(tree: dict | None) -> dict:
    """The longest-duration chain through one assembled trace tree.

    Walks from the root, at each node descending into the child with the
    largest duration (ties broken toward the later-starting child —
    closer to where the time actually went), with one cross-node rule: a
    child recorded on a *different* node is the operation continuing on
    the remote side, and its wall time is contained inside the local
    transport wait — so the walk prefers the remote child (server
    dispatch, log append, fsync, replica ack all live under it) and
    charges the transport sibling only the remainder (the wire time).
    Each step's *self time* is otherwise the node's duration minus the
    descended child's; the leaf keeps its whole duration.  Returns::

        {"trace_id": ..., "total_s": root duration,
         "steps": [{"name", "node", "stage", "self_s", "duration_s"}...],
         "breakdown": {stage: summed self seconds, largest first}}

    An empty dict for ``tree is None``; the synthetic ``<trace>`` holder
    node (multi-root assembly) is skipped, starting at its longest child.
    """
    if tree is None:
        return {}
    node = tree
    if node.get("name") == "<trace>" and node.get("children"):
        node = max(
            node["children"], key=lambda c: (c["duration"], c["start"])
        )
    total = float(node["duration"])
    steps: list[dict] = []
    breakdown: dict[str, float] = {}

    def emit(span: dict, self_s: float) -> None:
        stage = stage_of(str(span["name"]))
        steps.append(
            {
                "name": span["name"],
                "node": span.get("node", ""),
                "stage": stage,
                "self_s": self_s,
                "duration_s": float(span["duration"]),
            }
        )
        breakdown[stage] = breakdown.get(stage, 0.0) + self_s

    while node is not None:
        children = node.get("children") or []
        here = node.get("node", "")
        remote = [c for c in children if c.get("node", here) != here]
        child = None
        if remote:
            child = max(remote, key=lambda c: (c["duration"], c["start"]))
        elif children:
            child = max(children, key=lambda c: (c["duration"], c["start"]))
        self_s = float(node["duration"])
        if child is not None:
            self_s = max(0.0, self_s - float(child["duration"]))
        emit(node, self_s)
        if remote and child is not None:
            # The wire's own share: the longest local sibling (the
            # transport span) minus the remote time it contains.
            local = [c for c in children if c not in remote]
            if local:
                wire = max(local, key=lambda c: (c["duration"], c["start"]))
                emit(
                    wire,
                    max(
                        0.0,
                        float(wire["duration"]) - float(child["duration"]),
                    ),
                )
        node = child
    ordered = dict(
        sorted(breakdown.items(), key=lambda kv: kv[1], reverse=True)
    )
    return {
        "trace_id": tree.get("trace_id", ""),
        "total_s": total,
        "steps": steps,
        "breakdown": ordered,
    }


class ClusterTraceCollector:
    """Drain every node's span ring; assemble cross-node trace trees.

    ``targets`` is a zero-argument callable returning the nodes to poll
    as ``[(node_id, address), ...]`` (the coordinator derives it from the
    current shard map, so promotions and splits are picked up on the
    next poll).  ``management_factory(address)`` dials one node's
    management RPC — injectable, so loopback tests need no sockets.

    ``capacity`` bounds retained traces (oldest evicted first);
    ``sample_1_in`` head-samples by trace id as described in the module
    docstring.  All methods are thread-safe.
    """

    def __init__(
        self,
        targets,
        management_factory,
        *,
        sample_1_in: int = 1,
        capacity: int = 512,
    ) -> None:
        if sample_1_in < 1:
            raise ValueError("sample_1_in counts from 1 (1 = keep all)")
        if capacity < 1:
            raise ValueError("collector capacity counts from 1")
        self.targets = targets
        self.management_factory = management_factory
        self.sample_1_in = sample_1_in
        self.capacity = capacity
        self._lock = threading.Lock()
        #: {trace_id: {span_id: span dict}} — insertion-ordered for LRU
        self._traces: OrderedDict[str, dict[str, dict]] = OrderedDict()
        self.spans_collected = 0
        self.spans_sampled_out = 0
        self.polls = 0

    # -- sampling ------------------------------------------------------------

    def keeps(self, trace_id: str) -> bool:
        """Whether this collector's head sample retains ``trace_id``."""
        if self.sample_1_in == 1:
            return True
        return crc32(trace_id.encode("ascii", "replace")) % self.sample_1_in == 0

    # -- collection ----------------------------------------------------------

    def poll(self) -> dict:
        """One sweep over every node's ring; returns a scrape report.

        Nodes are drained with ``trace_spans("")`` (the whole ring) and
        deduplicated by span id, so repeated polls converge instead of
        double-counting.  An unreachable node is reported, not fatal —
        its spans arrive on a later poll or never (a crashed node's ring
        died with it; the tree assembles from the survivors).
        """
        report: dict = {"nodes": {}, "spans": 0, "new_traces": 0}
        for node_id, address in self.targets():
            try:
                mgmt = self.management_factory(address)
                try:
                    spans = mgmt.trace_spans("")
                finally:
                    _close_quietly(mgmt)
            except Exception as exc:
                report["nodes"][node_id] = {
                    "reachable": False, "error": f"{exc}",
                }
                continue
            added = self._ingest(node_id, spans)
            report["nodes"][node_id] = {
                "reachable": True, "spans": len(spans), "added": added,
            }
            report["spans"] += added
        with self._lock:
            self.polls += 1
            report["traces"] = len(self._traces)
        return report

    def ingest(self, node_id: str, spans: list[dict]) -> int:
        """Feed span dicts directly (router-side spans live in-process)."""
        return self._ingest(node_id, spans)

    def _ingest(self, node_id: str, spans: list[dict]) -> int:
        added = 0
        with self._lock:
            for span in spans:
                trace_id = str(span.get("trace_id", ""))
                if not trace_id:
                    continue
                if not self.keeps(trace_id):
                    self.spans_sampled_out += 1
                    continue
                bucket = self._traces.get(trace_id)
                if bucket is None:
                    bucket = self._traces[trace_id] = {}
                    while len(self._traces) > self.capacity:
                        self._traces.popitem(last=False)
                    if trace_id not in self._traces:
                        continue  # the new trace itself was the eviction
                span_id = str(span.get("span_id", ""))
                if span_id in bucket:
                    continue
                tagged = dict(span)
                tagged.setdefault("node", node_id)
                bucket[span_id] = tagged
                added += 1
                self.spans_collected += 1
        return added

    # -- assembly ------------------------------------------------------------

    def trace_ids(self) -> list[str]:
        """Retained trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def spans_of(self, trace_id: str) -> list[dict]:
        with self._lock:
            bucket = self._traces.get(trace_id)
            return [dict(span) for span in bucket.values()] if bucket else []

    def nodes_of(self, trace_id: str) -> list[str]:
        """Distinct node ids that contributed spans to one trace."""
        seen: dict[str, None] = {}
        for span in self.spans_of(trace_id):
            seen.setdefault(str(span.get("node", "")), None)
        return list(seen)

    def tree(self, trace_id: str, extra_spans: list[dict] | None = None):
        """The assembled cross-node tree (optionally + caller-side spans)."""
        return merge_trees(self.spans_of(trace_id), extra_spans or [])

    def assemble(
        self, trace_id: str, extra_spans: list[dict] | None = None
    ) -> dict:
        """Everything about one trace: spans, tree, critical path, nodes."""
        spans = self.spans_of(trace_id)
        tree = merge_trees(spans, extra_spans or [])
        return {
            "trace_id": trace_id,
            "nodes": self.nodes_of(trace_id),
            "spans": spans,
            "tree": tree,
            "critical_path": critical_path(tree),
        }


def _close_quietly(client) -> None:
    close = getattr(client, "close", None)
    if close is not None:
        try:
            close()
        except Exception:
            pass
