"""Unified observability: metrics, tracing, exporters, and memory.

See :mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`, and
:mod:`repro.obs.export` for the three original pillars;
:mod:`repro.obs.flight` (the always-on flight recorder / black box),
:mod:`repro.obs.profiler` (continuous stack sampling) and
:mod:`repro.obs.regress` (the benchmark-regression sentry) extend them
with memory of what happened and how fast it used to be.
``docs/OPERATIONS.md`` has the operator-facing metric catalogue,
trace-header format and the postmortem runbook.
"""

from repro.obs.aggregate import (
    ClusterMetricsExporter,
    MetricsAggregator,
    merge_snapshots,
    rollup,
    snapshot_to_prometheus,
)
from repro.obs.collect import ClusterTraceCollector, critical_path, stage_of
from repro.obs.flight import (
    BLACKBOX_FILE,
    FLIGHT_FORMAT,
    FlightRecorder,
    load_blackbox,
)
from repro.obs.slo import (
    SloMonitor,
    SloTarget,
    default_slo_targets,
    load_slo_config,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.regress import metric
from repro.obs.export import (
    MetricsExporter,
    SlowOpLog,
    merge_trees,
    to_json,
    to_prometheus,
    trace_payload,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    build_tree,
    child_span,
    current_span,
    extract,
    format_tree,
    maybe_span,
    span_names,
)

__all__ = [
    "BLACKBOX_FILE",
    "ClusterMetricsExporter",
    "ClusterTraceCollector",
    "DEFAULT_BUCKETS",
    "FLIGHT_FORMAT",
    "FlightRecorder",
    "SIZE_BUCKETS",
    "MetricError",
    "MetricFamily",
    "MetricsAggregator",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_SPAN",
    "SloMonitor",
    "SloTarget",
    "SamplingProfiler",
    "SlowOpLog",
    "Span",
    "SpanContext",
    "Tracer",
    "build_tree",
    "child_span",
    "critical_path",
    "current_span",
    "default_slo_targets",
    "extract",
    "format_tree",
    "load_blackbox",
    "load_slo_config",
    "maybe_span",
    "merge_snapshots",
    "merge_trees",
    "metric",
    "rollup",
    "snapshot_to_prometheus",
    "span_names",
    "stage_of",
    "to_json",
    "to_prometheus",
    "trace_payload",
]
