"""Unified observability: metrics registry, cross-RPC tracing, exporters.

See :mod:`repro.obs.metrics`, :mod:`repro.obs.tracing`, and
:mod:`repro.obs.export` for the three pillars; ``docs/OPERATIONS.md``
has the operator-facing metric catalogue and trace-header format.
"""

from repro.obs.export import (
    MetricsExporter,
    SlowOpLog,
    merge_trees,
    to_json,
    to_prometheus,
    trace_payload,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    SIZE_BUCKETS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    build_tree,
    child_span,
    current_span,
    extract,
    format_tree,
    maybe_span,
    span_names,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "SIZE_BUCKETS",
    "MetricError",
    "MetricFamily",
    "MetricsExporter",
    "MetricsRegistry",
    "NULL_SPAN",
    "SlowOpLog",
    "Span",
    "SpanContext",
    "Tracer",
    "build_tree",
    "child_span",
    "current_span",
    "extract",
    "format_tree",
    "maybe_span",
    "merge_trees",
    "span_names",
    "to_json",
    "to_prometheus",
    "trace_payload",
]
