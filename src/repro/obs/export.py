"""Exporters: Prometheus text, JSON snapshots, the slow-op log, and HTTP.

Everything here reads the registry/tracer and formats; nothing mutates.
The HTTP server is stdlib-only (``http.server``) so a node can expose
``/metrics`` without any new dependency.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer, build_tree, format_tree


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames, labelvalues, extra=()) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(f'{name}="{_escape_label_value(str(value))}"' for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Histograms expose the standard cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``; the terminal bucket is ``le="+Inf"``.
    """
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for series in family.series():
            if family.kind == "histogram":
                for bound, count in series.bucket_counts():
                    labels = _format_labels(
                        family.labelnames,
                        series.labels,
                        extra=(("le", _format_value(bound)),),
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _format_labels(family.labelnames, series.labels)
                lines.append(f"{family.name}_sum{labels} {_format_value(series.sum)}")
                lines.append(f"{family.name}_count{labels} {series.count}")
            else:
                labels = _format_labels(family.labelnames, series.labels)
                lines.append(
                    f"{family.name}{labels} {_format_value(series.value)}"
                )
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry, indent: int | None = None) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


class SlowOpLog:
    """A bounded ring of the slowest-recent spans: ops over ``threshold``.

    Tracers ``offer()`` every finished span; only those at least
    ``threshold_seconds`` long are kept.  ``entries()`` returns the
    retained spans newest-last as plain dicts, ready for JSON or the
    shell's ``slowops`` command.
    """

    def __init__(self, threshold_seconds: float = 0.1, capacity: int = 256) -> None:
        if threshold_seconds < 0:
            raise ValueError("slow-op threshold must be >= 0")
        if capacity < 1:
            raise ValueError("slow-op capacity counts from 1")
        self.threshold_seconds = threshold_seconds
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.offered = 0
        self.retained = 0

    def offer(self, span: Span) -> bool:
        duration = span.duration()
        with self._lock:
            self.offered += 1
            if duration < self.threshold_seconds:
                return False
            self.retained += 1
            self._entries.append(span.to_dict())
            return True

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def format(self, limit: int = 20) -> str:
        entries = self.entries()[-limit:]
        if not entries:
            return (
                f"(no operations over {self.threshold_seconds * 1000:.0f} ms; "
                f"{self.offered} observed)"
            )
        lines = [f"{'duration':>12}  {'span':<32} attrs"]
        for entry in reversed(entries):  # slowest-recent first
            attrs = entry.get("attrs") or {}
            extra = " ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            lines.append(
                f"{entry['duration'] * 1000:10.3f}ms  {entry['name']:<32} {extra}"
            )
        return "\n".join(lines)


def trace_payload(tracer: Tracer, trace_id: str | None = None) -> list[dict]:
    """Span dicts for one trace (or the latest), for management export."""
    if trace_id is None:
        trace_id = tracer.last_trace_id()
    if trace_id is None:
        return []
    return [span.to_dict() for span in tracer.finished_spans(trace_id)]


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter: MetricsExporter = self.server.exporter  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = to_prometheus(exporter.registry).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = to_json(exporter.registry, indent=2).encode()
            content_type = "application/json"
        elif path == "/trace.json" and exporter.tracer is not None:
            body = json.dumps(trace_payload(exporter.tracer)).encode()
            content_type = "application/json"
        elif path == "/trace" and exporter.tracer is not None:
            trace_id = exporter.tracer.last_trace_id()
            tree = exporter.tracer.tree(trace_id) if trace_id else None
            body = (format_tree(tree) + "\n").encode()
            content_type = "text/plain; charset=utf-8"
        elif path == "/slowops.json" and exporter.slow_log is not None:
            body = json.dumps(exporter.slow_log.entries()).encode()
            content_type = "application/json"
        elif path == "/profile" and exporter.profiler is not None:
            body = (exporter.profiler.collapsed() + "\n").encode()
            content_type = "text/plain; charset=utf-8"
        elif path == "/profile.json" and exporter.profiler is not None:
            body = json.dumps(exporter.profiler.snapshot()).encode()
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: object) -> None:
        pass  # keep scrapes out of stderr


class MetricsExporter:
    """A background HTTP endpoint serving the registry and tracer.

    Routes: ``/metrics`` (Prometheus text), ``/metrics.json``,
    ``/trace`` (latest trace rendered), ``/trace.json`` (span dicts),
    ``/slowops.json``, ``/profile`` (collapsed flame stacks, when a
    profiler is attached) and ``/profile.json``.  Binds ``host:port``
    (port 0 picks a free port — read it back from :attr:`port`).

    The lifecycle is deterministic and reusable: the socket is bound at
    construction (so the port is known before :meth:`start`),
    :meth:`stop` joins the server thread and closes the socket — leaking
    neither — and a stopped exporter can :meth:`start` again, rebinding
    the *same* port it served before.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Tracer | None = None,
        slow_log: SlowOpLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        profiler=None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.slow_log = slow_log
        self.profiler = profiler
        self._requested = (host, port)
        self._server: ThreadingHTTPServer | None = self._bind((host, port))
        self._bound = self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    def _bind(self, address: tuple[str, int]) -> ThreadingHTTPServer:
        server = ThreadingHTTPServer(address, _MetricsHandler)
        server.daemon_threads = True
        server.exporter = self  # type: ignore[attr-defined]
        return server

    @property
    def host(self) -> str:
        return self._bound[0]

    @property
    def port(self) -> int:
        return self._bound[1]

    def start(self) -> "MetricsExporter":
        if self._thread is not None:
            return self
        if self._server is None:
            # Restart after stop(): rebind the port we served before, so
            # scrape configs pointing at this exporter stay valid.
            self._server = self._bind(self._bound)
            self._bound = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving: join the thread, close the socket (idempotent).

        Safe whether or not :meth:`start` ever ran; after it returns no
        exporter thread is alive and the port is released.
        """
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._server is not None:
            self._server.server_close()
            self._server = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def merge_trees(*span_dict_lists) -> dict | None:
    """Merge span dicts from several processes into one trace tree.

    The smoke test's workhorse: client-side spans plus the server's
    management-exported spans share the propagated trace id, so their
    union builds the full client → fsync tree.
    """
    merged: list[dict] = []
    seen: set[str] = set()
    for spans in span_dict_lists:
        for span in spans:
            if span["span_id"] in seen:
                continue
            seen.add(span["span_id"])
            merged.append(span)
    return build_tree(merged)
