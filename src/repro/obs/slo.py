"""SLO targets and multi-window burn-rate alerts over cluster metrics.

The paper promises a service, not a process: "a name server" that
answers enquiries fast and accepts updates.  This module states those
promises as declarative :class:`SloTarget` objects — p99 latency bounds,
an error-rate ceiling, follower-staleness and write-availability bounds
— and evaluates them against the aggregated per-replica snapshots the
:class:`~repro.obs.aggregate.MetricsAggregator` produces.

Evaluation is the SRE-book burn-rate scheme: every target defines an
error budget (``1 - objective``); each :meth:`SloMonitor.observe` call
appends a cumulative ``(good, total)`` sample per target, and
:meth:`SloMonitor.evaluate` computes the *burn rate* — the fraction of
events that were bad over a sliding window, divided by the budget — over
both a fast and a slow window.  An alert fires only when **both**
windows burn hotter than the target's threshold (fast-only is noise,
slow-only is stale news), and clears when either cools off.  Alert
transitions are recorded as flight-recorder events (``slo_burn_alert`` /
``slo_burn_clear``), so a postmortem timeline shows when the service
level actually broke, not just when a process died.

Targets load from JSON (``docs/FORMATS.md`` §"SLO config") or default
to :func:`default_slo_targets`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.sim.clock import Clock, WallClock

__all__ = [
    "SloMonitor",
    "SloTarget",
    "default_slo_targets",
    "load_slo_config",
]

#: the three ways a target counts good events against its objective
TARGET_KINDS = ("latency", "error_ratio", "gauge_max")


@dataclass
class SloTarget:
    """One declarative service-level objective.

    ``kind`` selects the counting rule:

    * ``"latency"`` — of the observations in histogram ``metric``
      (filtered to series whose labels include ``labels``), the fraction
      completing within ``threshold_s`` must be ≥ ``objective``;
    * ``"error_ratio"`` — of the events counted by ``total_metrics``
      (summed), those counted by ``bad_metric`` must stay below
      ``1 - objective``;
    * ``"gauge_max"`` — the max of gauge ``metric`` across matching
      series must be ≤ ``bound`` for at least ``objective`` of scrape
      samples (a time-slice SLO: each observe() is one sample).
    """

    name: str
    kind: str
    objective: float
    metric: str = ""
    threshold_s: float = 0.0
    labels: dict = field(default_factory=dict)
    bad_metric: str = ""
    total_metrics: tuple[str, ...] = ()
    bound: float = 0.0
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    burn_threshold: float = 6.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TARGET_KINDS:
            raise ValueError(
                f"SLO {self.name!r}: unknown kind {self.kind!r} "
                f"(one of {TARGET_KINDS})"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: objective must be in (0, 1)"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"SLO {self.name!r}: need 0 < fast_window_s <= slow_window_s"
            )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    # -- counting -------------------------------------------------------------

    def _matching(self, snapshot: dict) -> list[dict]:
        family = snapshot.get(self.metric)
        if family is None:
            return []
        wanted = self.labels.items()
        return [
            series
            for series in family["series"]
            if all(
                (series.get("labels") or {}).get(k) == v for k, v in wanted
            )
        ]

    def count(self, snapshot: dict) -> tuple[float, float]:
        """Cumulative ``(good, total)`` events under this target.

        ``snapshot`` is a merged per-replica snapshot (see
        :func:`repro.obs.aggregate.merge_snapshots`); plain single-node
        registry snapshots work too.
        """
        if self.kind == "latency":
            good = total = 0.0
            for series in self._matching(snapshot):
                total += float(series.get("count", 0))
                good += _cum_at(
                    series.get("buckets") or [], self.threshold_s
                )
            return good, total
        if self.kind == "error_ratio":
            bad = _sum_values(snapshot, self.bad_metric)
            total = sum(
                _sum_values(snapshot, name) for name in self.total_metrics
            )
            return max(0.0, total - bad), total
        # gauge_max: one sample per observe() call
        values = [
            float(series.get("value", 0.0))
            for series in self._matching(snapshot)
        ]
        worst = max(values) if values else 0.0
        return (1.0, 1.0) if worst <= self.bound else (0.0, 1.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "metric": self.metric,
            "threshold_s": self.threshold_s,
            "labels": dict(self.labels),
            "bad_metric": self.bad_metric,
            "total_metrics": list(self.total_metrics),
            "bound": self.bound,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_threshold": self.burn_threshold,
            "description": self.description,
        }


def _sum_values(snapshot: dict, name: str) -> float:
    family = snapshot.get(name)
    if family is None:
        return 0.0
    return sum(
        float(series.get("value", 0.0)) for series in family["series"]
    )


def _cum_at(buckets: list, bound: float) -> float:
    best = 0.0
    for b, count in buckets:
        if float(b) <= bound:
            best = float(count)
        else:
            break
    return best


def default_slo_targets() -> list[SloTarget]:
    """The stock targets, over the established metric catalogue."""
    return [
        SloTarget(
            name="update_latency",
            kind="latency",
            objective=0.99,
            metric="db_update_seconds",
            threshold_s=0.25,
            description="p99 of acked updates within 250 ms",
        ),
        SloTarget(
            name="enquire_latency",
            kind="latency",
            objective=0.99,
            metric="rpc_server_method_seconds",
            labels={"method": "lookup"},
            threshold_s=0.1,
            description="p99 of served lookups within 100 ms",
        ),
        SloTarget(
            name="error_rate",
            kind="error_ratio",
            objective=0.999,
            bad_metric="db_updates_rejected_total",
            total_metrics=("db_updates_total", "db_updates_rejected_total"),
            description="rejected updates below 0.1% of all updates",
        ),
        SloTarget(
            name="follower_staleness",
            kind="gauge_max",
            objective=0.99,
            metric="replication_staleness_lag",
            bound=64.0,
            description="no follower serves more than 64 updates behind",
        ),
        SloTarget(
            name="write_availability",
            kind="gauge_max",
            objective=0.999,
            metric="db_health_state",
            bound=0.5,
            description="no replica degraded below read-write health",
        ),
    ]


_TARGET_FIELDS = {
    "name", "kind", "objective", "metric", "threshold_s", "labels",
    "bad_metric", "total_metrics", "bound", "fast_window_s",
    "slow_window_s", "burn_threshold", "description",
}


def load_slo_config(data) -> list[SloTarget]:
    """Parse an SLO config (JSON text/bytes, or the parsed dict).

    Schema (``docs/FORMATS.md``): ``{"slos": [{target fields...}]}``.
    Raises ``ValueError`` on unknown fields or invalid targets, so a
    typo fails the boot instead of silently monitoring nothing.
    """
    if isinstance(data, (bytes, bytearray)):
        data = data.decode("utf-8")
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict) or not isinstance(data.get("slos"), list):
        raise ValueError('SLO config must be {"slos": [...]}')
    targets = []
    for raw in data["slos"]:
        if not isinstance(raw, dict):
            raise ValueError(f"SLO entry must be an object, got {raw!r}")
        unknown = set(raw) - _TARGET_FIELDS
        if unknown:
            raise ValueError(
                f"SLO {raw.get('name', '?')!r}: unknown fields {sorted(unknown)}"
            )
        raw = dict(raw)
        if "total_metrics" in raw:
            raw["total_metrics"] = tuple(raw["total_metrics"])
        targets.append(SloTarget(**raw))
    return targets


class SloMonitor:
    """Sliding-window burn-rate evaluation over aggregated snapshots.

    Feed it one merged per-replica snapshot per scrape tick
    (:meth:`observe`); ask it where the service stands
    (:meth:`evaluate` / :meth:`status`).  Samples older than the longest
    slow window (plus slack) are discarded.  Thread-safe: the
    coordinator's poll loop observes while ``shell health`` evaluates.
    """

    def __init__(
        self,
        targets: list[SloTarget] | None = None,
        clock: Clock | None = None,
        flight=None,
    ) -> None:
        self.targets = list(targets) if targets is not None else default_slo_targets()
        names = [t.name for t in self.targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO target names in {names}")
        self.clock = clock if clock is not None else WallClock()
        self.flight = flight
        self._lock = threading.Lock()
        horizon = max(
            (t.slow_window_s for t in self.targets), default=300.0
        )
        self._horizon = horizon * 1.5
        #: (time, {target name: (good, total)}) — cumulative counts
        self._samples: deque[tuple[float, dict]] = deque()
        self._alerting: dict[str, bool] = {t.name: False for t in self.targets}

    # -- feeding --------------------------------------------------------------

    def observe(self, snapshot: dict, now: float | None = None) -> dict:
        """Append one scrape's cumulative counts; returns the sample."""
        if now is None:
            now = self.clock.now()
        counts = {
            target.name: target.count(snapshot) for target in self.targets
        }
        with self._lock:
            # gauge_max samples accumulate: each tick adds one trial.
            prior = self._samples[-1][1] if self._samples else {}
            stamped: dict = {}
            for target in self.targets:
                good, total = counts[target.name]
                if target.kind == "gauge_max":
                    pg, pt = prior.get(target.name, (0.0, 0.0))
                    good, total = pg + good, pt + total
                stamped[target.name] = (good, total)
            self._samples.append((now, stamped))
            cutoff = now - self._horizon
            while len(self._samples) > 1 and self._samples[0][0] < cutoff:
                self._samples.popleft()
        return {"time": now, "counts": stamped}

    # -- evaluation -----------------------------------------------------------

    def _window_burn(
        self, target: SloTarget, window_s: float, now: float
    ) -> float:
        """Bad fraction over the window, divided by the error budget."""
        with self._lock:
            samples = list(self._samples)
        if len(samples) < 2:
            return 0.0
        newest_time, newest = samples[-1]
        oldest = None
        for time, counts in samples:
            if time >= now - window_s:
                oldest = counts
                break
        if oldest is None or oldest is newest:
            oldest = samples[0][1]
        g1, t1 = oldest.get(target.name, (0.0, 0.0))
        g2, t2 = newest.get(target.name, (0.0, 0.0))
        delta_total = t2 - t1
        if delta_total <= 0:
            return 0.0
        delta_bad = max(0.0, (t2 - g2) - (t1 - g1))
        return (delta_bad / delta_total) / target.budget

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Per-target burn status; records flight events on transitions."""
        if now is None:
            now = self.clock.now()
        statuses = []
        for target in self.targets:
            fast = self._window_burn(target, target.fast_window_s, now)
            slow = self._window_burn(target, target.slow_window_s, now)
            alerting = (
                fast >= target.burn_threshold
                and slow >= target.burn_threshold
            )
            with self._lock:
                was = self._alerting[target.name]
                self._alerting[target.name] = alerting
            if self.flight is not None and alerting != was:
                self.flight.record(
                    "slo_burn_alert" if alerting else "slo_burn_clear",
                    target=target.name,
                    burn_fast=round(fast, 3),
                    burn_slow=round(slow, 3),
                    objective=target.objective,
                    threshold=target.burn_threshold,
                )
            statuses.append(
                {
                    "name": target.name,
                    "kind": target.kind,
                    "objective": target.objective,
                    "burn_fast": fast,
                    "burn_slow": slow,
                    "burn_threshold": target.burn_threshold,
                    "alerting": alerting,
                    "description": target.description,
                }
            )
        return statuses

    def status(self, now: float | None = None) -> dict:
        """The JSON-able summary served over RPC and HTTP."""
        statuses = self.evaluate(now)
        with self._lock:
            samples = len(self._samples)
        return {
            "targets": statuses,
            "alerting": [s["name"] for s in statuses if s["alerting"]],
            "samples": samples,
        }

    def format(self) -> str:
        """Operator rendering for ``shell health`` / ``top --cluster``."""
        lines = [
            f"{'SLO':<22} {'objective':>10} {'burn fast':>10} "
            f"{'burn slow':>10}  state"
        ]
        for status in self.evaluate():
            state = "ALERT" if status["alerting"] else "ok"
            lines.append(
                f"{status['name']:<22} {status['objective'] * 100:>9.2f}% "
                f"{status['burn_fast']:>10.2f} {status['burn_slow']:>10.2f}"
                f"  {state}"
            )
        return "\n".join(lines)
