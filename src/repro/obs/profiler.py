"""Continuous profiling: thread-stack sampling with flame-stack output.

The paper's numbers came from one-off measurement campaigns; a long-
running server wants the same breakdown *continuously*.  This module is
an opt-in sampling profiler built purely on the stdlib: a background
thread periodically snapshots every thread's stack via
``sys._current_frames()`` and aggregates identical stacks into counts.
No ``sys.setprofile`` hook is installed, so the profiled code runs at
full speed — the only cost is the sampler thread's own work, bounded by
the sampling interval.

Output is the *collapsed flame-stack* format (``root;child;leaf N`` per
line) that flamegraph tooling consumes directly; it is exposed on the
:class:`~repro.obs.export.MetricsExporter` at ``/profile`` (text) and
``/profile.json`` (structured), through the ``profile`` management RPC,
and through the shell's ``profile`` command.

Profiling is wall-clock by nature (samples are taken in real time), so
this module deliberately does *not* take the package's injectable
clock for scheduling; tests drive :meth:`SamplingProfiler.sample_once`
directly for determinism.
"""

from __future__ import annotations

import os
import sys
import threading
import time


class SamplingProfiler:
    """Aggregating thread-stack sampler.

    ``interval_seconds`` is the sampling period of the background thread
    (started with :meth:`start`); :meth:`sample_for` instead samples
    inline for a bounded burst, which is what the management RPC uses.
    ``max_depth`` truncates pathological stacks; ``max_stacks`` bounds
    the aggregation table (further distinct stacks are folded into a
    ``<overflow>`` bucket rather than growing without limit).
    """

    def __init__(
        self,
        interval_seconds: float = 0.005,
        max_depth: int = 64,
        max_stacks: int = 10_000,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("sampling interval must be positive")
        if max_depth < 1 or max_stacks < 1:
            raise ValueError("max_depth and max_stacks count from 1")
        self.interval_seconds = interval_seconds
        self.max_depth = max_depth
        self.max_stacks = max_stacks
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Start the background sampler (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="obs-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background sampler deterministically (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _loop(self) -> None:
        ident = threading.get_ident()
        while not self._stop.wait(self.interval_seconds):
            self.sample_once(exclude_ident=ident)

    # -- sampling ------------------------------------------------------------

    def sample_once(self, exclude_ident: int | None = None) -> int:
        """Take one sample of every live thread; returns stacks recorded."""
        frames = sys._current_frames()  # noqa: SLF001 - the documented API
        stacks: list[tuple[str, ...]] = []
        for ident, frame in frames.items():
            if ident == exclude_ident:
                continue
            stack: list[str] = []
            while frame is not None and len(stack) < self.max_depth:
                code = frame.f_code
                stack.append(
                    f"{os.path.basename(code.co_filename)}:{code.co_name}"
                )
                frame = frame.f_back
            if stack:
                stacks.append(tuple(reversed(stack)))  # root first
        with self._lock:
            self.samples += 1
            for stack in stacks:
                if (
                    stack not in self._counts
                    and len(self._counts) >= self.max_stacks
                ):
                    stack = ("<overflow>",)
                self._counts[stack] = self._counts.get(stack, 0) + 1
        return len(stacks)

    def sample_for(
        self, seconds: float, interval_seconds: float | None = None
    ) -> int:
        """Sample inline for a bounded burst; returns samples taken.

        Used by the ``profile`` management RPC: the RPC handler thread
        sits in this loop (and is excluded from its own samples) while
        every other thread keeps doing real work.
        """
        if seconds <= 0:
            raise ValueError("sampling burst must be positive")
        interval = (
            self.interval_seconds if interval_seconds is None else interval_seconds
        )
        ident = threading.get_ident()
        deadline = time.monotonic() + seconds
        taken = 0
        while True:
            self.sample_once(exclude_ident=ident)
            taken += 1
            if time.monotonic() >= deadline:
                return taken
            time.sleep(interval)

    # -- output --------------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self.samples = 0

    def stack_counts(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Flame-stack collapsed format: ``frame;frame;frame count``.

        Hottest stacks first; feed to any flamegraph renderer.
        """
        counts = self.stack_counts()
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines)

    def snapshot(self) -> dict:
        """A JSON-able summary for ``/profile.json``."""
        counts = self.stack_counts()
        return {
            "samples": self.samples,
            "running": self.running,
            "interval_seconds": self.interval_seconds,
            "distinct_stacks": len(counts),
            "stacks": {
                ";".join(stack): count for stack, count in counts.items()
            },
        }
