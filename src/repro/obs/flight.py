"""The flight recorder: an always-on black box of structural events.

Metrics aggregate and traces sample; neither remembers *what happened,
in order* when a node dies.  The flight recorder fills that gap: a
thread-safe, bounded ring of structured events fed from the existing
instrumentation points — commit-pipeline fsyncs, log-tail repairs, RPC
retries, circuit-breaker flips, health-state transitions, fault
injections, checkpoint switches — cheap enough to leave on in
production (one lock, one dict append, no I/O).

When something goes wrong the ring is *dumped*: a versioned JSON
document (``format: "repro-flight-v1"``) written next to the spare-dir
emergency snapshot on degradation, or to the data directory on SIGTERM
(see :mod:`repro.nameserver.serve`).  ``tools/postmortem.py``
reconstructs a merged timeline from the dump plus exported trace spans
and the slow-op log.

Event schema (one JSON object per event)::

    {"seq": 17,                  # monotonically increasing, never reused
     "time": 12.875,             # the recorder's clock (SimClock or wall)
     "kind": "health_transition",
     "thread": "Thread-3",
     "fields": {...}}            # kind-specific, JSON-scalar values

``docs/FORMATS.md`` documents the dump envelope; the established kinds
are listed there too.
"""

from __future__ import annotations

import json
import threading
from collections import deque

from repro.sim.clock import Clock, WallClock

#: the dump envelope's ``format`` tag; bump on incompatible change
FLIGHT_FORMAT = "repro-flight-v1"

#: default dump file name, written next to the emergency snapshot
BLACKBOX_FILE = "blackbox.json"


def _scalar(value: object) -> object:
    """Coerce one field value to a JSON scalar (events must always dump)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class FlightRecorder:
    """A bounded, thread-safe ring of structured events.

    ``capacity`` bounds memory; once full, the oldest events are dropped
    (and counted in :attr:`dropped` so a dump is honest about what it no
    longer holds).  ``clock`` follows the package-wide rule: inject a
    :class:`~repro.sim.clock.SimClock` and event times are modelled
    seconds, matching metrics and traces from the same node.
    """

    def __init__(self, clock: Clock | None = None, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("flight-recorder capacity counts from 1")
        self.clock = clock if clock is not None else WallClock()
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, **fields: object) -> dict:
        """Append one event; returns the recorded dict (already stamped)."""
        payload = {name: _scalar(value) for name, value in fields.items()}
        time = self.clock.now()
        thread = threading.current_thread().name
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "time": time,
                "kind": kind,
                "thread": thread,
                "fields": payload,
            }
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            self._events.append(event)
        return event

    # -- reading -------------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Events ever recorded (≥ ``len(snapshot())`` once the ring wraps)."""
        with self._lock:
            return self._seq

    def snapshot(self) -> list[dict]:
        """The retained events, oldest first (copies: safe to mutate)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def events(self, kind: str | None = None) -> list[dict]:
        """Retained events, optionally filtered to one kind."""
        snap = self.snapshot()
        if kind is None:
            return snap
        return [event for event in snap if event["kind"] == kind]

    def kinds(self) -> dict[str, int]:
        """Retained event count per kind (a dump's one-line summary)."""
        counts: dict[str, int] = {}
        for event in self.snapshot():
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    # -- dumping -------------------------------------------------------------

    def dump(self) -> dict:
        """The versioned black-box document (JSON-able)."""
        with self._lock:
            events = [dict(event) for event in self._events]
            recorded = self._seq
            dropped = self.dropped
        return {
            "format": FLIGHT_FORMAT,
            "dumped_at": self.clock.now(),
            "recorded": recorded,
            "dropped": dropped,
            "events": events,
        }

    def dump_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.dump(), indent=indent, sort_keys=False)

    def dump_to(self, fs, name: str = BLACKBOX_FILE) -> str:
        """Write the black box durably into a database directory.

        ``fs`` is any :class:`~repro.storage.interface.FileSystem` —
        typically the spare directory, right after the emergency
        snapshot landed there.  The write is fsynced so the dump
        survives the power loss that usually follows the event being
        recorded.  Returns the file name written.
        """
        fs.write(name, self.dump_json().encode("utf-8"))
        fs.fsync(name)
        try:
            fs.fsync_dir()
        except Exception:  # noqa: BLE001 - dir sync is best-effort here
            pass
        return name


def load_blackbox(data: object) -> dict:
    """Parse and validate a black-box dump (bytes, str, or parsed dict).

    Raises ``ValueError`` on anything that is not a flight-recorder
    dump; forward-compatible minor additions are accepted as long as the
    ``format`` family matches.
    """
    if isinstance(data, (bytes, bytearray)):
        data = data.decode("utf-8")
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ValueError("black box must be a JSON object")
    fmt = data.get("format")
    if not isinstance(fmt, str) or not fmt.startswith("repro-flight-"):
        raise ValueError(f"not a flight-recorder dump (format={fmt!r})")
    events = data.get("events")
    if not isinstance(events, list):
        raise ValueError("black box has no event list")
    return data
