"""Cluster metrics aggregation: merge per-node scrapes into one view.

Every node exports its own :class:`~repro.obs.metrics.MetricsRegistry`
snapshot over the ``metrics`` management RPC.  This module turns a set
of those snapshots into cluster-level series:

* :func:`merge_snapshots` — relabel each node's series with its replica
  and shard ids, so per-node series coexist in one snapshot;
* :func:`rollup` — drop labels and *merge* the colliding series:
  counters and gauges sum, histograms merge bucket-by-bucket (cumulative
  counts are step functions, so the merged cumulative count at any bound
  is the sum of each series' count at that bound) and re-estimate the
  p50/p90/p99 from the merged buckets — a true cluster p99, not an
  average of per-node p99s;
* :class:`MetricsAggregator` — scrape all replicas (via the injectable
  management factory), producing ``per_replica`` / ``per_shard`` /
  ``cluster`` snapshots from one consistent sweep;
* :class:`ClusterMetricsExporter` — the coordinator's stdlib HTTP
  endpoint serving ``/cluster/metrics`` (Prometheus text) and
  ``/cluster/metrics.json`` (plus ``/cluster/slo.json`` when an SLO
  monitor is wired), with the same deterministic bind/start/stop
  lifecycle as the per-node :class:`~repro.obs.export.MetricsExporter`.

All outputs use the registry ``snapshot()`` schema, so every existing
renderer (``top``, the shell) works on them unchanged.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "ClusterMetricsExporter",
    "MetricsAggregator",
    "merge_snapshots",
    "rollup",
    "snapshot_to_prometheus",
]


def merge_snapshots(
    snapshots: dict[str, dict],
    node_labels: dict[str, dict] | None = None,
) -> dict:
    """One snapshot holding every node's series, node-labelled.

    ``snapshots`` maps node id → ``registry.snapshot()`` dict.  Each
    series gains ``{"replica": node_id}`` plus any extra labels from
    ``node_labels[node_id]`` (the aggregator adds ``shard``).  Families
    keep the kind/help of their first appearance; a node whose family
    kind disagrees (mixed versions mid-upgrade) is skipped for that
    family rather than corrupting the merge.
    """
    merged: dict[str, dict] = {}
    for node_id in sorted(snapshots):
        extra = {"replica": node_id}
        extra.update((node_labels or {}).get(node_id, {}))
        for name, family in snapshots[node_id].items():
            target = merged.get(name)
            if target is None:
                target = merged[name] = {
                    "kind": family["kind"],
                    "help": family.get("help", ""),
                    "series": [],
                }
            elif target["kind"] != family["kind"]:
                continue
            for series in family["series"]:
                entry = dict(series)
                labels = dict(series.get("labels") or {})
                labels.update(extra)
                entry["labels"] = labels
                target["series"].append(entry)
    return merged


def rollup(snapshot: dict, drop: tuple[str, ...] = ("replica",)) -> dict:
    """Merge series that collide once ``drop`` labels are removed.

    Counters and gauges sum; histograms merge cumulative buckets and
    recompute count/sum/mean and quantile estimates.  The result is
    again snapshot-schema, so it nests (roll per-replica up to
    per-shard, then to cluster).
    """
    out: dict[str, dict] = {}
    for name, family in snapshot.items():
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for series in family["series"]:
            labels = {
                k: v
                for k, v in (series.get("labels") or {}).items()
                if k not in drop
            }
            key = tuple(sorted(labels.items()))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(series)
        merged_series = []
        for key in order:
            members = groups[key]
            entry: dict = {"labels": dict(key)}
            if family["kind"] == "histogram":
                entry.update(_merge_histograms(members))
            else:
                entry["value"] = sum(
                    float(m.get("value", 0.0)) for m in members
                )
            merged_series.append(entry)
        out[name] = {
            "kind": family["kind"],
            "help": family.get("help", ""),
            "series": merged_series,
        }
    return out


def _cum_at(buckets: list, bound: float) -> float:
    """A cumulative-bucket step function's value at ``bound``."""
    best = 0.0
    for b, count in buckets:
        if float(b) <= bound:
            best = float(count)
        else:
            break
    return best


def _merge_histograms(members: list[dict]) -> dict:
    bounds: set[float] = set()
    for member in members:
        for b, _count in member.get("buckets") or []:
            bounds.add(float(b))
    ordered = sorted(bounds)
    merged = [
        [b, sum(_cum_at(m.get("buckets") or [], b) for m in members)]
        for b in ordered
    ]
    count = sum(int(m.get("count", 0)) for m in members)
    total = sum(float(m.get("sum", 0.0)) for m in members)
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "p50": quantile_from_buckets(merged, 0.50),
        "p90": quantile_from_buckets(merged, 0.90),
        "p99": quantile_from_buckets(merged, 0.99),
        "buckets": merged,
    }


def quantile_from_buckets(buckets: list, q: float) -> float:
    """Estimate a quantile from cumulative ``[bound, count]`` buckets.

    Linear interpolation within the bucket containing the rank; the
    +Inf bucket reports its lower bound (no max is carried across the
    wire).  Empty histograms report 0.0.
    """
    if not buckets:
        return 0.0
    total = float(buckets[-1][1])
    if total <= 0:
        return 0.0
    rank = q * total
    prev_bound, prev_cum = 0.0, 0.0
    for bound, cum in buckets:
        bound, cum = float(bound), float(cum)
        if cum >= rank and cum > prev_cum:
            if bound == float("inf"):
                return prev_bound
            within = (rank - prev_cum) / (cum - prev_cum)
            return prev_bound + (bound - prev_bound) * within
        prev_bound, prev_cum = bound, cum
    return prev_bound


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot-schema dict in Prometheus text format.

    The snapshot twin of :func:`repro.obs.export.to_prometheus`, used
    for merged cluster snapshots (which exist only as dicts — there is
    no cluster-wide registry object).
    """
    from repro.obs.export import _format_labels, _format_value

    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        lines.append(f"# HELP {name} {family.get('help', '')}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for series in family["series"]:
            labels = series.get("labels") or {}
            names = tuple(sorted(labels))
            values = tuple(labels[k] for k in names)
            if family["kind"] == "histogram":
                for bound, count in series.get("buckets") or []:
                    text = _format_labels(
                        names, values,
                        extra=(("le", _format_value(float(bound))),),
                    )
                    lines.append(
                        f"{name}_bucket{text} {_format_value(float(count))}"
                    )
                text = _format_labels(names, values)
                lines.append(
                    f"{name}_sum{text} "
                    f"{_format_value(float(series.get('sum', 0.0)))}"
                )
                lines.append(
                    f"{name}_count{text} {int(series.get('count', 0))}"
                )
            else:
                text = _format_labels(names, values)
                lines.append(
                    f"{name}{text} "
                    f"{_format_value(float(series.get('value', 0.0)))}"
                )
    return "\n".join(lines) + "\n"


class MetricsAggregator:
    """Scrape every replica's registry; merge into cluster rollups.

    ``targets`` is a zero-argument callable returning
    ``[(replica_id, shard_id, address), ...]`` — the coordinator derives
    it from the current map so the aggregator follows promotions and
    splits without replumbing.  ``management_factory(address)`` dials a
    node's management RPC (injectable for loopback tests).
    """

    def __init__(self, targets, management_factory) -> None:
        self.targets = targets
        self.management_factory = management_factory
        self.scrapes = 0
        self.unreachable = 0

    def scrape(self) -> dict:
        """One consistent sweep: per-replica, per-shard and cluster views.

        Returns ``{"nodes": {replica_id: {shard, address, reachable}},
        "per_replica": ..., "per_shard": ..., "cluster": ...}`` — the
        three snapshots are all derived from the *same* set of per-node
        scrapes, so their totals agree by construction (what the cluster
        smoke check asserts).
        """
        snapshots: dict[str, dict] = {}
        node_labels: dict[str, dict] = {}
        nodes: dict[str, dict] = {}
        for replica_id, shard_id, address in self.targets():
            info: dict = {"shard": shard_id, "address": address}
            try:
                mgmt = self.management_factory(address)
                try:
                    snapshots[replica_id] = mgmt.metrics()
                finally:
                    _close_quietly(mgmt)
                info["reachable"] = True
            except Exception as exc:
                info["reachable"] = False
                info["error"] = f"{exc}"
                self.unreachable += 1
            node_labels[replica_id] = {"shard": shard_id}
            nodes[replica_id] = info
        per_replica = merge_snapshots(snapshots, node_labels)
        self.scrapes += 1
        return {
            "nodes": nodes,
            "per_replica": per_replica,
            "per_shard": rollup(per_replica, drop=("replica",)),
            "cluster": rollup(per_replica, drop=("replica", "shard")),
        }

    def prometheus_text(self, scrape: dict | None = None) -> str:
        """Cluster rollup + per-shard series as one Prometheus page.

        Each family appears once; its series are the per-shard rollups
        (labelled ``shard="..."``) followed by the shard-less cluster
        total, so both "sum by shard" and the grand total scrape clean.
        """
        if scrape is None:
            scrape = self.scrape()
        combined: dict[str, dict] = {}
        for name, family in scrape["per_shard"].items():
            combined[name] = {
                "kind": family["kind"],
                "help": family.get("help", ""),
                "series": list(family["series"]),
            }
        for name, family in scrape["cluster"].items():
            combined.setdefault(
                name,
                {"kind": family["kind"], "help": family.get("help", ""),
                 "series": []},
            )["series"].extend(family["series"])
        return snapshot_to_prometheus(combined)


class _ClusterMetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs-cluster/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter: ClusterMetricsExporter = self.server.exporter  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/cluster/metrics", "/metrics", "/"):
                body = exporter.aggregator.prometheus_text().encode()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path in ("/cluster/metrics.json", "/metrics.json"):
                body = json.dumps(
                    exporter.aggregator.scrape(), sort_keys=True
                ).encode()
                content_type = "application/json"
            elif path in ("/cluster/slo.json", "/slo.json") and (
                exporter.slo_status is not None
            ):
                body = json.dumps(
                    exporter.slo_status(), sort_keys=True
                ).encode()
                content_type = "application/json"
            else:
                self.send_error(404, "unknown path")
                return
        except Exception as exc:  # noqa: BLE001 - a scrape races shutdown
            self.send_error(503, f"scrape failed: {exc!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: object) -> None:
        pass  # keep scrapes out of stderr


class ClusterMetricsExporter:
    """The coordinator's HTTP face for aggregated cluster metrics.

    Same lifecycle contract as the per-node exporter: the socket binds
    at construction (port 0 picks a free one, readable before
    :meth:`start`), :meth:`stop` joins the thread and closes the socket,
    and a stopped exporter restarts on the *same* port.
    ``slo_status`` is an optional zero-argument callable serving
    ``/cluster/slo.json``.
    """

    def __init__(
        self,
        aggregator: MetricsAggregator,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_status=None,
    ) -> None:
        self.aggregator = aggregator
        self.slo_status = slo_status
        self._server: ThreadingHTTPServer | None = self._bind((host, port))
        self._bound = self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    def _bind(self, address: tuple[str, int]) -> ThreadingHTTPServer:
        server = ThreadingHTTPServer(address, _ClusterMetricsHandler)
        server.daemon_threads = True
        server.exporter = self  # type: ignore[attr-defined]
        return server

    @property
    def host(self) -> str:
        return self._bound[0]

    @property
    def port(self) -> int:
        return self._bound[1]

    def start(self) -> "ClusterMetricsExporter":
        if self._thread is not None:
            return self
        if self._server is None:
            self._server = self._bind(self._bound)
            self._bound = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="obs-cluster-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._server is not None:
            self._server.server_close()
            self._server = None

    def __enter__(self) -> "ClusterMetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _close_quietly(client) -> None:
    close = getattr(client, "close", None)
    if close is not None:
        try:
            close()
        except Exception:
            pass
