"""The metrics registry: one home for every number the system measures.

The paper validates its design entirely through measurement — "54 msecs =
6 + 22 + 20 + 6" — and every later layer of this reproduction grew its
own counters to match (``DatabaseStats``, ``RpcClientStats``, reply-cache
and circuit-breaker tallies).  This module unifies them: a thread-safe
:class:`MetricsRegistry` holding three metric kinds,

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that goes up and down (breaker state, lag);
* :class:`Histogram` — fixed-bucket distributions with quantile
  estimates, for latencies and batch sizes;

each optionally split by a **label set** (``shard``, ``peer``, ``method``,
``durability_mode``…).  A metric *family* is registered once per name;
``labels()`` materialises one time series per label combination.

Timing helpers run on the registry's injectable
:class:`~repro.sim.clock.Clock`, so a database on a ``SimClock`` records
modelled 1987 milliseconds and a production one records wall time — the
same rule every other measurement in this package follows.

Registration is idempotent: asking for an existing name returns the
existing family (the kind and label names must match), so independent
layers can share one registry without coordination.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

from repro.sim.clock import Clock, WallClock

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in seconds: 1 ms .. 30 s plus +Inf, chosen to
#: resolve both the paper's 1987 costs (milliseconds to seconds) and
#: modern sub-millisecond hardware.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.010, 0.025,
    0.050, 0.100, 0.250, 0.500, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Buckets for small-integer size distributions (batch sizes, retries).
SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class MetricError(ValueError):
    """A metric was declared or used inconsistently."""


class _Series:
    """One time series: the value cell behind one label combination."""

    __slots__ = ("labels", "_lock")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels
        self._lock = threading.Lock()


class CounterSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class GaugeSeries(_Series):
    __slots__ = ("_value",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class HistogramSeries(_Series):
    """Fixed buckets, cumulative on export, with quantile estimates."""

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_min", "_max", "_clock")

    def __init__(
        self,
        labels: tuple[str, ...],
        bounds: tuple[float, ...],
        clock: Clock,
    ) -> None:
        super().__init__(labels)
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._min: float | None = None
        self._max: float | None = None
        self._clock = clock

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> "_HistogramTimer":
        """Context manager observing the elapsed clock time of its body."""
        return _HistogramTimer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile by linear interpolation in-bucket.

        The estimate is exact at bucket boundaries and bounded by the
        true min/max observed; an empty histogram reports 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError("quantiles live in [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else (self._max if self._max is not None else lower)
                    )
                    if self._min is not None:
                        lower = max(lower, self._min) if index == 0 else lower
                    if self._max is not None:
                        upper = min(upper, self._max)
                    if upper < lower:
                        upper = lower
                    within = (rank - (cumulative - bucket_count)) / bucket_count
                    return lower + (upper - lower) * within
            return self._max if self._max is not None else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        with self._lock:
            out = []
            cumulative = 0
            for bound, count in zip(self.bounds, self._counts):
                cumulative += count
                out.append((bound, cumulative))
            out.append((float("inf"), cumulative + self._counts[-1]))
            return out


class _HistogramTimer:
    def __init__(self, series: HistogramSeries) -> None:
        self._series = series
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = self._series._clock.now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._series.observe(self._series._clock.now() - self._start)


_KIND_SERIES = {
    "counter": CounterSeries,
    "gauge": GaugeSeries,
    "histogram": HistogramSeries,
}


class MetricFamily:
    """One named metric: a kind, label names, and one series per labelling.

    An unlabelled family (no label names) proxies the value methods of
    its single series, so ``registry.counter("x").inc()`` just works.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = labelnames
        self.buckets = buckets
        self._series: dict[tuple[str, ...], _Series] = {}
        self._lock = threading.Lock()
        if not labelnames:
            self.labels()  # materialise the single series eagerly

    def labels(self, *values: object, **kwvalues: object) -> object:
        """The series for one label combination (created on first use)."""
        if kwvalues:
            if values:
                raise MetricError("labels() takes positional or keyword, not both")
            try:
                values = tuple(kwvalues[name] for name in self.labelnames)
            except KeyError as exc:
                raise MetricError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
            if len(kwvalues) != len(self.labelnames):
                raise MetricError(f"{self.name}: unexpected labels {kwvalues!r}")
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise MetricError(
                f"{self.name} declares labels {self.labelnames!r}, got {key!r}"
            )
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if self.kind == "histogram":
                    series = HistogramSeries(key, self.buckets, self.registry.clock)
                else:
                    series = _KIND_SERIES[self.kind](key)
                self._series[key] = series
            return series

    def series(self) -> list[_Series]:
        with self._lock:
            return [self._series[key] for key in sorted(self._series)]

    # -- unlabelled conveniences ---------------------------------------------

    def _single(self) -> object:
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled by {self.labelnames!r}; call labels()"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._single().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._single().dec(amount)

    def set(self, value: float) -> None:
        self._single().set(value)

    def observe(self, value: float) -> None:
        self._single().observe(value)

    def time(self):
        return self._single().time()

    @property
    def value(self) -> float:
        return self._single().value


class MetricsRegistry:
    """A namespace of metric families, exportable as one snapshot.

    ``clock`` drives the timing helpers (histogram ``time()`` contexts);
    inject a :class:`~repro.sim.clock.SimClock` and every timed section
    reports modelled time, exactly like the rest of the package.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- declaration ---------------------------------------------------------

    def _declare(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames!r}"
                    )
                return existing
            family = MetricFamily(self, name, help, kind, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "counter", tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._declare(name, help, "gauge", tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        if not buckets:
            raise MetricError("a histogram needs at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise MetricError("histogram bucket bounds must be distinct")
        family = self._declare(name, help, "histogram", tuple(labelnames), bounds)
        if family.buckets != bounds:
            raise MetricError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets!r}"
            )
        return family

    # -- introspection -------------------------------------------------------

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> dict[str, dict]:
        """A JSON-able dump of every family and series.

        Counters and gauges report ``value``; histograms report
        ``count``/``sum``/``mean``, cumulative ``buckets`` and the p50 /
        p90 / p99 estimates operators actually want at a glance.
        """
        out: dict[str, dict] = {}
        for family in self.families():
            series_dump = []
            for series in family.series():
                entry: dict[str, object] = {
                    "labels": dict(zip(family.labelnames, series.labels)),
                }
                if family.kind == "histogram":
                    entry.update(
                        count=series.count,
                        sum=series.sum,
                        mean=series.mean(),
                        p50=series.quantile(0.50),
                        p90=series.quantile(0.90),
                        p99=series.quantile(0.99),
                        buckets=[
                            [bound, count]
                            for bound, count in series.bucket_counts()
                        ],
                    )
                else:
                    entry["value"] = series.value
                series_dump.append(entry)
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series_dump,
            }
        return out
