"""repro — a reproduction of Birrell, Jones & Wobber (SOSP 1987),
"A Simple and Efficient Implementation for Small Databases".

The package implements the paper's technique in full: a main-memory
database kept durable by a redo log and periodic checkpoints, a pickle
package for typed serialisation, a shared/update/exclusive lock, an RPC
package with generated stubs, the worked name-server example with
replication, the rival techniques of the paper's section 2 as baselines,
and a simulation substrate (disk, file system, clock, failure injection)
that regenerates the paper's 1987 measurements on modern hardware.

Quickstart::

    from repro import Database, LocalFS, OperationRegistry

    ops = OperationRegistry()

    @ops.operation("deposit")
    def deposit(root, account, amount):
        root[account] = root.get(account, 0) + amount

    db = Database(LocalFS("/tmp/bank"), initial=dict, operations=ops)
    db.update("deposit", "alice", 100)    # durable on return
    print(db.enquire(lambda root: root["alice"]))
    db.checkpoint()

See README.md for the architecture tour and DESIGN.md for the paper
mapping; the subpackages are importable directly for everything not
re-exported here.
"""

from repro.concurrency import LockMode, SUELock
from repro.core import (
    AnyOf,
    CheckpointPolicy,
    CommitPolicy,
    Database,
    DatabaseError,
    EveryNUpdates,
    GroupCommitDaemon,
    LogSizeThreshold,
    Never,
    OperationRegistry,
    Periodic,
    PreconditionFailed,
    RecoveryError,
    nightly,
    operation,
)
from repro.nameserver import (
    NAMESERVER_INTERFACE,
    NameExists,
    NameNotFound,
    NameServer,
    RemoteNameServer,
    Replica,
    ReplicaGroup,
    ResilientReplicaGroup,
    restore_replica,
)
from repro.obs import MetricsExporter, MetricsRegistry, SlowOpLog, Tracer
from repro.pickles import TypeRegistry, pickle_read, pickle_write, pickleable
from repro.rpc import (
    CallMaybeExecuted,
    EventLoopServer,
    FaultyTransport,
    Interface,
    LoopbackTransport,
    NetworkFaultInjector,
    RetryPolicy,
    RpcServer,
    TcpServerThread,
    TcpTransport,
    connect,
)
from repro.sim import MICROVAX_II, SimClock, WallClock
from repro.storage import LocalFS, SimFS

__version__ = "1.0.0"

__all__ = [
    "AnyOf",
    "CallMaybeExecuted",
    "CheckpointPolicy",
    "CommitPolicy",
    "Database",
    "DatabaseError",
    "EveryNUpdates",
    "EventLoopServer",
    "FaultyTransport",
    "GroupCommitDaemon",
    "Interface",
    "LocalFS",
    "LockMode",
    "LogSizeThreshold",
    "LoopbackTransport",
    "MICROVAX_II",
    "MetricsExporter",
    "MetricsRegistry",
    "NAMESERVER_INTERFACE",
    "NameExists",
    "NameNotFound",
    "NameServer",
    "NetworkFaultInjector",
    "Never",
    "OperationRegistry",
    "Periodic",
    "PreconditionFailed",
    "RecoveryError",
    "RemoteNameServer",
    "Replica",
    "ReplicaGroup",
    "ResilientReplicaGroup",
    "RetryPolicy",
    "RpcServer",
    "SUELock",
    "SimClock",
    "SimFS",
    "SlowOpLog",
    "TcpServerThread",
    "TcpTransport",
    "Tracer",
    "TypeRegistry",
    "WallClock",
    "__version__",
    "connect",
    "nightly",
    "operation",
    "pickle_read",
    "pickle_write",
    "pickleable",
    "restore_replica",
]
