"""The name server: the paper's worked example application.

A general-purpose name-to-value mapping where names are string paths and
values are arbitrary (pickleable) objects, stored as a tree of hash
tables in virtual memory, made durable by the database core, served over
RPC, and replicated across servers with last-writer-wins reconciliation.
"""

from repro.nameserver.browse import glob_entries, parse_pattern
from repro.nameserver.client import RemoteNameServer
from repro.nameserver.management import (
    MANAGEMENT_INTERFACE,
    ManagementService,
    RemoteManagement,
)
from repro.nameserver.errors import (
    BadPath,
    NameExists,
    NameNotFound,
    NameServerError,
    SnapshotGone,
    format_path,
)
from repro.nameserver.recover import (
    RecoveryFailed,
    RecoveryPlan,
    RecoveryReport,
    ReplicaRecoverer,
    abandon_recovery,
)
from repro.nameserver.operations import (
    NAMESERVER_OPS,
    new_root,
    updates_since,
)
from repro.nameserver.replication import (
    AllPeersUnavailable,
    CircuitBreaker,
    PeerUnavailable,
    ReadResult,
    Replica,
    ReplicaGroup,
    ResilientReplicaGroup,
    SyncReport,
    diverged_leaf_paths,
    repair_divergence,
    restore_replica,
)
from repro.nameserver.server import (
    NAMESERVER_INTERFACE,
    NameServer,
    nameserver_interface,
)
from repro.nameserver.tree import (
    Leaf,
    Node,
    count_live,
    find_node,
    iter_leaves,
    list_directory,
    live_leaf,
    parse_path,
    subtree_entries,
)

__all__ = [
    "AllPeersUnavailable",
    "BadPath",
    "CircuitBreaker",
    "Leaf",
    "MANAGEMENT_INTERFACE",
    "ManagementService",
    "NAMESERVER_INTERFACE",
    "NAMESERVER_OPS",
    "NameExists",
    "NameNotFound",
    "NameServer",
    "NameServerError",
    "Node",
    "PeerUnavailable",
    "ReadResult",
    "RecoveryFailed",
    "RecoveryPlan",
    "RecoveryReport",
    "RemoteManagement",
    "RemoteNameServer",
    "Replica",
    "ReplicaRecoverer",
    "ResilientReplicaGroup",
    "SnapshotGone",
    "SyncReport",
    "abandon_recovery",
    "diverged_leaf_paths",
    "repair_divergence",
    "glob_entries",
    "parse_pattern",
    "ReplicaGroup",
    "count_live",
    "find_node",
    "format_path",
    "iter_leaves",
    "list_directory",
    "live_leaf",
    "nameserver_interface",
    "new_root",
    "parse_path",
    "restore_replica",
    "subtree_entries",
    "updates_since",
]
