"""Client-side access to a remote name server.

``RemoteNameServer`` wraps the generated RPC proxy with the same Python
API as a local :class:`~repro.nameserver.server.NameServer` — paths may be
``"a/b/c"`` strings or tuples, values are arbitrary pickleable objects —
so application code cannot tell a local instance from a remote one (the
paper's clients likewise saw only strongly typed procedures).
"""

from __future__ import annotations

from repro.nameserver.server import NAMESERVER_INTERFACE
from repro.nameserver.tree import parse_path
from repro.rpc import RpcClient, Transport


class RemoteNameServer:
    """A typed facade over the generated name server stubs.

    Keyword options (``retry``, ``clock``, ``client_id``, ``rng``) pass
    through to :class:`~repro.rpc.client.RpcClient`, so a remote name
    server gets retransmission with at-most-once semantics by default.
    """

    def __init__(
        self,
        transport: Transport,
        interface=None,
        **client_options: object,
    ) -> None:
        # ``interface`` lets wire-compatible extensions (the cluster's
        # shard interface) reuse this facade with extra methods/errors.
        self._client = RpcClient(
            interface if interface is not None else NAMESERVER_INTERFACE,
            transport,
            **client_options,
        )
        self._proxy = self._client.proxy()

    # -- enquiries -----------------------------------------------------------

    def lookup(self, path) -> object:
        return self._proxy.lookup(list(parse_path(path)))

    def exists(self, path) -> bool:
        return self._proxy.exists(list(parse_path(path)))

    def list_dir(self, path=()) -> list[str]:
        parsed = list(parse_path(path)) if path else []
        return self._proxy.list_dir(parsed)

    def read_subtree(self, path=()) -> list:
        parsed = list(parse_path(path)) if path else []
        return self._proxy.read_subtree(parsed)

    def count(self) -> int:
        return self._proxy.count()

    def glob(self, pattern) -> list:
        from repro.nameserver.browse import parse_pattern

        return self._proxy.glob(list(parse_pattern(pattern)))

    # -- updates -------------------------------------------------------------

    def bind(self, path, value, exclusive: bool = False) -> None:
        self._proxy.bind(list(parse_path(path)), value, bool(exclusive))

    def unbind(self, path) -> None:
        self._proxy.unbind(list(parse_path(path)))

    def unbind_subtree(self, path) -> None:
        self._proxy.unbind_subtree(list(parse_path(path)))

    def write_subtree(self, path, entries) -> None:
        canonical = [(list(parse_path(rel)), value) for rel, value in entries]
        self._proxy.write_subtree(list(parse_path(path)), canonical)

    # -- replication hooks ------------------------------------------------------

    def summary(self) -> dict[str, int]:
        return self._proxy.summary()

    def updates_since(self, vector: dict[str, int]) -> list:
        return self._proxy.updates_since(dict(vector))

    def apply_remote(self, records: list) -> int:
        return self._proxy.apply_remote(records)

    def export_state(self) -> list:
        return self._proxy.export_state()

    # -- replica repair hooks ----------------------------------------------------

    def snapshot_manifest(self) -> dict:
        return self._proxy.snapshot_manifest()

    def snapshot_chunk(self, version: int, offset: int, length: int) -> dict:
        return self._proxy.snapshot_chunk(
            int(version), int(offset), int(length)
        )

    def tree_digest(self, path=()) -> dict:
        parsed = list(parse_path(path)) if path else []
        return self._proxy.tree_digest(parsed)

    def read_leaves(self, path=()) -> list:
        parsed = list(parse_path(path)) if path else []
        return self._proxy.read_leaves(parsed)

    def repair_leaves(self, leaves: list) -> int:
        canonical = [
            (list(parse_path(path)), value, int(lamport), str(origin),
             bool(deleted))
            for path, value, lamport, origin, deleted in leaves
        ]
        return self._proxy.repair_leaves(canonical)

    # -- sharding hooks ----------------------------------------------------------

    def components(self) -> list[str]:
        return self._proxy.components()

    def purge_components(self, components: list[str]) -> int:
        return self._proxy.purge_components([str(c) for c in components])

    # -- lifecycle ----------------------------------------------------------------

    @property
    def calls_made(self) -> int:
        return self._client.calls_made

    @property
    def stats(self):
        """The underlying :class:`~repro.rpc.retry.RpcClientStats`."""
        return self._client.stats

    def close(self) -> None:
        self._client.close()
