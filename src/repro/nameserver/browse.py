"""Browsing enquiries: pattern enumeration over the name tree.

The paper's name server "provides a variety of enquiry and browsing
operations"; this module is that variety.  Patterns are paths whose
components may be:

* a literal string — matches that component exactly;
* ``*`` — matches exactly one component, any name;
* ``**`` — matches zero or more components;
* a string containing ``*`` — shell-style matching within one component
  (``printer*`` matches ``printer3``).

Matching walks the tree of hash tables directly, so enumeration is a pure
virtual-memory enquiry like everything else — the point the paper makes
about caching applies: the enumeration the paper says custom caches could
accelerate is here served by the resident structure itself.
"""

from __future__ import annotations

import fnmatch
from typing import Iterator

from repro.nameserver.tree import Node, Path, parse_path


def parse_pattern(pattern: object) -> Path:
    """Like :func:`parse_path` but admits wildcard components."""
    if isinstance(pattern, str):
        parts: tuple[str, ...] = tuple(pattern.split("/")) if pattern else ()
    elif isinstance(pattern, (tuple, list)):
        parts = tuple(pattern)
    else:
        parts = ()
    # Wildcards aside, the same shape rules as paths apply.
    checked = parse_path([part if part != "**" else "x" for part in parts])
    del checked
    return parts


def glob_entries(root: Node, pattern: Path) -> list[tuple[Path, object]]:
    """All live ``(path, value)`` pairs matching ``pattern``, sorted.

    Deduplicated: overlapping ``**`` expansions match a path only once.
    """
    unique: dict[Path, object] = {}
    for path, value in _walk(root, tuple(pattern), ()):
        unique.setdefault(path, value)
    return sorted(unique.items())


def _walk(
    node: Node, pattern: tuple[str, ...], prefix: Path
) -> Iterator[tuple[Path, object]]:
    if not pattern:
        if node.leaf is not None and not node.leaf.deleted:
            yield prefix, node.leaf.value
        return
    head, rest = pattern[0], pattern[1:]
    if head == "**":
        # Zero components…
        yield from _walk(node, rest, prefix)
        # …or one-or-more: descend everywhere, keeping the ``**``.
        for name in sorted(node.children):
            yield from _walk(node.children[name], pattern, prefix + (name,))
        return
    for name in sorted(node.children):
        if _component_matches(name, head):
            yield from _walk(node.children[name], rest, prefix + (name,))


def _component_matches(name: str, component: str) -> bool:
    if component == "*":
        return True
    if "*" in component or "?" in component or "[" in component:
        return fnmatch.fnmatchcase(name, component)
    return name == component
