"""The name server as a deployable process.

    python -m repro.nameserver.serve /var/lib/names --port 9999 \
        --replica-id east --peer west-host:9999 --sync-interval 30 \
        --checkpoint-updates 1000

Wires together everything a production instance needs: the database on a
real directory, the data and management RPC interfaces on one TCP
listener, optional peers with a background anti-entropy loop, and an
optional checkpoint policy.  ``build_node`` does all the assembly and is
what the tests (and embedders) call; ``main`` adds argument parsing and
blocks until interrupted.
"""

from __future__ import annotations

import argparse
import signal
import threading
import sys
from dataclasses import dataclass, field

from repro.core.daemon import CheckpointDaemon
from repro.core.version import read_current_version
from repro.core.policy import AnyOf, CheckpointPolicy, EveryNUpdates, LogSizeThreshold
from repro.nameserver.client import RemoteNameServer
from repro.nameserver.management import MANAGEMENT_INTERFACE, ManagementService
from repro.nameserver.replication import Replica
from repro.nameserver.server import NAMESERVER_INTERFACE
from repro.obs import (
    FlightRecorder,
    MetricsExporter,
    MetricsRegistry,
    SamplingProfiler,
    SlowOpLog,
    Tracer,
)
from repro.rpc import EventLoopServer, RpcServer, TcpServerThread, TcpTransport

#: the two TCP front ends a node can serve through
SERVER_MODELS = ("eventloop", "threaded")
from repro.storage.localfs import LocalFS


@dataclass
class NodeOptions:
    """Everything configurable about one server process."""

    directory: str
    host: str = "127.0.0.1"
    port: int = 0
    replica_id: str = "primary"
    peers: list[str] = field(default_factory=list)  # "host:port" strings
    sync_interval: float = 30.0
    checkpoint_updates: int | None = None
    checkpoint_log_bytes: int | None = None
    #: bind an HTTP /metrics endpoint here (None disables; 0 = any port)
    metrics_port: int | None = None
    #: spans at least this long land in the slow-op log
    slow_op_threshold: float = 0.1
    #: spare directory (ideally on a different device) that receives an
    #: emergency checkpoint if the primary device degrades to read-only
    spare_directory: str | None = None
    #: extra attempts a faulted log append/fsync gets before degrading
    fault_retries: int = 2
    #: opt-in continuous profiling: sampling period in seconds for the
    #: background stack sampler (None disables; flame stacks then serve
    #: at ``/profile`` and through the ``profile`` management RPC)
    profile_interval: float | None = None
    #: TCP front end: "eventloop" (selector loop + dispatch pool, the
    #: default) or "threaded" (one thread per connection)
    server_model: str = "eventloop"
    #: when True, a node that is (or becomes) degraded automatically runs
    #: staged replica recovery against its peers: snapshot shipping,
    #: log-tail catch-up, atomic cutover (see repro.nameserver.recover)
    auto_recover: bool = False
    #: run as one shard of a cluster: enforce range ownership, answer
    #: WrongShard redirects, accept shard-map pushes and mirror commands
    #: (see repro.cluster).  The id must appear in the shard map.
    shard_id: str | None = None
    #: OS path (not a name inside the data directory) of the cluster's
    #: persisted shard map, read once at boot; later epochs arrive as
    #: install_shard_map pushes from the coordinator
    shard_map_file: str | None = None
    #: commit protocol for the database: "group" (default), "immediate"
    #: or "relaxed" (see repro.core.commit)
    durability: str = "group"
    #: model this many seconds of device commit latency on every fsync
    #: (wall-clock; see repro.storage.latency.ThrottledFS) — benchmark
    #: fidelity for commit-bound scaling runs, None disables
    commit_latency: float | None = None
    #: head-based trace sampling: record 1 in N new traces (1 = all).
    #: Sampled-out roots propagate no trace header, so a cluster of
    #: nodes at the same N samples coherently — a trace is either
    #: recorded on every node it touches or on none.
    trace_sample: int = 1


class Node:
    """One running name server process: replica + listener + daemons."""

    def __init__(self, options: NodeOptions) -> None:
        self.options = options
        # One registry and tracer span the whole node: storage, database,
        # replication and RPC all record into the same export.
        self.registry = MetricsRegistry()
        self.slow_log = SlowOpLog(threshold_seconds=options.slow_op_threshold)
        self.tracer = Tracer(
            slow_log=self.slow_log, sample_1_in=options.trace_sample
        )
        self.flight = FlightRecorder()
        self.profiler: SamplingProfiler | None = None
        if options.profile_interval is not None:
            self.profiler = SamplingProfiler(
                interval_seconds=options.profile_interval
            ).start()
        spare_fs = (
            LocalFS(options.spare_directory)
            if options.spare_directory is not None
            else None
        )
        # Kept for recovery: the recoverer rebuilds the replica on the
        # same filesystem with the same database options after cutover.
        self._fs = LocalFS(options.directory, registry=self.registry)
        if options.commit_latency is not None:
            from repro.storage.latency import ThrottledFS

            self._fs = ThrottledFS(
                self._fs, fsync_seconds=options.commit_latency
            )
        self._db_options = dict(
            registry=self.registry,
            tracer=self.tracer,
            spare_fs=spare_fs,
            fault_retries=options.fault_retries,
            flight=self.flight,
            durability=options.durability,
        )
        self._recover_lock = threading.Lock()
        # A directory with no committed version is a replacement device
        # (or an interrupted recovery's staged files): gossip alone can
        # never rebuild it once peers have checkpointed past their
        # history, so it is a recovery trigger alongside bad health.
        was_blank = read_current_version(self._fs) is None
        self.replica = Replica(
            self._fs, options.replica_id, **self._db_options
        )
        self._peer_transports: list[TcpTransport] = []
        self._connect_peers()

        self.rpc = RpcServer(registry=self.registry, tracer=self.tracer)
        self.shard = None
        if options.shard_id is not None:
            self._export_data_plane(self.replica)
        else:
            self.rpc.export(NAMESERVER_INTERFACE, self.replica)
        self.management = ManagementService(
            self.replica,
            slow_log=self.slow_log,
            profiler=self.profiler,
            recover_hook=self.recover,
        )
        self.rpc.export(MANAGEMENT_INTERFACE, self.management)
        if options.server_model not in SERVER_MODELS:
            raise ValueError(
                f"unknown server model {options.server_model!r}; "
                f"one of {SERVER_MODELS}"
            )
        if options.server_model == "threaded":
            self.listener = TcpServerThread(
                self.rpc, host=options.host, port=options.port,
                flight=self.flight,
            ).start()
        else:
            self.listener = EventLoopServer(
                self.rpc, host=options.host, port=options.port,
                flight=self.flight,
            ).start()

        self.metrics_exporter: MetricsExporter | None = None
        if options.metrics_port is not None:
            self.metrics_exporter = MetricsExporter(
                self.registry,
                tracer=self.tracer,
                slow_log=self.slow_log,
                host=options.host,
                port=options.metrics_port,
                profiler=self.profiler,
            ).start()

        self._stop = threading.Event()
        self._sync_thread: threading.Thread | None = None
        if options.peers:
            self._sync_thread = threading.Thread(
                target=self._sync_loop, name="anti-entropy", daemon=True
            )
            self._sync_thread.start()

        self.checkpoint_daemon: CheckpointDaemon | None = None
        policy = _build_policy(options)
        if policy is not None:
            self.checkpoint_daemon = CheckpointDaemon(
                self.replica.db, policy, poll_interval=0.25
            ).start()

        if (
            options.auto_recover
            and (self.replica.db.health != "healthy" or was_blank)
            and self.replica.peers
        ):
            # The node came up degraded — or fresh on an empty directory —
            # with peers reachable: repair now rather than serving stale
            # (or no) data until an operator notices.  Failure is
            # survivable — the node keeps serving and the sync loop
            # retries.
            try:
                self.recover()
            except Exception:
                pass  # recorded by the recoverer's flight events/metrics

    @property
    def port(self) -> int:
        return self.listener.port

    def _connect_peers(self) -> None:
        """Connect to peers; ones that are down are retried by the loop.

        A node must come up before its peers do (whole-cluster cold
        starts), so connection failures here are recorded, not fatal.
        """
        self.unreachable_peers: list[str] = []
        for address in self.options.peers:
            if not self._try_connect(address):
                self.unreachable_peers.append(address)

    def _try_connect(self, address: str) -> bool:
        host, _, port_text = address.rpartition(":")
        try:
            transport = TcpTransport(host, int(port_text))
        except Exception:
            return False
        self._peer_transports.append(transport)
        self.replica.add_peer(RemoteNameServer(transport))
        return True

    def _sync_loop(self) -> None:
        while not self._stop.wait(self.options.sync_interval):
            # Retry peers that were unreachable at startup.
            for address in list(self.unreachable_peers):
                if self._try_connect(address):
                    self.unreachable_peers.remove(address)
            if (
                self.options.auto_recover
                and self.replica.db.health != "healthy"
                and self.replica.peers
            ):
                try:
                    self.recover()
                except Exception:
                    pass  # degraded but alive; retried next round
                continue
            self.replica.propagate()
            for peer in list(self.replica.peers):
                try:
                    self.replica.sync_from(peer)
                except Exception:
                    continue  # peer down; next round will retry

    def recover(self) -> dict:
        """Rebuild this node's replica from its peers; returns the report.

        The staged recoverer (snapshot shipping → log-tail catch-up →
        atomic cutover) runs against the already-connected peer proxies.
        The old database is closed first — cutover produces a *new*
        replica on the same directory — and the node's RPC exports and
        checkpoint daemon are re-wired to the rebuilt instance, so
        clients never see a different address, only a brief refusal
        window while stages run.  If recovery fails the original
        (degraded) database is reopened and keeps serving enquiries.
        """
        from dataclasses import asdict

        from repro.nameserver.recover import ReplicaRecoverer

        with self._recover_lock:
            if not self.replica.peers:
                raise RuntimeError(
                    "replica recovery needs at least one connected peer"
                )
            peers = list(self.replica.peers)
            monitor = self.replica.db.health_monitor
            try:
                self.replica.close()
            except Exception:
                pass  # a faulted device may refuse even the close
            if self.checkpoint_daemon is not None:
                self.checkpoint_daemon.stop()
                self.checkpoint_daemon = None
            recoverer = ReplicaRecoverer(
                self._fs,
                self.options.replica_id,
                peers,
                registry=self.registry,
                flight=self.flight,
                health_monitor=monitor,
                db_options=self._db_options,
            )
            try:
                replica = recoverer.run()
            except Exception:
                # The staged files are invisible to restarts; reopen the
                # old committed state so enquiries keep flowing.
                self._rewire(
                    Replica(
                        self._fs,
                        self.options.replica_id,
                        **self._db_options,
                    ),
                    peers,
                )
                raise
            self._rewire(replica, peers)
            return asdict(recoverer.report)

    def _export_data_plane(self, replica: Replica) -> None:
        """Export the replica as a cluster shard (ownership-enforcing)."""
        from repro.cluster.shard import SHARD_INTERFACE, ShardService
        from repro.cluster.shardmap import ShardMap

        shard_map = _read_shard_map_file(self.options.shard_map_file)
        if shard_map is None:
            raise ValueError(
                f"shard {self.options.shard_id!r} needs --shard-map "
                f"pointing at the coordinator's published map"
            )
        assert isinstance(shard_map, ShardMap)
        # A replicated shard propagates each acked update to its peers
        # synchronously: one node loss then cannot lose an acked write
        # (the ack waited for the push whenever a follower was up).
        self.shard = ShardService(
            replica,
            self.options.shard_id,
            shard_map,
            replica_id=self.options.replica_id,
            eager_propagate=(
                self._eager_propagate if self.options.peers else False
            ),
        )
        self.rpc.export(SHARD_INTERFACE, self.shard)

    def _eager_propagate(self) -> None:
        """The shard's post-ack push: reconnect stragglers, then gossip.

        Peers that were down when this node booted (whole-cluster cold
        starts spawn every replica at once) would otherwise stay
        unconnected until the anti-entropy loop's next tick — far too
        late for the "acked update exists on two nodes" property.
        """
        for address in list(self.unreachable_peers):
            if self._try_connect(address):
                self.unreachable_peers.remove(address)
        self.replica.propagate()

    def _rewire(self, replica: Replica, peers: list[object]) -> None:
        """Point the node's moving parts at a freshly opened replica."""
        for peer in peers:
            replica.add_peer(peer)
        self.replica = replica
        if self.shard is not None:
            # Keep the shard's live map (it may be epochs past the boot
            # file); only the wrapped server changes.
            self.shard.server = replica
        else:
            self.rpc.export(NAMESERVER_INTERFACE, replica)
        self.management.server = replica
        policy = _build_policy(self.options)
        if policy is not None:
            self.checkpoint_daemon = CheckpointDaemon(
                replica.db, policy, poll_interval=0.25
            ).start()

    def sync_now(self) -> int:
        """One synchronous gossip round (used by tests and operators)."""
        moved = self.replica.propagate()
        for peer in list(self.replica.peers):
            try:
                moved += self.replica.sync_from(peer)
            except Exception:
                continue
        return moved

    def dump_blackbox(self) -> str:
        """Write the flight ring as a black box; returns its location.

        Preferred target is the spare directory (next to any emergency
        snapshot); without one the data directory itself receives the
        dump.  Called on SIGTERM so an externally-killed node still
        leaves its final moments behind for ``tools/postmortem.py``.
        """
        target = (
            self.options.spare_directory
            if self.options.spare_directory is not None
            else self.options.directory
        )
        name = self.flight.dump_to(LocalFS(target))
        return f"{target}/{name}"

    def shutdown(self) -> None:
        self._stop.set()
        if self.metrics_exporter is not None:
            self.metrics_exporter.stop()
        if self.profiler is not None:
            self.profiler.stop()
        if self.checkpoint_daemon is not None:
            self.checkpoint_daemon.stop()
        if self._sync_thread is not None:
            self._sync_thread.join(5)
        self.listener.stop()
        for transport in self._peer_transports:
            transport.close()
        self.replica.close()

    def __enter__(self) -> "Node":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def _read_shard_map_file(path: str | None):
    """Load a published shard map from an ordinary OS path (or None)."""
    if path is None:
        return None
    import json

    from repro.cluster.shardmap import ShardMap

    with open(path, "r", encoding="ascii") as handle:
        return ShardMap.from_wire(json.load(handle))


def _build_policy(options: NodeOptions) -> CheckpointPolicy | None:
    policies: list[CheckpointPolicy] = []
    if options.checkpoint_updates:
        policies.append(EveryNUpdates(options.checkpoint_updates))
    if options.checkpoint_log_bytes:
        policies.append(LogSizeThreshold(options.checkpoint_log_bytes))
    if not policies:
        return None
    return policies[0] if len(policies) == 1 else AnyOf(*policies)


def build_node(options: NodeOptions) -> Node:
    """Assemble a running node from options (the testable entry point)."""
    return Node(options)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.nameserver.serve",
        description="Run a (optionally replicated) name server.",
    )
    parser.add_argument("directory", help="database directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--replica-id", default="primary")
    parser.add_argument(
        "--peer", action="append", default=[], metavar="HOST:PORT",
        help="peer replica to gossip with (repeatable)",
    )
    parser.add_argument("--sync-interval", type=float, default=30.0)
    parser.add_argument(
        "--checkpoint-updates", type=int, default=None,
        help="checkpoint after this many updates",
    )
    parser.add_argument(
        "--checkpoint-log-bytes", type=int, default=None,
        help="checkpoint when the log exceeds this many bytes",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve Prometheus /metrics on this port (0 = any free port)",
    )
    parser.add_argument(
        "--slow-op-threshold", type=float, default=0.1,
        help="spans at least this many seconds land in the slow-op log",
    )
    parser.add_argument(
        "--spare-dir", default=None, metavar="DIRECTORY",
        help="spare directory (on a different device) for an emergency "
        "checkpoint if the primary device degrades to read-only",
    )
    parser.add_argument(
        "--fault-retries", type=int, default=2,
        help="extra attempts a faulted log append/fsync gets before the "
        "database degrades",
    )
    parser.add_argument(
        "--profile-interval", type=float, default=None, metavar="SECONDS",
        help="enable continuous profiling with this sampling period "
        "(flame stacks at /profile and via the profile management RPC)",
    )
    parser.add_argument(
        "--server-model", choices=SERVER_MODELS, default="eventloop",
        help="TCP front end: the event-driven selector loop (default) or "
        "the legacy thread-per-connection server",
    )
    parser.add_argument(
        "--shard-id", default=None,
        help="serve as this shard of a cluster (requires --shard-map); "
        "keyed requests outside the owned ranges answer WrongShard",
    )
    parser.add_argument(
        "--shard-map", default=None, metavar="PATH",
        help="path to the coordinator's published shard map (read at "
        "boot; later epochs arrive over RPC)",
    )
    parser.add_argument(
        "--durability", choices=["group", "immediate", "relaxed"],
        default="group", help="commit protocol (see repro.core.commit)",
    )
    parser.add_argument(
        "--commit-latency", type=float, default=None, metavar="SECONDS",
        help="model this much device commit latency on every fsync "
        "(wall-clock sleep; benchmark fidelity for commit-bound runs)",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="head-sample 1 in N traces (1 = trace everything); "
        "sampled-out requests propagate no trace header, so a cluster "
        "at the same N samples coherently",
    )
    parser.add_argument(
        "--auto-recover", action="store_true",
        help="when degraded or booting on an empty directory, "
        "automatically rebuild this replica from a peer (snapshot "
        "shipping + log-tail catch-up + atomic cutover)",
    )
    args = parser.parse_args(argv)

    node = build_node(
        NodeOptions(
            directory=args.directory,
            host=args.host,
            port=args.port,
            replica_id=args.replica_id,
            peers=args.peer,
            sync_interval=args.sync_interval,
            checkpoint_updates=args.checkpoint_updates,
            checkpoint_log_bytes=args.checkpoint_log_bytes,
            metrics_port=args.metrics_port,
            slow_op_threshold=args.slow_op_threshold,
            spare_directory=args.spare_dir,
            fault_retries=args.fault_retries,
            profile_interval=args.profile_interval,
            server_model=args.server_model,
            auto_recover=args.auto_recover,
            shard_id=args.shard_id,
            shard_map_file=args.shard_map,
            durability=args.durability,
            commit_latency=args.commit_latency,
            trace_sample=args.trace_sample,
        )
    )
    extra = ""
    if node.metrics_exporter is not None:
        extra = f", metrics on :{node.metrics_exporter.port}"
    print(
        f"name server {args.replica_id!r} on {node.listener.host}:{node.port}, "
        f"{node.replica.count()} names recovered{extra}",
        flush=True,
    )
    # SIGTERM (the orchestrator's kill) unblocks the wait below so the
    # node can dump its black box and shut down cleanly, same as Ctrl-C.
    terminated = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: terminated.set())
    try:
        terminated.wait()  # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        try:
            where = node.dump_blackbox()
            print(f"flight recorder dumped to {where}", flush=True)
        except Exception:
            pass  # dumping must never block shutdown
        node.shutdown()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via build_node()
    sys.exit(main())
