"""The name server's virtual memory structure: a tree of hash tables.

The paper:

    The virtual memory data structure for the name server's database
    consists primarily of a tree of hash tables.  The tables are indexed
    by strings, and deliver values that are further hash tables.

A :class:`Node` is one hash table (its ``children``); a :class:`Leaf`
holds a bound value plus the replication stamp — a ``(lamport, origin)``
pair — used for last-writer-wins reconciliation between replicas, and a
``deleted`` flag so removals propagate (a tombstone).  Both classes are
registered with the pickle registry at import time, so the whole tree
checkpoints and logs automatically.

Paths are tuples of non-empty strings; the convenience parser accepts
``"a/b/c"``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterator

from repro.nameserver.errors import BadPath
from repro.pickles import DEFAULT_REGISTRY, pickle_write

Path = tuple[str, ...]
Stamp = tuple[int, str]  # (lamport counter, origin replica id)


class Leaf:
    """A bound value (or its tombstone) with a replication stamp."""

    def __init__(
        self, value: object, lamport: int, origin: str, deleted: bool = False
    ) -> None:
        self.value = value
        self.lamport = lamport
        self.origin = origin
        self.deleted = deleted

    def stamp(self) -> Stamp:
        return (self.lamport, self.origin)

    def __repr__(self) -> str:
        state = "tombstone" if self.deleted else repr(self.value)
        return f"Leaf({state} @{self.lamport}:{self.origin})"


class Node:
    """One hash table of the tree; may also carry a leaf binding."""

    def __init__(self) -> None:
        self.children: dict[str, Node] = {}
        self.leaf: Leaf | None = None

    def is_empty(self) -> bool:
        return self.leaf is None and not self.children


DEFAULT_REGISTRY.register(Leaf, name="nameserver.Leaf")
DEFAULT_REGISTRY.register(Node, name="nameserver.Node")


def parse_path(path: object) -> Path:
    """Normalise a path argument to a tuple of components.

    Accepts ``"a/b/c"``, ``("a", "b", "c")`` or ``["a", "b", "c"]``.
    """
    if isinstance(path, str):
        parts: tuple[str, ...] = tuple(path.split("/")) if path else ()
    elif isinstance(path, (tuple, list)):
        parts = tuple(path)
    else:
        raise BadPath(path)
    if not parts:
        raise BadPath(path)
    for part in parts:
        if not isinstance(part, str) or not part or "/" in part:
            raise BadPath(path)
    return parts


def find_node(root: Node, path: Path) -> Node | None:
    """The node at ``path``, or None if any component is missing."""
    node = root
    for part in path:
        node = node.children.get(part)
        if node is None:
            return None
    return node


def ensure_node(root: Node, path: Path) -> Node:
    """The node at ``path``, creating intermediate tables as needed."""
    node = root
    for part in path:
        child = node.children.get(part)
        if child is None:
            child = Node()
            node.children[part] = child
        node = child
    return node


def live_leaf(root: Node, path: Path) -> Leaf | None:
    """The leaf at ``path`` if it exists and is not a tombstone."""
    node = find_node(root, path)
    if node is None or node.leaf is None or node.leaf.deleted:
        return None
    return node.leaf


def iter_leaves(
    node: Node, prefix: Path = (), include_tombstones: bool = False
) -> Iterator[tuple[Path, Leaf]]:
    """All leaves below ``node`` in sorted path order."""
    if node.leaf is not None and (include_tombstones or not node.leaf.deleted):
        yield prefix, node.leaf
    for name in sorted(node.children):
        yield from iter_leaves(
            node.children[name], prefix + (name,), include_tombstones
        )


def has_live_content(node: Node) -> bool:
    """Whether any non-tombstone leaf exists at or below ``node``."""
    if node.leaf is not None and not node.leaf.deleted:
        return True
    return any(has_live_content(child) for child in node.children.values())


def list_directory(root: Node, path: Path) -> list[str]:
    """Child names at ``path`` that lead to live content, sorted.

    Raises :class:`NotADirectory` via the caller's checks; here a missing
    node simply lists as empty (the enquiry layer decides the error).
    """
    node = find_node(root, path) if path else root
    if node is None:
        return []
    return [
        name
        for name in sorted(node.children)
        if has_live_content(node.children[name])
    ]


def subtree_entries(root: Node, path: Path) -> list[tuple[Path, object]]:
    """All live ``(relative path, value)`` pairs below ``path``."""
    node = find_node(root, path) if path else root
    if node is None:
        return []
    return [(rel, leaf.value) for rel, leaf in iter_leaves(node)]


def count_live(root: Node) -> int:
    return sum(1 for _ in iter_leaves(root))


# -- Merkle digests (anti-entropy) --------------------------------------------
#
# A node's digest commits to its own leaf (value bytes + stamp + deleted
# flag, tombstones included — a diverged *deletion* must be detectable)
# and to every child's digest keyed by name.  Two replicas whose root
# digests match therefore hold byte-identical trees; when they differ,
# comparing child digests pairwise localises the divergence in O(depth)
# exchanges without shipping any values.

#: encodes a leaf value to canonical bytes for hashing
Encoder = Callable[[object], bytes]


def default_encoder(value: object) -> bytes:
    """Canonical value bytes via the default pickle registry.

    PickleWrite is deterministic for a given value (no memo randomness,
    registry-stable class records), so every replica derives the same
    digest for the same leaf.
    """
    return pickle_write(value, DEFAULT_REGISTRY)


def leaf_digest(leaf: Leaf, encode: Encoder = default_encoder) -> bytes:
    """A digest committing to one leaf's value, stamp and tombstone flag."""
    h = hashlib.sha256()
    h.update(b"L")
    h.update(repr((leaf.lamport, leaf.origin, leaf.deleted)).encode("utf-8"))
    h.update(encode(leaf.value))
    return h.digest()


def node_digest(node: Node, encode: Encoder = default_encoder) -> bytes:
    """The Merkle digest of a whole subtree (leaf + named children)."""
    h = hashlib.sha256()
    h.update(b"N")
    if node.leaf is not None:
        h.update(leaf_digest(node.leaf, encode))
    for name in sorted(node.children):
        h.update(name.encode("utf-8"))
        h.update(node_digest(node.children[name], encode))
    return h.digest()


def digest_report(
    node: Node | None, encode: Encoder = default_encoder
) -> dict[str, object]:
    """One anti-entropy exchange unit: this node's hashes, one level deep.

    ``{"digest": hex, "leaf": hex | None, "children": {name: hex}}`` —
    enough for the peer to decide whether the divergence is in the leaf
    here, in a particular child subtree, or in a child that only one side
    has.  ``None`` (no node at this path) reports the canonical empty
    digest so both sides can compare uniformly.
    """
    if node is None:
        node = Node()
    return {
        "digest": node_digest(node, encode).hex(),
        "leaf": (
            leaf_digest(node.leaf, encode).hex()
            if node.leaf is not None
            else None
        ),
        "children": {
            name: node_digest(child, encode).hex()
            for name, child in node.children.items()
        },
    }


def prune_empty(node: Node) -> None:
    """Drop child subtrees containing neither leaves nor tombstones.

    Tombstones are retained (they must keep propagating); fully empty
    tables left by pruning are removed to bound memory.
    """
    for name in list(node.children):
        child = node.children[name]
        prune_empty(child)
        if child.is_empty():
            del node.children[name]
