"""Management interface: the paper's server administration surface.

Section 6 counts, among the "other parts of the name server",
"management interfaces to the servers".  This module is that interface:
a second RPC interface exported alongside the name service proper, giving
operators remote access to statistics, checkpoint control, replication
status and synchronisation triggers — without touching the data plane.

    manager = ManagementService(replica)
    rpc.export(MANAGEMENT_INTERFACE, manager)

Client side, :class:`RemoteManagement` wraps the generated proxy.
"""

from __future__ import annotations

from repro.nameserver.server import NameServer
from repro.obs.export import to_prometheus
from repro.rpc import (
    Bool,
    DictOf,
    Float,
    Int,
    Interface,
    Pickled,
    RpcClient,
    Str,
    Transport,
)


class ManagementService:
    """The server-side implementation, wrapping a NameServer/Replica."""

    def __init__(
        self,
        server: NameServer,
        slow_log=None,
        profiler=None,
        recover_hook=None,
    ) -> None:
        self.server = server
        self.slow_log = slow_log
        #: optional :class:`~repro.obs.profiler.SamplingProfiler`: when
        #: attached, :meth:`profile` serves on-demand flame stacks.
        self.profiler = profiler
        #: optional zero-argument callable that rebuilds this node's
        #: replica from its peers and returns a report dict; wired by the
        #: serving :class:`~repro.nameserver.serve.Node` so operators can
        #: trigger staged replica recovery over RPC.
        self.recover_hook = recover_hook

    # -- status -----------------------------------------------------------------

    def status(self) -> dict:
        """A one-call health summary."""
        db = self.server.db
        status = {
            "replica_id": self.server.replica_id,
            "version": db.version,
            "names": self.server.count(),
            "log_bytes": db.log_size(),
            "entries_since_checkpoint": db.entries_since_checkpoint,
            "clock": db.clock.now(),
            "health": db.health,
        }
        peer_status = getattr(self.server, "peer_status", None)
        if peer_status is not None:
            status["peers"] = peer_status()
        return status

    def health(self) -> dict:
        """The storage health state machine: state, cause, pending retry.

        ``state`` is ``"healthy"``, ``"degraded_read_only"`` (updates
        refused, enquiries still served; see the OPERATIONS runbook) or
        ``"failed"``.
        """
        return self.server.db.health_detail()

    def statistics(self) -> dict:
        """The full counter snapshot (enquiries, updates, timings…)."""
        return self.server.stats.snapshot()

    def lock_statistics(self) -> dict:
        return self.server.db.lock.stats.snapshot()

    def version(self) -> int:
        return self.server.db.version

    def log_bytes(self) -> int:
        return self.server.db.log_size()

    def estimated_restart_seconds(self, per_entry_seconds: float) -> float:
        """Worst-case restart estimate at a given replay cost."""
        db = self.server.db
        return 20.0 + db.entries_since_checkpoint * per_entry_seconds

    # -- control ----------------------------------------------------------------

    def force_checkpoint(self) -> int:
        """Run a checkpoint now; returns the new version number."""
        return self.server.checkpoint()

    def replication_vector(self) -> dict[str, int]:
        return self.server.summary()

    def propagate(self) -> int:
        """Push pending updates to peers (replicas only); returns count."""
        propagate = getattr(self.server, "propagate", None)
        if propagate is None:
            return 0
        return propagate()

    def is_replica(self) -> bool:
        return hasattr(self.server, "sync_from")

    def recover(self) -> dict:
        """Rebuild this node's replica from its peers; returns a report.

        Runs the staged :class:`~repro.nameserver.recover.ReplicaRecoverer`
        via the hook the serving node wired in: snapshot shipping, log-tail
        catch-up, atomic cutover.  ``{"ok": False, "error": ...}`` when no
        hook is attached (an embedded server without peers) or recovery
        failed; on success the recovery report's fields are inlined.
        """
        if self.recover_hook is None:
            return {
                "ok": False,
                "error": "recovery is not wired on this server "
                "(no peers, or not running under serve.Node)",
            }
        try:
            report = self.recover_hook()
        except Exception as exc:  # noqa: BLE001 - answer, don't kill the RPC
            return {"ok": False, "error": repr(exc)}
        return {"ok": True, **dict(report)}

    def recovery_status(self) -> dict:
        """Where replica recovery stands: stage, health, resumable state."""
        from repro.nameserver.recover import (
            RECOVERY_STAGES,
            RECOVERY_STATE_FILE,
            STAGE_CODES,
        )

        db = self.server.db
        stage = "idle"
        family = db.registry.get("recovery_stage")
        if family is not None:
            code = int(family.value)
            names = {v: k for k, v in STAGE_CODES.items()}
            stage = names.get(code, "idle")
        resumable = False
        try:
            resumable = db.fs.exists(RECOVERY_STATE_FILE)
        except Exception:  # noqa: BLE001 - a faulted fs answers "unknown"
            pass
        return {
            "health": db.health,
            "stage": stage,
            "stages": list(RECOVERY_STAGES),
            "resumable": resumable,
        }

    # -- observability ----------------------------------------------------------

    def metrics_text(self) -> str:
        """The node's full metrics registry in Prometheus text format."""
        return to_prometheus(self.server.db.registry)

    def metrics(self) -> dict:
        """The registry snapshot as a structure (counters, histograms…)."""
        return self.server.db.registry.snapshot()

    def last_trace_id(self) -> str:
        """Newest trace id in the server tracer's ring ("" when none)."""
        tracer = self.server.db.tracer
        if tracer is None:
            return ""
        return tracer.last_trace_id() or ""

    def trace_spans(self, trace_id: str) -> list:
        """Finished span dicts of one trace, for cross-process assembly.

        The caller merges these with its own client-side spans (they
        share the propagated trace id) via
        :func:`repro.obs.export.merge_trees`.  An empty ``trace_id``
        drains the *whole* ring — how the coordinator's
        :class:`~repro.obs.collect.ClusterTraceCollector` pulls every
        node's spans in one call.
        """
        tracer = self.server.db.tracer
        if tracer is None:
            return []
        wanted = trace_id if trace_id else None
        return [span.to_dict() for span in tracer.finished_spans(wanted)]

    def slow_ops(self) -> list:
        """The retained over-threshold spans, oldest first."""
        if self.slow_log is None:
            return []
        return self.slow_log.entries()

    def profile(self, seconds: float) -> str:
        """Collapsed flame stacks for operators (``""`` = no profiler).

        With a continuously-running profiler attached, ``seconds <= 0``
        returns what it has accumulated so far; a positive ``seconds``
        takes a fresh inline burst of samples before answering (also the
        only mode that works when the profiler thread is not running).
        """
        if self.profiler is None:
            return ""
        if seconds > 0:
            self.profiler.sample_for(seconds)
        return self.profiler.collapsed()

    def flight_events(self) -> list:
        """The node's retained flight-recorder events, oldest first."""
        flight = getattr(self.server.db, "flight", None)
        if flight is None:
            return []
        return flight.snapshot()


MANAGEMENT_INTERFACE = Interface("Management", version=1)
MANAGEMENT_INTERFACE.method("status", returns=Pickled())
MANAGEMENT_INTERFACE.method("health", returns=Pickled())
MANAGEMENT_INTERFACE.method("statistics", returns=Pickled())
MANAGEMENT_INTERFACE.method("lock_statistics", returns=Pickled())
MANAGEMENT_INTERFACE.method("version", returns=Int)
MANAGEMENT_INTERFACE.method("log_bytes", returns=Int)
MANAGEMENT_INTERFACE.method(
    "estimated_restart_seconds",
    params=[("per_entry_seconds", Float)],
    returns=Float,
)
MANAGEMENT_INTERFACE.method("force_checkpoint", returns=Int)
MANAGEMENT_INTERFACE.method("replication_vector", returns=DictOf(Str, Int))
MANAGEMENT_INTERFACE.method("propagate", returns=Int)
MANAGEMENT_INTERFACE.method("is_replica", returns=Bool)
MANAGEMENT_INTERFACE.method("recover", returns=Pickled())
MANAGEMENT_INTERFACE.method("recovery_status", returns=Pickled())
MANAGEMENT_INTERFACE.method("metrics_text", returns=Str)
MANAGEMENT_INTERFACE.method("metrics", returns=Pickled())
MANAGEMENT_INTERFACE.method("last_trace_id", returns=Str)
MANAGEMENT_INTERFACE.method(
    "trace_spans", params=[("trace_id", Str)], returns=Pickled()
)
MANAGEMENT_INTERFACE.method("slow_ops", returns=Pickled())
MANAGEMENT_INTERFACE.method(
    "profile", params=[("seconds", Float)], returns=Str
)
MANAGEMENT_INTERFACE.method("flight_events", returns=Pickled())


class RemoteManagement:
    """Typed client facade over the generated management stubs."""

    def __init__(self, transport: Transport) -> None:
        self._client = RpcClient(MANAGEMENT_INTERFACE, transport)
        proxy = self._client.proxy()
        # The facade is one-to-one; bind the stubs directly.
        self.status = proxy.status
        self.health = proxy.health
        self.statistics = proxy.statistics
        self.lock_statistics = proxy.lock_statistics
        self.version = proxy.version
        self.log_bytes = proxy.log_bytes
        self.estimated_restart_seconds = proxy.estimated_restart_seconds
        self.force_checkpoint = proxy.force_checkpoint
        self.replication_vector = proxy.replication_vector
        self.propagate = proxy.propagate
        self.is_replica = proxy.is_replica
        self.recover = proxy.recover
        self.recovery_status = proxy.recovery_status
        self.metrics_text = proxy.metrics_text
        self.metrics = proxy.metrics
        self.last_trace_id = proxy.last_trace_id
        self.trace_spans = proxy.trace_spans
        self.slow_ops = proxy.slow_ops
        self.profile = proxy.profile
        self.flight_events = proxy.flight_events

    def close(self) -> None:
        self._client.close()
