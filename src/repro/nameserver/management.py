"""Management interface: the paper's server administration surface.

Section 6 counts, among the "other parts of the name server",
"management interfaces to the servers".  This module is that interface:
a second RPC interface exported alongside the name service proper, giving
operators remote access to statistics, checkpoint control, replication
status and synchronisation triggers — without touching the data plane.

    manager = ManagementService(replica)
    rpc.export(MANAGEMENT_INTERFACE, manager)

Client side, :class:`RemoteManagement` wraps the generated proxy.
"""

from __future__ import annotations

from repro.nameserver.server import NameServer
from repro.rpc import (
    Bool,
    DictOf,
    Float,
    Int,
    Interface,
    Pickled,
    RpcClient,
    Str,
    Transport,
)


class ManagementService:
    """The server-side implementation, wrapping a NameServer/Replica."""

    def __init__(self, server: NameServer) -> None:
        self.server = server

    # -- status -----------------------------------------------------------------

    def status(self) -> dict:
        """A one-call health summary."""
        db = self.server.db
        return {
            "replica_id": self.server.replica_id,
            "version": db.version,
            "names": self.server.count(),
            "log_bytes": db.log_size(),
            "entries_since_checkpoint": db.entries_since_checkpoint,
            "clock": db.clock.now(),
        }

    def statistics(self) -> dict:
        """The full counter snapshot (enquiries, updates, timings…)."""
        return self.server.stats.snapshot()

    def lock_statistics(self) -> dict:
        return self.server.db.lock.stats.snapshot()

    def version(self) -> int:
        return self.server.db.version

    def log_bytes(self) -> int:
        return self.server.db.log_size()

    def estimated_restart_seconds(self, per_entry_seconds: float) -> float:
        """Worst-case restart estimate at a given replay cost."""
        db = self.server.db
        return 20.0 + db.entries_since_checkpoint * per_entry_seconds

    # -- control ----------------------------------------------------------------

    def force_checkpoint(self) -> int:
        """Run a checkpoint now; returns the new version number."""
        return self.server.checkpoint()

    def replication_vector(self) -> dict[str, int]:
        return self.server.summary()

    def propagate(self) -> int:
        """Push pending updates to peers (replicas only); returns count."""
        propagate = getattr(self.server, "propagate", None)
        if propagate is None:
            return 0
        return propagate()

    def is_replica(self) -> bool:
        return hasattr(self.server, "sync_from")


MANAGEMENT_INTERFACE = Interface("Management", version=1)
MANAGEMENT_INTERFACE.method("status", returns=Pickled())
MANAGEMENT_INTERFACE.method("statistics", returns=Pickled())
MANAGEMENT_INTERFACE.method("lock_statistics", returns=Pickled())
MANAGEMENT_INTERFACE.method("version", returns=Int)
MANAGEMENT_INTERFACE.method("log_bytes", returns=Int)
MANAGEMENT_INTERFACE.method(
    "estimated_restart_seconds",
    params=[("per_entry_seconds", Float)],
    returns=Float,
)
MANAGEMENT_INTERFACE.method("force_checkpoint", returns=Int)
MANAGEMENT_INTERFACE.method("replication_vector", returns=DictOf(Str, Int))
MANAGEMENT_INTERFACE.method("propagate", returns=Int)
MANAGEMENT_INTERFACE.method("is_replica", returns=Bool)


class RemoteManagement:
    """Typed client facade over the generated management stubs."""

    def __init__(self, transport: Transport) -> None:
        self._client = RpcClient(MANAGEMENT_INTERFACE, transport)
        proxy = self._client.proxy()
        # The facade is one-to-one; bind the stubs directly.
        self.status = proxy.status
        self.statistics = proxy.statistics
        self.lock_statistics = proxy.lock_statistics
        self.version = proxy.version
        self.log_bytes = proxy.log_bytes
        self.estimated_restart_seconds = proxy.estimated_restart_seconds
        self.force_checkpoint = proxy.force_checkpoint
        self.replication_vector = proxy.replication_vector
        self.propagate = proxy.propagate
        self.is_replica = proxy.is_replica

    def close(self) -> None:
        self._client.close()
