"""Automated replica repair: snapshot shipping + log-tail catch-up.

The paper's whole answer to a hard error is one sentence:

    We respond to a hard error on a particular name server replica by
    restoring its data from another replica.

This module is that sentence as a *staged, resumable* subsystem.  A
degraded or blank node runs a :class:`ReplicaRecoverer` against its
peers, entirely over the ordinary RPC surface:

``PLANNING``
    Ask every peer for a :meth:`~repro.nameserver.server.NameServer.\
snapshot_manifest` (checkpoint epoch, byte count, version vector,
    health) and pick the healthiest — the reachable HEALTHY peer whose
    version vector dominates.  Choose a fresh local *target version*
    number above anything on disk.

``SNAPSHOT``
    Stream the peer's checkpoint file in chunked, CRC-checked pages into
    ``checkpoint<target>``, fsyncing as it grows.  The file is written
    under a version number that no ``version``/``newversion`` file names
    yet, so by the version-file protocol's own restart rule the download
    is *invisible*: a crash at any point leaves a directory that recovers
    exactly as before (dangling numbered files are ignored and cleaned
    up).  The finished file must validate against the checkpoint
    format's checksum before the stage completes.

``LOG_TAIL``
    Create ``logfile<target>`` and append, as ordinary replayable log
    entries, first an ``ns_identity`` record (the shipped checkpoint
    carries the *peer's* replica id; the first replayed entry reclaims
    our own) and then ``ns_remote`` batches of every history record past
    the checkpoint's version vector, looping until the lag against the
    peer is at most ``cutover_lag``.

``CUTOVER``
    The atomic switch: ``newversion`` commits the target version exactly
    as a checkpoint switch would, the tidy-up deletes the damaged old
    files, and the node reopens as a normal
    :class:`~repro.nameserver.replication.Replica` — recovery replays
    the shipped checkpoint plus the staged tail, and the health monitor
    takes the ``RECOVERING → HEALTHY`` edge.

Every stage transition is persisted in ``recovery.json`` (fsynced), so a
crash mid-recovery *resumes*: a finished snapshot is not re-downloaded, a
partially fetched one continues at its durable byte offset, and a crash
after the commit point just finishes the tidy-up.  If the serving peer
checkpoints past the version being streamed, the typed
:class:`~repro.nameserver.errors.SnapshotGone` answer sends the stage
machine back to PLANNING against the peer's new checkpoint.

Observability: a ``recovery_stage`` gauge, stage-transition / bytes /
entries / retry counters, and flight-recorder events
(``recovery_stage``, ``recovery_complete``, ``recovery_failed``) that
join the node's black-box timeline.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro.core.checkpoint import CheckpointDamaged, read_checkpoint
from repro.core.log import LogScan, LogWriter
from repro.core.version import (
    NEWVERSION_FILE,
    checkpoint_name,
    commit_new_version,
    finalize_switch,
    logfile_name,
    numbered_files,
    read_current_version,
)
from repro.nameserver.errors import SnapshotGone
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.pickles import DEFAULT_REGISTRY, pickle_read, pickle_write
from repro.rpc.errors import CallMaybeExecuted, TransportError
from repro.sim.clock import Clock, WallClock
from repro.storage.interface import FileSystem

#: the stage machine, in order
PLANNING = "planning"
SNAPSHOT = "snapshot"
LOG_TAIL = "log_tail"
CUTOVER = "cutover"
DONE = "done"
RECOVERY_STAGES = (PLANNING, SNAPSHOT, LOG_TAIL, CUTOVER, DONE)

#: numeric encoding for the ``recovery_stage`` gauge (0 = idle)
STAGE_CODES = {stage: code for code, stage in enumerate(RECOVERY_STAGES, 1)}

#: the fsynced resume point; see docs/FORMATS.md
RECOVERY_STATE_FILE = "recovery.json"
RECOVERY_FORMAT = "repro-recovery-v1"

#: failures that mean "the peer, or the path to it, broke" — each stage
#: is restartable, so these are retried rather than fatal.  An ambiguous
#: CallMaybeExecuted is safe to retry throughout: every recovery RPC is
#: an enquiry or an idempotent repair.
_COMM_ERRORS = (TransportError, CallMaybeExecuted, OSError)


class RecoveryFailed(Exception):
    """Replica recovery gave up; ``stage`` says where."""

    def __init__(self, stage: str, detail: str) -> None:
        super().__init__(f"recovery failed during {stage}: {detail}")
        self.stage = stage
        self.detail = detail


@dataclass(frozen=True)
class RecoveryPlan:
    """The negotiated outcome of the PLANNING stage."""

    peer_index: int
    peer_id: str
    source_version: int
    checkpoint_bytes: int
    target_version: int


@dataclass
class RecoveryReport:
    """What one :meth:`ReplicaRecoverer.run` actually did."""

    replica_id: str
    peer_id: str = ""
    target_version: int = 0
    resumed: bool = False
    bytes_shipped: int = 0
    entries_replayed: int = 0
    catchup_rounds: int = 0
    plan_restarts: int = 0
    stages: list[str] = field(default_factory=list)


class ReplicaRecoverer:
    """Takes one degraded or blank node back to HEALTHY via its peers.

    ``peers`` is any mix of local server objects and
    :class:`~repro.nameserver.client.RemoteNameServer` proxies exposing
    the repair hooks.  ``health_monitor`` is the *old* database's monitor
    when one exists (a degraded node being repaired in place) — it is
    driven through ``begin_recovery``/``recovered`` so the node's
    metrics and black box narrate the repair; a blank bootstrap has no
    monitor and passes None.

    ``stage_observer`` is a test hook called at every stage boundary
    (and after every durable snapshot chunk) with the stage name —
    crash-injection raises from it to prove resumability.

    ``db_options`` are forwarded to the :class:`Replica` opened at
    cutover (registry, clock and flight recorder default to the
    recoverer's own).
    """

    def __init__(
        self,
        fs: FileSystem,
        replica_id: str,
        peers: list[object],
        *,
        chunk_size: int = 4096,
        cutover_lag: int = 0,
        max_catchup_rounds: int = 16,
        stage_retries: int = 2,
        batch_records: int = 256,
        keep_versions: int = 1,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        health_monitor=None,
        stage_observer=None,
        db_options: dict | None = None,
    ) -> None:
        if not peers:
            raise ValueError("replica recovery needs at least one peer")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if cutover_lag < 0:
            raise ValueError("cutover_lag cannot be negative")
        self.fs = fs
        self.replica_id = replica_id
        self.peers = list(peers)
        self.chunk_size = chunk_size
        self.cutover_lag = cutover_lag
        self.max_catchup_rounds = max_catchup_rounds
        self.stage_retries = stage_retries
        self.batch_records = batch_records
        self.keep_versions = keep_versions
        self.clock = clock if clock is not None else WallClock()
        self.registry = (
            registry if registry is not None else MetricsRegistry(clock=self.clock)
        )
        self.flight = flight
        self.health_monitor = health_monitor
        self.stage_observer = stage_observer
        self.db_options = dict(db_options) if db_options else {}
        self.pickle_registry = self.db_options.get(
            "pickle_registry", DEFAULT_REGISTRY
        )
        self.report = RecoveryReport(replica_id=replica_id)

        self._stage_gauge = self.registry.gauge(
            "recovery_stage",
            "replica recovery stage: 0 idle, 1 planning, 2 snapshot, "
            "3 log tail, 4 cutover, 5 done",
        )
        self._transitions = self.registry.counter(
            "recovery_stage_transitions_total",
            "stage entries of the replica recoverer",
            labelnames=("stage",),
        )
        self._bytes_shipped = self.registry.counter(
            "recovery_bytes_shipped_total",
            "checkpoint bytes streamed from peers during replica recovery",
        )
        self._entries_replayed = self.registry.counter(
            "recovery_entries_replayed_total",
            "history records staged into the recovery log tail",
        )
        self._chunk_retries = self.registry.counter(
            "recovery_chunk_retries_total",
            "snapshot chunks re-fetched after a transfer CRC mismatch",
        )
        self._attempts = self.registry.counter(
            "recovery_attempts_total",
            "replica recovery runs by outcome",
            labelnames=("outcome",),
        )

    # -- the public entry point -----------------------------------------------

    def run(self):
        """Execute (or resume) the stage machine; returns a live Replica.

        Raises :class:`RecoveryFailed` when a stage exhausts its retries;
        the staged files remain invisible to restarts and a later run
        resumes where this one stopped.
        """
        if self.health_monitor is not None:
            self.health_monitor.begin_recovery(source="replica_peer")
        try:
            replica = self._run_stages()
        except RecoveryFailed as exc:
            self._attempts.labels(outcome="failed").inc()
            self._stage_gauge.set(0)
            if self.health_monitor is not None:
                self.health_monitor.recovery_failed(str(exc))
            if self.flight is not None:
                self.flight.record(
                    "recovery_failed", stage=exc.stage, error=exc.detail
                )
            raise
        self._attempts.labels(outcome="ok").inc()
        if self.health_monitor is not None:
            self.health_monitor.recovered()
        if self.flight is not None:
            self.flight.record(
                "recovery_complete",
                peer=self.report.peer_id,
                version=self.report.target_version,
                bytes_shipped=self.report.bytes_shipped,
                entries_replayed=self.report.entries_replayed,
                resumed=self.report.resumed,
            )
        return replica

    # -- stage driver ----------------------------------------------------------

    def _run_stages(self):
        restarts = 0
        while True:
            try:
                plan, start = self._stage_planning()
                if start == SNAPSHOT:
                    self._stage_snapshot(plan)
                    start = LOG_TAIL
                if start == LOG_TAIL:
                    self._stage_log_tail(plan)
                return self._stage_cutover(plan)
            except SnapshotGone as exc:
                # The peer checkpointed past the version being streamed;
                # discard the partial download and renegotiate.
                restarts += 1
                self.report.plan_restarts += 1
                if restarts > self.stage_retries:
                    raise RecoveryFailed(
                        SNAPSHOT,
                        f"snapshot vanished {restarts} times: {exc}",
                    ) from exc
                self._discard_staged()
        # NOTREACHED

    def _enter_stage(self, stage: str) -> None:
        self.report.stages.append(stage)
        self._stage_gauge.set(STAGE_CODES[stage])
        self._transitions.labels(stage=stage).inc()
        if self.flight is not None:
            self.flight.record("recovery_stage", stage=stage)
        self._observe(stage)

    def _observe(self, point: str) -> None:
        if self.stage_observer is not None:
            self.stage_observer(point)

    def _retrying(self, stage: str, fn):
        """Run one peer exchange, retrying communication failures."""
        attempt = 0
        while True:
            try:
                return fn()
            except _COMM_ERRORS as exc:
                attempt += 1
                if attempt > self.stage_retries:
                    raise RecoveryFailed(
                        stage, f"peer unreachable: {exc!r}"
                    ) from exc

    # -- PLANNING --------------------------------------------------------------

    def _stage_planning(self) -> tuple[RecoveryPlan, str]:
        """Negotiate (or resume) a plan; returns it plus the stage to run next."""
        self._enter_stage(PLANNING)
        state = self._load_state()
        if state is not None:
            resumed = self._resume_plan(state)
            if resumed is not None:
                plan, start = resumed
                self.report.resumed = True
                self.report.peer_id = plan.peer_id
                self.report.target_version = plan.target_version
                return plan, start
            self._discard_staged(state)
        # A stale interrupted switch (the degraded database's, or an
        # earlier abandoned recovery's) must not block our commit point.
        self.fs.delete_if_exists(NEWVERSION_FILE)
        peer_index, manifest = self._pick_peer()
        plan = RecoveryPlan(
            peer_index=peer_index,
            peer_id=str(manifest["replica_id"]),
            source_version=int(manifest["version"]),
            checkpoint_bytes=int(manifest["checkpoint_bytes"]),
            target_version=self._next_target_version(),
        )
        self.report.peer_id = plan.peer_id
        self.report.target_version = plan.target_version
        self._save_state(SNAPSHOT, plan)
        return plan, SNAPSHOT

    def _pick_peer(self) -> tuple[int, dict]:
        """The healthiest reachable peer: HEALTHY, dominant version vector."""
        best: tuple[int, int, dict] | None = None
        errors: list[str] = []
        for index, peer in enumerate(self.peers):
            try:
                manifest = peer.snapshot_manifest()
            except (SnapshotGone, *_COMM_ERRORS) as exc:
                errors.append(f"peer {index}: {exc!r}")
                continue
            if manifest.get("health") != "healthy":
                errors.append(
                    f"peer {index} ({manifest.get('replica_id')}): "
                    f"health={manifest.get('health')!r}"
                )
                continue
            weight = sum(manifest.get("vector", {}).values())
            if best is None or weight > best[0]:
                best = (weight, index, manifest)
        if best is None:
            raise RecoveryFailed(
                PLANNING,
                f"no healthy peer answered ({'; '.join(errors) or 'none'})",
            )
        return best[1], best[2]

    def _next_target_version(self) -> int:
        """A version number no file on disk uses yet.

        Decoupled from the peer's version number: the damaged directory
        may hold stale numbered files, and colliding with one would make
        the staged download ambiguous with committed state.
        """
        existing = numbered_files(self.fs)
        return (max(existing) if existing else 0) + 1

    # -- SNAPSHOT --------------------------------------------------------------

    def _stage_snapshot(self, plan: RecoveryPlan) -> None:
        self._enter_stage(SNAPSHOT)
        name = checkpoint_name(plan.target_version)
        peer = self.peers[plan.peer_index]
        if not self.fs.exists(name):
            self.fs.create(name)
        offset = self.fs.size(name)
        if offset > plan.checkpoint_bytes:
            # Torn garbage beyond the manifest size: restart the file.
            self.fs.truncate(name, 0)
            offset = 0
        while offset < plan.checkpoint_bytes:
            want = min(self.chunk_size, plan.checkpoint_bytes - offset)
            chunk = self._fetch_chunk(peer, plan, offset, want)
            self.fs.append(name, chunk)
            self.fs.fsync(name)
            offset += len(chunk)
            self.report.bytes_shipped += len(chunk)
            self._bytes_shipped.inc(len(chunk))
            self._observe("snapshot_chunk")
        try:
            read_checkpoint(self.fs, name)
        except CheckpointDamaged as exc:
            # The transfer CRCs passed but the assembled file does not
            # validate — only a changed source file explains that.
            self.fs.truncate(name, 0)
            raise SnapshotGone(plan.source_version) from exc
        self._save_state(LOG_TAIL, plan)

    def _fetch_chunk(
        self, peer: object, plan: RecoveryPlan, offset: int, length: int
    ) -> bytes:
        attempt = 0
        while True:
            answer = self._retrying(
                SNAPSHOT,
                lambda: peer.snapshot_chunk(
                    plan.source_version, offset, length
                ),
            )
            data = answer["data"]
            if not data:
                # The file shrank under us: it was replaced.
                raise SnapshotGone(plan.source_version)
            if (zlib.crc32(data) & 0xFFFFFFFF) == answer["crc"]:
                return data
            self._chunk_retries.inc()
            attempt += 1
            if attempt > self.stage_retries:
                raise RecoveryFailed(
                    SNAPSHOT,
                    f"chunk at offset {offset} failed its CRC "
                    f"{attempt} times",
                )

    # -- LOG_TAIL --------------------------------------------------------------

    def _stage_log_tail(self, plan: RecoveryPlan) -> None:
        self._enter_stage(LOG_TAIL)
        vector = self._checkpoint_vector(plan)
        logname = logfile_name(plan.target_version)
        if not self.fs.exists(logname):
            self.fs.create(logname)
            self.fs.fsync(logname)
        last_seq = self._absorb_staged_entries(logname, vector)
        writer = LogWriter(
            self.fs,
            logname,
            page_size=getattr(self.fs, "page_size", 512),
            start_seq=last_seq + 1,
            clock=self.clock,
        )
        if last_seq == 0:
            # The first replayed entry reclaims this node's identity: the
            # shipped checkpoint says the *peer* originated it.
            writer.append(
                pickle_write(
                    ("ns_identity", (self.replica_id,), {}),
                    self.pickle_registry,
                )
            )
        peer = self.peers[plan.peer_index]
        rounds = 0
        while True:
            rounds += 1
            self.report.catchup_rounds += 1
            records = self._retrying(
                LOG_TAIL, lambda: peer.updates_since(dict(vector))
            )
            fresh = [
                record
                for record in records
                if record[0][1] > vector.get(record[0][0], 0)
            ]
            for start in range(0, len(fresh), self.batch_records):
                batch = fresh[start : start + self.batch_records]
                writer.append_unsynced(
                    pickle_write(
                        ("ns_remote", (list(batch),), {}),
                        self.pickle_registry,
                    )
                )
            if fresh:
                writer.sync()
                for (origin, seq), _lamport, _action, _params in fresh:
                    if seq > vector.get(origin, 0):
                        vector[origin] = seq
                self.report.entries_replayed += len(fresh)
                self._entries_replayed.inc(len(fresh))
            peer_vector = self._retrying(LOG_TAIL, lambda: peer.summary())
            lag = sum(
                seen - vector.get(origin, 0)
                for origin, seen in peer_vector.items()
                if seen > vector.get(origin, 0)
            )
            if lag <= self.cutover_lag:
                break
            if rounds >= self.max_catchup_rounds:
                raise RecoveryFailed(
                    LOG_TAIL,
                    f"lag still {lag} after {rounds} catch-up rounds "
                    f"(cutover threshold {self.cutover_lag})",
                )
        self._save_state(CUTOVER, plan)

    def _checkpoint_vector(self, plan: RecoveryPlan) -> dict[str, int]:
        payload = read_checkpoint(
            self.fs, checkpoint_name(plan.target_version)
        )
        root = pickle_read(payload, self.pickle_registry)
        return dict(root["vector"])

    def _absorb_staged_entries(
        self, logname: str, vector: dict[str, int]
    ) -> int:
        """Fold already-staged tail entries into ``vector`` (resume path).

        A previous attempt may have appended catch-up batches before
        crashing; replaying their version-vector effect (not their tree
        effect — that happens at cutover) avoids fetching those records
        again.  A torn final entry is cut off exactly as recovery would.
        """
        scan = LogScan(self.fs, logname)
        last_seq = 0
        for entry in scan:
            last_seq = entry.seq
            op_name, args, _kwargs = pickle_read(
                entry.payload, self.pickle_registry
            )
            if op_name != "ns_remote":
                continue
            for (origin, seq), _lamport, _action, _params in args[0]:
                if seq > vector.get(origin, 0):
                    vector[origin] = seq
        if scan.outcome.truncated:
            self.fs.truncate(logname, scan.outcome.good_length)
            self.fs.fsync(logname)
        return last_seq

    # -- CUTOVER ---------------------------------------------------------------

    def _stage_cutover(self, plan: RecoveryPlan):
        from repro.nameserver.replication import Replica  # avoid a cycle

        self._enter_stage(CUTOVER)
        current = read_current_version(self.fs)
        if current is None or current.number != plan.target_version:
            # Our own half-written newversion from a crashed commit (the
            # only writer here) would block the retry; a *valid* one
            # naming the target is the skip branch above.
            self.fs.delete_if_exists(NEWVERSION_FILE)
            commit_new_version(self.fs, plan.target_version)  # THE commit
            finalize_switch(
                self.fs, plan.target_version, self.keep_versions
            )
        self.fs.delete_if_exists(RECOVERY_STATE_FILE)
        self.fs.fsync_dir()
        self._enter_stage(DONE)
        self._stage_gauge.set(0)
        replica = Replica(self.fs, self.replica_id, **self._replica_options())
        owner = replica.db.enquire(lambda root: root["replica"])
        if owner != self.replica_id:
            raise RecoveryFailed(
                CUTOVER,
                f"recovered root answers to {owner!r}, not "
                f"{self.replica_id!r} — identity entry missing",
            )
        return replica

    def _replica_options(self) -> dict:
        options = dict(self.db_options)
        options.setdefault("registry", self.registry)
        options.setdefault("clock", self.clock)
        options.setdefault("keep_versions", self.keep_versions)
        if self.flight is not None:
            options.setdefault("flight", self.flight)
        return options

    # -- the resume point ------------------------------------------------------

    def _save_state(self, stage: str, plan: RecoveryPlan) -> None:
        state = {
            "format": RECOVERY_FORMAT,
            "stage": stage,
            "replica_id": self.replica_id,
            "peer_id": plan.peer_id,
            "source_version": plan.source_version,
            "checkpoint_bytes": plan.checkpoint_bytes,
            "target_version": plan.target_version,
        }
        self.fs.write(
            RECOVERY_STATE_FILE, json.dumps(state).encode("ascii")
        )
        self.fs.fsync(RECOVERY_STATE_FILE)

    def _load_state(self) -> dict | None:
        if not self.fs.exists(RECOVERY_STATE_FILE):
            return None
        try:
            state = json.loads(self.fs.read(RECOVERY_STATE_FILE))
        except Exception:
            return {}  # unreadable: force a discard + fresh start
        if (
            not isinstance(state, dict)
            or state.get("format") != RECOVERY_FORMAT
            or state.get("replica_id") != self.replica_id
            or state.get("stage") not in RECOVERY_STAGES
        ):
            return {}
        return state

    def _resume_plan(self, state: dict) -> tuple[RecoveryPlan, str] | None:
        """Rebuild the plan a crashed run persisted, if still viable.

        Returns ``(plan, stage to run next)``, or None when the state is
        unusable (damaged file, different replica, peer moved on) — the
        caller discards and replans from scratch.
        """
        if not state or "target_version" not in state:
            return None
        stage = state["stage"]
        target = int(state["target_version"])
        if stage == CUTOVER:
            # No peer needed: either the commit already happened (finish
            # the tidy-up) or the staged files are complete and durable.
            plan = RecoveryPlan(
                peer_index=0,
                peer_id=str(state["peer_id"]),
                source_version=int(state["source_version"]),
                checkpoint_bytes=int(state["checkpoint_bytes"]),
                target_version=target,
            )
            return plan, CUTOVER
        if stage == LOG_TAIL:
            # The snapshot is complete and validated; any healthy peer
            # can serve the tail (history records are origin-stamped).
            try:
                read_checkpoint(self.fs, checkpoint_name(target))
            except Exception:
                return None
            peer_index, manifest = self._pick_peer()
            plan = RecoveryPlan(
                peer_index=peer_index,
                peer_id=str(manifest["replica_id"]),
                source_version=int(state["source_version"]),
                checkpoint_bytes=int(state["checkpoint_bytes"]),
                target_version=target,
            )
            self._save_state(LOG_TAIL, plan)
            return plan, LOG_TAIL
        if stage == SNAPSHOT:
            # The partial file only matches if the same peer still serves
            # the same checkpoint version.
            for peer_index, peer in enumerate(self.peers):
                try:
                    manifest = peer.snapshot_manifest()
                except (SnapshotGone, *_COMM_ERRORS):
                    continue
                if (
                    manifest.get("replica_id") == state.get("peer_id")
                    and int(manifest.get("version", -1))
                    == int(state["source_version"])
                    and manifest.get("health") == "healthy"
                ):
                    plan = RecoveryPlan(
                        peer_index=peer_index,
                        peer_id=str(state["peer_id"]),
                        source_version=int(state["source_version"]),
                        checkpoint_bytes=int(state["checkpoint_bytes"]),
                        target_version=target,
                    )
                    return plan, SNAPSHOT
            return None
        return None

    def _discard_staged(self, state: dict | None = None) -> None:
        """Remove every staged artifact of an abandoned attempt.

        Anything invisible to ``read_current_version`` is fair game: the
        numbered files of versions no version marker names, plus the
        state file itself.
        """
        if state is None:
            state = self._load_state() or {}
        target = state.get("target_version")
        if isinstance(target, int):
            self.fs.delete_if_exists(checkpoint_name(target))
            self.fs.delete_if_exists(logfile_name(target))
        self.fs.delete_if_exists(RECOVERY_STATE_FILE)
        self.fs.fsync_dir()


def abandon_recovery(fs: FileSystem) -> bool:
    """Cleanly abort an in-progress (crashed) recovery on ``fs``.

    Deletes the state file and the staged target files it names; returns
    whether anything was found.  Used by ``fsck --repair`` so a directory
    with a half-finished recovery validates clean instead of tripping the
    unknown-file and partial-version checks.
    """
    if not fs.exists(RECOVERY_STATE_FILE):
        return False
    target: object = None
    try:
        state = json.loads(fs.read(RECOVERY_STATE_FILE))
        if isinstance(state, dict):
            target = state.get("target_version")
    except Exception:
        pass
    if isinstance(target, int):
        current = read_current_version(fs)
        if current is None or current.number != target:
            fs.delete_if_exists(checkpoint_name(target))
            fs.delete_if_exists(logfile_name(target))
    fs.delete_if_exists(RECOVERY_STATE_FILE)
    fs.fsync_dir()
    return True
