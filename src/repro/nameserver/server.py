"""The name server: the paper's worked example, over the database core.

``NameServer`` owns a :class:`~repro.core.database.Database` whose root is
the tree-of-hash-tables structure, and exposes:

* **enquiries** — ``lookup``, ``exists``, ``list_dir``, ``read_subtree``,
  ``count`` — pure virtual-memory reads under the shared lock;
* **updates** — ``bind``, ``unbind``, ``unbind_subtree``,
  ``write_subtree`` — each one single-shot transaction, one log entry,
  one disk write;
* **replication hooks** — ``summary``, ``updates_since``,
  ``apply_remote`` — used by :mod:`repro.nameserver.replication`.

The RPC interface (:func:`nameserver_interface`) declares all of these so
remote clients get generated stubs; ``NameServer`` itself is directly
exportable through :class:`repro.rpc.RpcServer`.
"""

from __future__ import annotations

import zlib

from repro.core.database import Database
from repro.core.errors import DatabaseDegraded
from repro.core.version import checkpoint_name
from repro.nameserver.errors import (
    BadPath,
    NameExists,
    NameNotFound,
    SnapshotGone,
)
from repro.nameserver.operations import (
    NAMESERVER_OPS,
    new_root,
    updates_since as _updates_since,
)
from repro.nameserver.tree import (
    count_live,
    digest_report,
    find_node,
    iter_leaves,
    list_directory,
    live_leaf,
    parse_path,
    subtree_entries,
)
from repro.storage.errors import StorageError
from repro.rpc import (
    Bool,
    DictOf,
    Int,
    Interface,
    ListOf,
    Pickled,
    Str,
    Void,
)
from repro.storage.interface import FileSystem


class NameServer:
    """A strongly typed name-to-value service with durable storage."""

    def __init__(
        self,
        fs: FileSystem,
        replica_id: str = "primary",
        **db_options: object,
    ) -> None:
        self.replica_id = replica_id
        self.db = Database(
            fs,
            initial=lambda: new_root(replica_id),
            operations=NAMESERVER_OPS,
            **db_options,
        )

    # -- enquiries -----------------------------------------------------------

    def lookup(self, path) -> object:
        """The value bound at ``path``; raises :class:`NameNotFound`."""
        parsed = parse_path(path)

        def read(root):
            leaf = live_leaf(root["tree"], parsed)
            if leaf is None:
                raise NameNotFound(parsed)
            return leaf.value

        return self.db.enquire(read)

    def exists(self, path) -> bool:
        parsed = parse_path(path)
        return self.db.enquire(
            lambda root: live_leaf(root["tree"], parsed) is not None
        )

    def list_dir(self, path=()) -> list[str]:
        """Child names with live content under ``path`` (root for ``()``)."""
        parsed = parse_path(path) if path else ()
        return self.db.enquire(lambda root: list_directory(root["tree"], parsed))

    def read_subtree(self, path=()) -> list[tuple[list[str], object]]:
        """All live ``(relative path, value)`` pairs below ``path``."""
        parsed = parse_path(path) if path else ()
        return self.db.enquire(
            lambda root: [
                (list(relative), value)
                for relative, value in subtree_entries(root["tree"], parsed)
            ]
        )

    def count(self) -> int:
        return self.db.enquire(lambda root: count_live(root["tree"]))

    def glob(self, pattern) -> list[tuple[list[str], object]]:
        """Live ``(path, value)`` pairs matching a wildcard pattern.

        Components may be literals, ``*`` (one component), ``**`` (any
        depth) or shell-style partial wildcards (``printer*``).
        """
        from repro.nameserver.browse import glob_entries, parse_pattern

        parsed = parse_pattern(pattern)
        return self.db.enquire(
            lambda root: [
                (list(path), value)
                for path, value in glob_entries(root["tree"], parsed)
            ]
        )

    # -- updates -------------------------------------------------------------

    def bind(self, path, value, exclusive: bool = False) -> None:
        parsed = parse_path(path)
        self.db.update("ns_local", "bind", (parsed, value, bool(exclusive)))

    def unbind(self, path) -> None:
        parsed = parse_path(path)
        self.db.update("ns_local", "unbind", (parsed,))

    def unbind_subtree(self, path) -> None:
        parsed = parse_path(path)
        self.db.update("ns_local", "unbind_subtree", (parsed,))

    def write_subtree(self, path, entries) -> None:
        """Replace the subtree at ``path`` with ``entries`` in one commit.

        ``entries`` is a list of ``(relative path, value)`` pairs; the
        whole replacement is one single-shot transaction.
        """
        parsed = parse_path(path)
        canonical = [(tuple(parse_path(rel)), value) for rel, value in entries]
        self.db.update("ns_local", "write_subtree", (parsed, canonical))

    # -- replication hooks -----------------------------------------------------

    def summary(self) -> dict[str, int]:
        """This replica's version vector (origin → highest seq applied)."""
        return self.db.enquire(lambda root: dict(root["vector"]))

    def updates_since(self, vector: dict[str, int]) -> list:
        """History records the holder of ``vector`` lacks."""
        return self.db.enquire(lambda root: list(_updates_since(root, vector)))

    def apply_remote(self, records: list) -> int:
        """Apply peer updates; idempotent; returns the number applied."""
        if not records:
            return 0
        return self.db.update("ns_remote", records)

    def export_state(self) -> list:
        """Complete history for replica restoration after a hard error."""
        return self.db.enquire(lambda root: list(root["history"]))

    # -- replica repair hooks --------------------------------------------------

    def snapshot_manifest(self) -> dict:
        """What a recovering peer needs to plan against this replica.

        The checkpoint named here is write-once: its size is stable for
        as long as the file exists, and a later checkpoint switch makes
        ``snapshot_chunk`` raise :class:`SnapshotGone` rather than serve
        a different file under the same version number.
        """
        db = self.db
        version = db.version
        try:
            nbytes = db.fs.size(checkpoint_name(version))
        except StorageError as exc:
            raise SnapshotGone(version) from exc
        return {
            "replica_id": self.replica_id,
            "version": version,
            "checkpoint_bytes": nbytes,
            "vector": self.summary(),
            "health": db.health,
        }

    def snapshot_chunk(self, version: int, offset: int, length: int) -> dict:
        """One checksummed page of checkpoint ``version``.

        Returns ``{"data": bytes, "crc": int}``; short (or empty) data at
        the end of the file is the caller's end-of-snapshot signal.  The
        per-chunk CRC guards the *transfer*; the whole downloaded file is
        additionally validated against the checkpoint format's own
        checksum before cutover.
        """
        if offset < 0 or length <= 0:
            raise ValueError("offset must be >= 0 and length > 0")
        try:
            data = self.db.fs.read_range(checkpoint_name(version), offset, length)
        except StorageError as exc:
            raise SnapshotGone(version) from exc
        return {"data": data, "crc": zlib.crc32(data) & 0xFFFFFFFF}

    def tree_digest(self, path=()) -> dict:
        """The Merkle digest report of the subtree at ``path``.

        One level deep — the node's own digest, its leaf digest and each
        child's digest — so a diverged pair of replicas can walk toward
        the difference in O(depth) calls (see ``digest_report``).
        """
        parsed = parse_path(path) if path else ()
        return self.db.enquire(
            lambda root: digest_report(find_node(root["tree"], parsed))
        )

    def read_leaves(self, path=()) -> list:
        """Every leaf at/below ``path`` — tombstones included — with stamps.

        The repair wire format: ``(relative path, value, lamport, origin,
        deleted)`` tuples, consumed by :meth:`repair_leaves` on the
        diverged side.
        """
        parsed = parse_path(path) if path else ()

        def read(root):
            node = find_node(root["tree"], parsed)
            if node is None:
                return []
            return [
                (list(relative), leaf.value, leaf.lamport, leaf.origin,
                 leaf.deleted)
                for relative, leaf in iter_leaves(
                    node, include_tombstones=True
                )
            ]

        return self.db.enquire(read)

    def repair_leaves(self, leaves: list) -> int:
        """Apply authoritative repair leaves; returns how many changed.

        Absolute paths here (the caller resolves the diverged subtree's
        prefix); one logged ``ns_repair`` transaction, so the fix is as
        durable as any update.
        """
        if not leaves:
            return 0
        canonical = [
            (tuple(parse_path(path)), value, int(lamport), str(origin),
             bool(deleted))
            for path, value, lamport, origin, deleted in leaves
        ]
        return self.db.update("ns_repair", canonical)

    # -- sharding hooks ----------------------------------------------------------

    def components(self) -> list[str]:
        """Sorted top-level components, tombstoned subtrees included.

        The unit of shard placement (the first path component) and
        therefore the unit of migration: a donor enumerates these,
        filters by the moving hash range, and streams each one with
        ``read_leaves``/``repair_leaves``.  Tombstones are included
        because deletions must migrate too.
        """
        return self.db.enquire(
            lambda root: sorted(root["tree"].children.keys())
        )

    def purge_components(self, components: list[str]) -> int:
        """Structurally drop top-level subtrees after their range moved.

        One logged ``ns_purge`` transaction (state, not history — see the
        operation's docstring); returns how many leaves were removed.
        """
        if not components:
            return 0
        return self.db.update("ns_purge", [str(c) for c in components])

    # -- administration ------------------------------------------------------------

    def checkpoint(self) -> int:
        return self.db.checkpoint()

    def close(self) -> None:
        self.db.close()

    @property
    def stats(self):
        return self.db.stats


def nameserver_interface(name: str = "NameServer") -> Interface:
    """The RPC interface; clients and servers generate stubs from this."""
    iface = Interface(name, version=1)
    path = ListOf(Str)
    iface.method("lookup", params=[("path", path)], returns=Pickled())
    iface.method("exists", params=[("path", path)], returns=Bool)
    iface.method("list_dir", params=[("path", path)], returns=ListOf(Str))
    iface.method("read_subtree", params=[("path", path)], returns=Pickled())
    iface.method("count", returns=Int)
    iface.method("glob", params=[("pattern", path)], returns=Pickled())
    iface.method(
        "bind",
        params=[("path", path), ("value", Pickled()), ("exclusive", Bool)],
        returns=Void,
    )
    iface.method("unbind", params=[("path", path)], returns=Void)
    iface.method("unbind_subtree", params=[("path", path)], returns=Void)
    iface.method(
        "write_subtree",
        params=[("path", path), ("entries", Pickled())],
        returns=Void,
    )
    iface.method("summary", returns=DictOf(Str, Int))
    iface.method(
        "updates_since", params=[("vector", DictOf(Str, Int))], returns=Pickled()
    )
    iface.method("apply_remote", params=[("records", Pickled())], returns=Int)
    iface.method("export_state", returns=Pickled())
    # Replica repair: snapshot shipping + anti-entropy tree comparison.
    # Dispatch is by method name, so extending the interface stays wire-
    # compatible with peers that predate it (they answer UnknownMethod).
    iface.method("snapshot_manifest", returns=Pickled())
    iface.method(
        "snapshot_chunk",
        params=[("version", Int), ("offset", Int), ("length", Int)],
        returns=Pickled(),
    )
    iface.method("tree_digest", params=[("path", path)], returns=Pickled())
    iface.method("read_leaves", params=[("path", path)], returns=Pickled())
    iface.method("repair_leaves", params=[("leaves", Pickled())], returns=Int)
    # Sharding: migration donors enumerate and (after cutover) drop the
    # top-level components whose hash range moved to another shard.
    iface.method("components", returns=ListOf(Str))
    iface.method(
        "purge_components", params=[("components", ListOf(Str))], returns=Int
    )
    iface.error(NameNotFound)
    iface.error(NameExists)
    iface.error(BadPath)
    # A degraded replica refuses updates with a *typed* error, so remote
    # callers (and the replica group's failover) see the condition rather
    # than a generic server fault.
    iface.error(DatabaseDegraded)
    # A checkpoint switch mid-download invalidates the streamed version;
    # the recoverer renegotiates its plan on this typed signal.
    iface.error(SnapshotGone)
    return iface


#: The canonical instance used by servers and clients alike.
NAMESERVER_INTERFACE = nameserver_interface()
