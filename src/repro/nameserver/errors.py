"""Errors raised by the name server.

The update-shaped errors derive from
:class:`~repro.core.errors.PreconditionFailed` so the database aborts the
update before anything reaches the log, and they are registered on the RPC
interface so remote clients receive the same exception types.
"""

from __future__ import annotations

from repro.core.errors import PreconditionFailed


class NameServerError(Exception):
    """Base class for name server errors."""


class NameNotFound(NameServerError, PreconditionFailed):
    """The path names no live value."""

    def __init__(self, path) -> None:
        super().__init__(_message("name not found", path))


class NameExists(NameServerError, PreconditionFailed):
    """An exclusive bind found the name already bound."""

    def __init__(self, path) -> None:
        super().__init__(_message("name already bound", path))


class BadPath(NameServerError, PreconditionFailed):
    """The path is empty or contains an empty component."""

    def __init__(self, path) -> None:
        super().__init__(_message("bad path", path))


class SnapshotGone(NameServerError):
    """The checkpoint version a recoverer is streaming no longer exists.

    Raised by ``snapshot_chunk`` when the serving peer checkpointed (and
    finalized) mid-download, deleting the superseded file.  The recoverer
    reacts by renegotiating the plan against the peer's *new* checkpoint
    — the stage machine restarts from PLANNING, not from a broken file.
    """

    def __init__(self, version) -> None:
        if isinstance(version, str) and version.startswith("snapshot version"):
            super().__init__(version)  # reconstructed from a remote message
        else:
            super().__init__(
                f"snapshot version {version} is no longer on disk "
                f"(the peer checkpointed past it)"
            )


def format_path(path) -> str:
    if isinstance(path, str):
        return path
    if isinstance(path, (tuple, list)):
        return "/".join(str(part) for part in path)
    return repr(path)


def _message(prefix: str, path) -> str:
    # When an RPC client reconstructs the exception from the remote
    # message, the prefix is already present; do not stack it.
    if isinstance(path, str) and path.startswith(prefix):
        return path
    return f"{prefix}: {format_path(path)}"
