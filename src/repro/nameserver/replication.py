"""Replication: update propagation, anti-entropy, replica restoration.

The paper runs several name server replicas and uses them, rather than
local disk redundancy, to recover from hard failures:

    We respond to a hard error on a particular name server replica by
    restoring its data from another replica.  This causes us to lose only
    those updates that had been applied to the damaged replica but not
    propagated to any other replica. […] We have automatic mechanisms for
    ensuring the long-term consistency of the name server replicas.

Three mechanisms live here:

* **eager propagation** — after local updates, push the new history
  records to every reachable peer (best effort; failures are tolerated);
* **anti-entropy** — periodic pairwise reconciliation by version vector:
  each side fetches exactly the records it lacks.  Updates are idempotent
  and last-writer-wins per name, so any gossip order converges;
* **restoration** — rebuild a replica whose local recovery failed by
  replaying a peer's complete history into a fresh database.

A "peer" is anything with the replication hooks — a local
:class:`NameServer`, a :class:`RemoteNameServer` over RPC, or another
:class:`Replica` — so the same code drives in-process simulation and real
TCP deployments.
"""

from __future__ import annotations

from repro.nameserver.server import NameServer
from repro.storage.interface import FileSystem


class PeerUnavailable(Exception):
    """The peer could not be reached for propagation or sync."""


class Replica(NameServer):
    """A name server replica with propagation and reconciliation."""

    def __init__(
        self,
        fs: FileSystem,
        replica_id: str,
        **db_options: object,
    ) -> None:
        super().__init__(fs, replica_id=replica_id, **db_options)
        self.peers: list[object] = []
        self.propagation_failures = 0

    def add_peer(self, peer: object) -> None:
        """Register a peer (NameServer, Replica or RemoteNameServer)."""
        self.peers.append(peer)

    # -- propagation -----------------------------------------------------------

    def propagate(self) -> int:
        """Push everything each peer lacks; returns records delivered.

        Best-effort, exactly as the paper accepts: a peer that is down
        simply misses this round and is healed later by anti-entropy.
        """
        delivered = 0
        for peer in self.peers:
            try:
                their_vector = peer.summary()
                missing = self.updates_since(their_vector)
                if missing:
                    peer.apply_remote(missing)
                    delivered += len(missing)
            except Exception:
                self.propagation_failures += 1
        return delivered

    # -- anti-entropy -------------------------------------------------------------

    def sync_from(self, peer: object) -> int:
        """Pull updates this replica lacks from ``peer``; returns count."""
        try:
            missing = peer.updates_since(self.summary())
        except Exception as exc:
            raise PeerUnavailable(f"sync failed: {exc!r}") from exc
        if not missing:
            return 0
        return self.apply_remote(missing)

    def sync_with(self, peer: object) -> tuple[int, int]:
        """Bidirectional reconciliation; returns (pulled, pushed)."""
        pulled = self.sync_from(peer)
        try:
            missing = self.updates_since(peer.summary())
            pushed = peer.apply_remote(missing) if missing else 0
        except Exception as exc:
            raise PeerUnavailable(f"push failed: {exc!r}") from exc
        return pulled, pushed


def restore_replica(
    fs: FileSystem,
    replica_id: str,
    source: object,
    **db_options: object,
) -> Replica:
    """Rebuild a replica from a peer after an unrecoverable hard error.

    The damaged on-disk state is discarded entirely (every file deleted),
    a fresh database is bootstrapped, and the source's complete update
    history is replayed through the ordinary idempotent remote-apply
    path — which also rebuilds the version vector, so future anti-entropy
    picks up exactly where the restored data ends.  "This causes us to
    lose only those updates that had been applied to the damaged replica
    but not propagated to any other replica."
    """
    for name in list(fs.list_names()):
        fs.delete(name)
    fs.fsync_dir()
    replica = Replica(fs, replica_id, **db_options)
    history = source.export_state()
    if history:
        replica.apply_remote(history)
    return replica


class ReplicaGroup:
    """A convenience wrapper driving a whole replica set in simulation."""

    def __init__(self, replicas: list[Replica]) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        self.replicas = list(replicas)
        for replica in self.replicas:
            for other in self.replicas:
                if other is not replica:
                    replica.add_peer(other)

    def propagate_all(self) -> int:
        return sum(replica.propagate() for replica in self.replicas)

    def anti_entropy_round(self) -> int:
        """One gossip round: each replica pulls from its ring successor."""
        moved = 0
        count = len(self.replicas)
        for index, replica in enumerate(self.replicas):
            moved += replica.sync_from(self.replicas[(index + 1) % count])
        return moved

    def converge(self, max_rounds: int = 10) -> int:
        """Run anti-entropy rounds until no records move."""
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            if self.anti_entropy_round() == 0:
                break
        return rounds

    def is_consistent(self) -> bool:
        """All replicas hold identical live name sets and version vectors."""
        baseline = self.replicas[0]
        base_tree = sorted(
            (list(p), v) for p, v in _entries(baseline)
        )
        base_vector = baseline.summary()
        for replica in self.replicas[1:]:
            if replica.summary() != base_vector:
                return False
            if sorted((list(p), v) for p, v in _entries(replica)) != base_tree:
                return False
        return True


def _entries(server: NameServer):
    return server.read_subtree(())
