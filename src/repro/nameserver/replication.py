"""Replication: update propagation, anti-entropy, replica restoration.

The paper runs several name server replicas and uses them, rather than
local disk redundancy, to recover from hard failures:

    We respond to a hard error on a particular name server replica by
    restoring its data from another replica.  This causes us to lose only
    those updates that had been applied to the damaged replica but not
    propagated to any other replica. […] We have automatic mechanisms for
    ensuring the long-term consistency of the name server replicas.

Three mechanisms live here:

* **eager propagation** — after local updates, push the new history
  records to every reachable peer (best effort; failures are tolerated);
* **anti-entropy** — periodic pairwise reconciliation by version vector:
  each side fetches exactly the records it lacks.  Updates are idempotent
  and last-writer-wins per name, so any gossip order converges;
* **restoration** — rebuild a replica whose local recovery failed by
  replaying a peer's complete history into a fresh database.

A "peer" is anything with the replication hooks — a local
:class:`NameServer`, a :class:`RemoteNameServer` over RPC, or another
:class:`Replica` — so the same code drives in-process simulation and real
TCP deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import DatabaseDegraded
from repro.nameserver.server import NameServer
from repro.obs.metrics import MetricsRegistry
from repro.rpc.errors import CallMaybeExecuted, TransportError
from repro.sim.clock import Clock, WallClock
from repro.storage.interface import FileSystem


class PeerUnavailable(Exception):
    """The peer could not be reached for propagation or sync."""


class AllPeersUnavailable(PeerUnavailable):
    """Every replica in the group is down or circuit-broken."""


class Replica(NameServer):
    """A name server replica with propagation and reconciliation."""

    def __init__(
        self,
        fs: FileSystem,
        replica_id: str,
        **db_options: object,
    ) -> None:
        super().__init__(fs, replica_id=replica_id, **db_options)
        self.peers: list[object] = []
        # Registered eagerly on the database's registry so a node's
        # Prometheus export shows the replication layer from the start.
        registry = self.db.registry
        self._propagation_failures = registry.counter(
            "replication_propagation_failures_total",
            "Peers that could not be reached during eager propagation.",
        )
        self._records_propagated = registry.counter(
            "replication_records_propagated_total",
            "History records delivered to peers by eager propagation.",
        )
        self._records_pulled = registry.counter(
            "replication_records_pulled_total",
            "History records pulled from peers by anti-entropy.",
        )

    @property
    def propagation_failures(self) -> int:
        return int(self._propagation_failures.value)

    def add_peer(self, peer: object) -> None:
        """Register a peer (NameServer, Replica or RemoteNameServer)."""
        self.peers.append(peer)

    # -- propagation -----------------------------------------------------------

    def propagate(self) -> int:
        """Push everything each peer lacks; returns records delivered.

        Best-effort, exactly as the paper accepts: a peer that is down
        simply misses this round and is healed later by anti-entropy.
        """
        delivered = 0
        for peer in self.peers:
            try:
                their_vector = peer.summary()
                missing = self.updates_since(their_vector)
                if missing:
                    peer.apply_remote(missing)
                    delivered += len(missing)
                    self._records_propagated.inc(len(missing))
            except Exception:
                self._propagation_failures.inc()
        return delivered

    # -- anti-entropy -------------------------------------------------------------

    def sync_from(self, peer: object) -> int:
        """Pull updates this replica lacks from ``peer``; returns count."""
        try:
            missing = peer.updates_since(self.summary())
        except Exception as exc:
            raise PeerUnavailable(f"sync failed: {exc!r}") from exc
        if not missing:
            return 0
        applied = self.apply_remote(missing)
        self._records_pulled.inc(applied)
        return applied

    def sync_with(self, peer: object) -> tuple[int, int]:
        """Bidirectional reconciliation; returns (pulled, pushed)."""
        pulled = self.sync_from(peer)
        try:
            missing = self.updates_since(peer.summary())
            pushed = peer.apply_remote(missing) if missing else 0
        except Exception as exc:
            raise PeerUnavailable(f"push failed: {exc!r}") from exc
        return pulled, pushed


def restore_replica(
    fs: FileSystem,
    replica_id: str,
    source: object,
    **db_options: object,
) -> Replica:
    """Rebuild a replica from a peer after an unrecoverable hard error.

    The damaged on-disk state is discarded entirely (every file deleted),
    a fresh database is bootstrapped, and the source's complete update
    history is replayed through the ordinary idempotent remote-apply
    path — which also rebuilds the version vector, so future anti-entropy
    picks up exactly where the restored data ends.  "This causes us to
    lose only those updates that had been applied to the damaged replica
    but not propagated to any other replica."
    """
    for name in list(fs.list_names()):
        fs.delete(name)
    fs.fsync_dir()
    replica = Replica(fs, replica_id, **db_options)
    history = source.export_state()
    if history:
        replica.apply_remote(history)
    return replica


class ReplicaGroup:
    """A convenience wrapper driving a whole replica set in simulation."""

    def __init__(self, replicas: list[Replica]) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        self.replicas = list(replicas)
        for replica in self.replicas:
            for other in self.replicas:
                if other is not replica:
                    replica.add_peer(other)

    def propagate_all(self) -> int:
        return sum(replica.propagate() for replica in self.replicas)

    def anti_entropy_round(self) -> int:
        """One gossip round: each replica pulls from its ring successor."""
        moved = 0
        count = len(self.replicas)
        for index, replica in enumerate(self.replicas):
            moved += replica.sync_from(self.replicas[(index + 1) % count])
        return moved

    def converge(self, max_rounds: int = 10) -> int:
        """Run anti-entropy rounds until no records move."""
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            if self.anti_entropy_round() == 0:
                break
        return rounds

    def is_consistent(self) -> bool:
        """All replicas hold identical live name sets and version vectors."""
        baseline = self.replicas[0]
        base_tree = sorted(
            (list(p), v) for p, v in _entries(baseline)
        )
        base_vector = baseline.summary()
        for replica in self.replicas[1:]:
            if replica.summary() != base_vector:
                return False
            if sorted((list(p), v) for p, v in _entries(replica)) != base_tree:
                return False
        return True


def _entries(server: NameServer):
    return server.read_subtree(())


# -- graceful degradation -----------------------------------------------------

#: Exceptions that mean "the peer, or the path to it, failed" — everything
#: else (NameNotFound, NameExists…) is an application answer and proves the
#: peer healthy.  OSError covers raw socket/file failures from local peers.
COMMUNICATION_ERRORS = (PeerUnavailable, TransportError, OSError)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A per-peer circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses traffic (no timeouts wasted on a dead
    peer) until ``reset_timeout_seconds`` have passed on the injected
    clock, after which exactly one probe call is allowed (half-open).
    The probe's outcome either closes the circuit or re-opens it for
    another full timeout.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 30.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold counts from 1")
        if reset_timeout_seconds < 0:
            raise ValueError("reset timeout cannot be negative")
        self.clock = clock if clock is not None else WallClock()
        self.failure_threshold = failure_threshold
        self.reset_timeout_seconds = reset_timeout_seconds
        self.state = CLOSED
        self.consecutive_failures = 0
        self.times_opened = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Whether a call to this peer should be attempted now."""
        if self.state == OPEN:
            if (
                self.clock.now() - self._opened_at
                >= self.reset_timeout_seconds
            ):
                self.state = HALF_OPEN  # one probe may pass
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.times_opened += 1
            self.state = OPEN
            self._opened_at = self.clock.now()


@dataclass
class ReadResult:
    """A read served by a possibly-degraded replica group.

    ``degraded`` is True when the preferred (first listed) replica did not
    serve the read; ``lag`` then reports how many updates the serving
    replica is known to be missing relative to the freshest version
    vector the group has seen (0 = fully caught up as far as anyone
    knows, ``None`` = staleness could not be assessed).
    """

    value: object
    served_by: str
    degraded: bool = False
    lag: int | None = 0
    peers_tried: int = 1


@dataclass
class SyncReport:
    """Outcome of one degraded-tolerant anti-entropy round."""

    records_moved: int = 0
    peers_synced: int = 0
    peers_skipped: list[str] = field(default_factory=list)
    peers_failed: list[str] = field(default_factory=list)


class ResilientReplicaGroup:
    """Drives a replica set that keeps answering while peers fail.

    Where :class:`ReplicaGroup` assumes every replica is reachable (its
    sync raises :class:`PeerUnavailable` on first failure), this wrapper
    assumes failure is normal: each peer sits behind a
    :class:`CircuitBreaker`, reads fail over to live peers with explicit
    staleness reporting (:class:`ReadResult`), updates fail over to the
    first live peer, and anti-entropy skips broken peers instead of
    aborting the round.  Peers may be local :class:`Replica` objects,
    :class:`~repro.nameserver.client.RemoteNameServer` proxies, or any
    mix — all that is required is the replication hook surface.
    """

    def __init__(
        self,
        peers: list[object],
        peer_ids: list[str] | None = None,
        clock: Clock | None = None,
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 30.0,
        track_staleness: bool = True,
        registry: MetricsRegistry | None = None,
        flight=None,
    ) -> None:
        if not peers:
            raise ValueError("a replica group needs at least one peer")
        #: when False, reads skip the extra ``summary()`` round trip and
        #: report ``lag=None`` (cheaper, but staleness is unassessed)
        self.track_staleness = track_staleness
        self.peers = list(peers)
        if peer_ids is None:
            peer_ids = [
                str(getattr(peer, "replica_id", f"peer{i}"))
                for i, peer in enumerate(self.peers)
            ]
        if len(peer_ids) != len(self.peers):
            raise ValueError("one peer_id per peer")
        self.peer_ids = list(peer_ids)
        self.clock = clock if clock is not None else WallClock()
        self.breakers = {
            peer_id: CircuitBreaker(
                self.clock, failure_threshold, reset_timeout_seconds
            )
            for peer_id in self.peer_ids
        }
        self.last_errors: dict[str, str | None] = {
            peer_id: None for peer_id in self.peer_ids
        }
        #: freshest version vector observed from any peer (origin → seq)
        self.best_vector: dict[str, int] = {}
        self.registry = registry if registry is not None else MetricsRegistry(
            clock=self.clock
        )
        #: optional :class:`~repro.obs.flight.FlightRecorder`: breaker
        #: flips and failovers join the shared black-box timeline.
        self.flight = flight
        self._failovers = self.registry.counter(
            "replication_failovers_total",
            "Reads or updates served by a non-preferred replica.",
        )
        self._breaker_state = self.registry.gauge(
            "replication_breaker_state",
            "Per-peer circuit state: 0 closed, 1 half-open, 2 open.",
            labelnames=("peer",),
        )
        self._breaker_opens = self.registry.counter(
            "replication_breaker_opens_total",
            "Circuit-breaker open transitions per peer.",
            labelnames=("peer",),
        )
        self._staleness_lag = self.registry.gauge(
            "replication_staleness_lag",
            "Updates the serving replica is known to be missing.",
            labelnames=("peer",),
        )
        self._degraded_rejections = self.registry.counter(
            "replication_degraded_writes_total",
            "Updates refused by a degraded read-only replica and failed "
            "over to a peer.",
            labelnames=("peer",),
        )
        self._breaker_state_series = {
            peer_id: self._breaker_state.labels(peer_id)
            for peer_id in self.peer_ids
        }
        self._breaker_open_counts = {
            peer_id: self._breaker_opens.labels(peer_id)
            for peer_id in self.peer_ids
        }
        self._breaker_last_state = {
            peer_id: self.breakers[peer_id].state
            for peer_id in self.peer_ids
        }

    @property
    def failovers(self) -> int:
        return int(self._failovers.value)

    # -- plumbing -------------------------------------------------------------

    def _available(self) -> list[tuple[int, str, object]]:
        return [
            (index, peer_id, peer)
            for index, (peer_id, peer) in enumerate(
                zip(self.peer_ids, self.peers)
            )
            if self._allow(peer_id)
        ]

    _STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def _allow(self, peer_id: str) -> bool:
        allowed = self.breakers[peer_id].allow()
        self._note_breaker(peer_id)  # allow() may flip open → half-open
        return allowed

    def _note_breaker(self, peer_id: str) -> None:
        state = self.breakers[peer_id].state
        self._breaker_state_series[peer_id].set(self._STATE_CODES[state])
        previous = self._breaker_last_state[peer_id]
        if state != previous:
            self._breaker_last_state[peer_id] = state
            if self.flight is not None:
                self.flight.record(
                    "breaker_transition",
                    peer=peer_id,
                    from_state=previous,
                    to_state=state,
                )

    def _success(self, peer_id: str) -> None:
        self.breakers[peer_id].record_success()
        self.last_errors[peer_id] = None
        self._note_breaker(peer_id)

    def _failure(self, peer_id: str, exc: Exception) -> None:
        breaker = self.breakers[peer_id]
        opened_before = breaker.times_opened
        breaker.record_failure()
        if breaker.times_opened > opened_before:
            self._breaker_open_counts[peer_id].inc(
                breaker.times_opened - opened_before
            )
        self.last_errors[peer_id] = repr(exc)
        self._note_breaker(peer_id)

    def _note_vector(self, vector: dict[str, int]) -> None:
        for origin, seq in vector.items():
            if seq > self.best_vector.get(origin, -1):
                self.best_vector[origin] = seq

    def _lag_of(self, vector: dict[str, int]) -> int:
        return sum(
            best - vector.get(origin, 0)
            for origin, best in self.best_vector.items()
            if best > vector.get(origin, 0)
        )

    # -- degraded reads -------------------------------------------------------

    def read(self, method: str, *args: object) -> ReadResult:
        """Serve one enquiry from the first live peer, reporting staleness.

        Application-level errors (``NameNotFound``…) propagate untouched:
        they are answers, not failures.  Communication failures rotate to
        the next peer — including :class:`CallMaybeExecuted`, which is
        harmless for an enquiry (re-asking elsewhere has no side effect,
        unlike :meth:`update`) — and only when every peer is broken does
        :class:`AllPeersUnavailable` surface.
        """
        candidates = self._available()
        tried = 0
        for index, peer_id, peer in candidates:
            tried += 1
            try:
                value = getattr(peer, method)(*args)
                vector = dict(peer.summary()) if self.track_staleness else None
            except (CallMaybeExecuted, *COMMUNICATION_ERRORS) as exc:
                self._failure(peer_id, exc)
                continue
            self._success(peer_id)
            lag = None
            if vector is not None:
                self._note_vector(vector)
                lag = self._lag_of(vector)
                self._staleness_lag.labels(peer_id).set(lag)
            degraded = index != 0
            if degraded:
                self._failovers.inc()
                if self.flight is not None:
                    self.flight.record(
                        "replica_failover",
                        kind="read",
                        method=method,
                        served_by=peer_id,
                    )
            return ReadResult(
                value=value,
                served_by=peer_id,
                degraded=degraded,
                lag=lag,
                peers_tried=tried,
            )
        raise AllPeersUnavailable(
            f"no replica answered {method!r}: "
            f"{len(candidates)} tried, "
            f"{len(self.peers) - len(candidates)} circuit-broken"
        )

    def lookup(self, path) -> ReadResult:
        return self.read("lookup", path)

    def exists(self, path) -> ReadResult:
        return self.read("exists", path)

    def list_dir(self, path=()) -> ReadResult:
        return self.read("list_dir", path)

    def count(self) -> ReadResult:
        return self.read("count")

    # -- updates with failover ------------------------------------------------

    def update(self, method: str, *args: object) -> str:
        """Apply one update at the first live peer; returns its peer id.

        A :class:`~repro.rpc.errors.CallMaybeExecuted` from a remote peer
        is *not* grounds for failover — blindly reissuing elsewhere could
        apply the update twice under two origins — so it propagates to the
        caller, who can retry through the same client safely.

        A :class:`~repro.core.errors.DatabaseDegraded` answer means the
        peer is alive but its storage refuses writes (degraded
        read-only): the update fails over to the next peer *without*
        opening the circuit breaker, so reads keep flowing to the
        degraded replica while writes route around it.
        """
        candidates = self._available()
        degraded: list[str] = []
        for index, peer_id, peer in candidates:
            try:
                getattr(peer, method)(*args)
            except DatabaseDegraded as exc:
                # Write-unavailable, not dead: the update never executed
                # (it was refused up front), so reissuing elsewhere is
                # safe, and the breaker stays closed for enquiries.
                self.last_errors[peer_id] = repr(exc)
                self._degraded_rejections.labels(peer_id).inc()
                degraded.append(peer_id)
                continue
            except COMMUNICATION_ERRORS as exc:
                # CallMaybeExecuted is RpcError, not TransportError, so it
                # is never swallowed here.
                self._failure(peer_id, exc)
                continue
            self._success(peer_id)
            if index != 0:
                self._failovers.inc()
                if self.flight is not None:
                    self.flight.record(
                        "replica_failover",
                        kind="update",
                        method=method,
                        served_by=peer_id,
                    )
            return peer_id
        raise AllPeersUnavailable(
            f"no replica accepted {method!r}: "
            f"{len(candidates)} tried ({len(degraded)} degraded "
            f"read-only), {len(self.peers) - len(candidates)} "
            f"circuit-broken"
        )

    def bind(self, path, value, exclusive: bool = False) -> str:
        return self.update("bind", path, value, exclusive)

    def unbind(self, path) -> str:
        return self.update("unbind", path)

    # -- degraded anti-entropy ------------------------------------------------

    def sync_round(self) -> SyncReport:
        """One gossip ring pass that tolerates broken peers.

        Each live peer pulls from its nearest live ring successor; broken
        peers are reported in the result instead of aborting the round
        (contrast :meth:`ReplicaGroup.anti_entropy_round`).
        """
        report = SyncReport()
        live = self._available()
        broken = set(self.peer_ids) - {peer_id for _, peer_id, _ in live}
        report.peers_skipped = sorted(broken)
        if len(live) < 2:
            return report
        for position, (_, peer_id, peer) in enumerate(live):
            _, source_id, source = live[(position + 1) % len(live)]
            try:
                records = source.updates_since(peer.summary())
                moved = peer.apply_remote(records) if records else 0
                self._note_vector(dict(peer.summary()))
            except (CallMaybeExecuted, *COMMUNICATION_ERRORS) as exc:
                # An ambiguous apply_remote is tolerable here: remote
                # apply is idempotent (version-vector filtered), so the
                # next round converges regardless.
                # Attribute the failure to whichever side broke; opening
                # both is safe (each will be re-probed) but imprecise.
                self._failure(peer_id, exc)
                self._failure(source_id, exc)
                report.peers_failed.append(peer_id)
                continue
            self._success(peer_id)
            self._success(source_id)
            report.peers_synced += 1
            report.records_moved += moved
        return report

    # -- observability --------------------------------------------------------

    def status(self) -> dict[str, dict[str, object]]:
        """Per-peer circuit state and last error, for operators."""
        return {
            peer_id: {
                "state": self.breakers[peer_id].state,
                "consecutive_failures": self.breakers[
                    peer_id
                ].consecutive_failures,
                "times_opened": self.breakers[peer_id].times_opened,
                "last_error": self.last_errors[peer_id],
            }
            for peer_id in self.peer_ids
        }
