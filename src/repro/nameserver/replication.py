"""Replication: update propagation, anti-entropy, replica restoration.

The paper runs several name server replicas and uses them, rather than
local disk redundancy, to recover from hard failures:

    We respond to a hard error on a particular name server replica by
    restoring its data from another replica.  This causes us to lose only
    those updates that had been applied to the damaged replica but not
    propagated to any other replica. […] We have automatic mechanisms for
    ensuring the long-term consistency of the name server replicas.

Three mechanisms live here:

* **eager propagation** — after local updates, push the new history
  records to every reachable peer (best effort; failures are tolerated);
* **anti-entropy** — periodic pairwise reconciliation by version vector:
  each side fetches exactly the records it lacks.  Updates are idempotent
  and last-writer-wins per name, so any gossip order converges;
* **restoration** — rebuild a replica whose local recovery failed by
  replaying a peer's complete history into a fresh database.

A "peer" is anything with the replication hooks — a local
:class:`NameServer`, a :class:`RemoteNameServer` over RPC, or another
:class:`Replica` — so the same code drives in-process simulation and real
TCP deployments.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.errors import DatabaseDegraded
from repro.nameserver.server import NameServer
from repro.obs.metrics import MetricsRegistry
from repro.rpc.errors import CallMaybeExecuted, TransportError
from repro.sim.clock import Clock, WallClock
from repro.storage.interface import FileSystem


class PeerUnavailable(Exception):
    """The peer could not be reached for propagation or sync."""


class AllPeersUnavailable(PeerUnavailable):
    """Every replica in the group is down or circuit-broken."""


class Replica(NameServer):
    """A name server replica with propagation and reconciliation."""

    def __init__(
        self,
        fs: FileSystem,
        replica_id: str,
        **db_options: object,
    ) -> None:
        super().__init__(fs, replica_id=replica_id, **db_options)
        self.peers: list[object] = []
        self._peer_ids: list[str] = []
        #: per-peer circuit state maintained by :meth:`propagate` — pure
        #: observability (propagation stays best-effort and always
        #: attempts every peer; anti-entropy heals whatever it misses),
        #: surfaced through the management ``status()`` so ``top
        #: --cluster`` can show a failing peer link at a glance.
        self.peer_breakers: dict[str, CircuitBreaker] = {}
        self.peer_errors: dict[str, str | None] = {}
        # Registered eagerly on the database's registry so a node's
        # Prometheus export shows the replication layer from the start.
        registry = self.db.registry
        self._propagation_failures = registry.counter(
            "replication_propagation_failures_total",
            "Peers that could not be reached during eager propagation.",
        )
        self._records_propagated = registry.counter(
            "replication_records_propagated_total",
            "History records delivered to peers by eager propagation.",
        )
        self._records_pulled = registry.counter(
            "replication_records_pulled_total",
            "History records pulled from peers by anti-entropy.",
        )

    @property
    def propagation_failures(self) -> int:
        return int(self._propagation_failures.value)

    def add_peer(self, peer: object) -> None:
        """Register a peer (NameServer, Replica or RemoteNameServer)."""
        peer_id = str(
            getattr(peer, "replica_id", f"peer{len(self.peers)}")
        )
        self.peers.append(peer)
        self._peer_ids.append(peer_id)
        self.peer_breakers.setdefault(
            peer_id, CircuitBreaker(self.db.clock)
        )
        self.peer_errors.setdefault(peer_id, None)

    def peer_status(self) -> dict[str, dict[str, object]]:
        """Per-peer circuit state and last propagation error."""
        return {
            peer_id: {
                "state": breaker.state,
                "consecutive_failures": breaker.consecutive_failures,
                "times_opened": breaker.times_opened,
                "last_error": self.peer_errors.get(peer_id),
            }
            for peer_id, breaker in self.peer_breakers.items()
        }

    # -- propagation -----------------------------------------------------------

    def propagate(self) -> int:
        """Push everything each peer lacks; returns records delivered.

        Best-effort, exactly as the paper accepts: a peer that is down
        simply misses this round and is healed later by anti-entropy.
        """
        delivered = 0
        for peer_id, peer in zip(self._peer_ids, self.peers):
            breaker = self.peer_breakers[peer_id]
            breaker.allow()  # advance open -> half-open once timed out
            try:
                their_vector = peer.summary()
                missing = self.updates_since(their_vector)
                if missing:
                    peer.apply_remote(missing)
                    delivered += len(missing)
                    self._records_propagated.inc(len(missing))
                breaker.record_success()
                self.peer_errors[peer_id] = None
            except Exception as exc:
                self._propagation_failures.inc()
                breaker.record_failure()
                self.peer_errors[peer_id] = repr(exc)
        return delivered

    # -- anti-entropy -------------------------------------------------------------

    def sync_from(self, peer: object) -> int:
        """Pull updates this replica lacks from ``peer``; returns count."""
        try:
            missing = peer.updates_since(self.summary())
        except Exception as exc:
            raise PeerUnavailable(f"sync failed: {exc!r}") from exc
        if not missing:
            return 0
        applied = self.apply_remote(missing)
        self._records_pulled.inc(applied)
        return applied

    def sync_with(self, peer: object) -> tuple[int, int]:
        """Bidirectional reconciliation; returns (pulled, pushed)."""
        pulled = self.sync_from(peer)
        try:
            missing = self.updates_since(peer.summary())
            pushed = peer.apply_remote(missing) if missing else 0
        except Exception as exc:
            raise PeerUnavailable(f"push failed: {exc!r}") from exc
        return pulled, pushed


def restore_replica(
    fs: FileSystem,
    replica_id: str,
    source: object,
    **db_options: object,
) -> Replica:
    """Rebuild a replica from a peer after an unrecoverable hard error.

    .. deprecated::
        This whole-state path (wipe everything, replay the peer's entire
        history through ``apply_remote``) is superseded by the staged,
        resumable :class:`~repro.nameserver.recover.ReplicaRecoverer`,
        which ships the peer's *checkpoint* plus only the log tail, and
        survives crashes mid-restore.  This wrapper now routes through
        the recoverer; call it directly for peer selection, resumability
        and observability.

    The damaged on-disk state is discarded entirely (every file deleted)
    and the node is rebuilt from ``source``'s checkpoint and log tail.
    "This causes us to lose only those updates that had been applied to
    the damaged replica but not propagated to any other replica."
    """
    warnings.warn(
        "restore_replica is deprecated: use "
        "repro.nameserver.recover.ReplicaRecoverer, which resumes after "
        "crashes and ships a checkpoint instead of replaying all history",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.nameserver.recover import ReplicaRecoverer

    for name in list(fs.list_names()):
        fs.delete(name)
    fs.fsync_dir()
    recoverer = ReplicaRecoverer(
        fs,
        replica_id,
        [source],
        clock=db_options.get("clock"),
        registry=db_options.get("registry"),
        flight=db_options.get("flight"),
        db_options=db_options,
    )
    return recoverer.run()


class ReplicaGroup:
    """A convenience wrapper driving a whole replica set in simulation."""

    def __init__(self, replicas: list[Replica]) -> None:
        if not replicas:
            raise ValueError("a replica group needs at least one replica")
        self.replicas = list(replicas)
        for replica in self.replicas:
            for other in self.replicas:
                if other is not replica:
                    replica.add_peer(other)

    def propagate_all(self) -> int:
        return sum(replica.propagate() for replica in self.replicas)

    def anti_entropy_round(self) -> int:
        """One gossip round: each replica pulls from its ring successor."""
        moved = 0
        count = len(self.replicas)
        for index, replica in enumerate(self.replicas):
            moved += replica.sync_from(self.replicas[(index + 1) % count])
        return moved

    def converge(self, max_rounds: int = 10) -> int:
        """Run anti-entropy rounds until no records move."""
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            if self.anti_entropy_round() == 0:
                break
        return rounds

    def is_consistent(self) -> bool:
        """All replicas hold identical live name sets and version vectors."""
        baseline = self.replicas[0]
        base_tree = sorted(
            (list(p), v) for p, v in _entries(baseline)
        )
        base_vector = baseline.summary()
        for replica in self.replicas[1:]:
            if replica.summary() != base_vector:
                return False
            if sorted((list(p), v) for p, v in _entries(replica)) != base_tree:
                return False
        return True


def _entries(server: NameServer):
    return server.read_subtree(())


# -- graceful degradation -----------------------------------------------------

#: Exceptions that mean "the peer, or the path to it, failed" — everything
#: else (NameNotFound, NameExists…) is an application answer and proves the
#: peer healthy.  OSError covers raw socket/file failures from local peers.
COMMUNICATION_ERRORS = (PeerUnavailable, TransportError, OSError)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
RECOVERING = "recovering"


class CircuitBreaker:
    """A per-peer circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses traffic (no timeouts wasted on a dead
    peer) until ``reset_timeout_seconds`` have passed on the injected
    clock, after which probe calls are allowed (half-open).  The circuit
    closes only after ``success_threshold`` *consecutive* probe
    successes — a single lucky probe against a flapping peer must not
    re-admit full traffic — and any probe failure re-opens it for
    another full timeout.

    A fourth state, ``RECOVERING``, is entered explicitly via
    :meth:`mark_recovering` when the peer is being rebuilt by the
    replica recoverer: no traffic (not even probes) flows until
    :meth:`mark_recovered` — recovery completion, not elapsed time, is
    the only way out, mirroring the health state machine's rule that
    nothing self-promotes back to healthy.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 30.0,
        success_threshold: int = 2,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold counts from 1")
        if success_threshold < 1:
            raise ValueError("success_threshold counts from 1")
        if reset_timeout_seconds < 0:
            raise ValueError("reset timeout cannot be negative")
        self.clock = clock if clock is not None else WallClock()
        self.failure_threshold = failure_threshold
        self.success_threshold = success_threshold
        self.reset_timeout_seconds = reset_timeout_seconds
        self.state = CLOSED
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.times_opened = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Whether a call to this peer should be attempted now."""
        if self.state == RECOVERING:
            return False  # only mark_recovered() re-admits traffic
        if self.state == OPEN:
            if (
                self.clock.now() - self._opened_at
                >= self.reset_timeout_seconds
            ):
                self.state = HALF_OPEN  # probes may pass
                self.consecutive_successes = 0
                return True
            return False
        return True

    def record_success(self) -> None:
        if self.state == RECOVERING:
            return
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.consecutive_successes += 1
            if self.consecutive_successes >= self.success_threshold:
                self.state = CLOSED
                self.consecutive_successes = 0
        else:
            self.state = CLOSED

    def record_failure(self) -> None:
        if self.state == RECOVERING:
            return
        self.consecutive_failures += 1
        self.consecutive_successes = 0
        if (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            if self.state != OPEN:
                self.times_opened += 1
            self.state = OPEN
            self._opened_at = self.clock.now()

    def mark_recovering(self) -> None:
        """The peer is being rebuilt; quarantine it from all traffic."""
        self.state = RECOVERING
        self.consecutive_failures = 0
        self.consecutive_successes = 0

    def mark_recovered(self) -> None:
        """Recovery finished; the peer rejoins with a clean slate."""
        if self.state == RECOVERING:
            self.state = CLOSED
            self.consecutive_failures = 0
            self.consecutive_successes = 0


# -- anti-entropy tree comparison ---------------------------------------------
#
# Version vectors catch *missing updates*; they cannot catch silent
# divergence — two replicas whose vectors agree but whose trees differ
# (bit rot below the checksums, a buggy replay, operator surgery).  The
# Merkle digests exposed by ``tree_digest`` localise such a difference in
# O(depth) pairwise calls, and ``repair_leaves`` force-converges exactly
# the diverged bindings — no full snapshot transfer.


def diverged_leaf_paths(
    left: object, right: object, path: tuple = ()
) -> tuple[list[tuple[str, tuple]], int]:
    """Walk two peers' Merkle digests; localise every divergence.

    Returns ``(items, comparisons)`` where each item is ``("leaf", path)``
    — the single binding at ``path`` differs — or ``("subtree", path)``
    — the subtree exists on only one side and must be shipped whole.
    ``comparisons`` counts the ``tree_digest`` exchanges made (two per
    level on the diverged spine, so O(depth) per differing binding).
    """
    items: list[tuple[str, tuple]] = []
    comparisons = _diff_digests(left, right, path, items)
    return items, comparisons


def _diff_digests(
    left: object, right: object, path: tuple, items: list
) -> int:
    lrep = left.tree_digest(path)
    rrep = right.tree_digest(path)
    comparisons = 2
    if lrep["digest"] == rrep["digest"]:
        return comparisons
    if lrep["leaf"] != rrep["leaf"]:
        items.append(("leaf", path))
    lchildren = lrep["children"]
    rchildren = rrep["children"]
    for name in sorted(set(lchildren) | set(rchildren)):
        child = path + (name,)
        if name not in lchildren or name not in rchildren:
            items.append(("subtree", child))
        elif lchildren[name] != rchildren[name]:
            comparisons += _diff_digests(left, right, child, items)
    return comparisons


def repair_divergence(
    left: object, right: object, items: list[tuple[str, tuple]]
) -> int:
    """Cross-apply the diverged leaves both ways; returns leaves shipped.

    Both sides run the same deterministic ``ns_repair`` merge (stamp
    order, digest tiebreak on equal stamps), so after one exchange the
    pair agrees on every shipped binding regardless of which side's
    value wins.
    """
    shipped = 0
    for kind, path in items:
        left_leaves = left.read_leaves(path)
        right_leaves = right.read_leaves(path)
        if kind == "leaf":
            # Only the binding at the path itself; its children digests
            # matched, so shipping the subtree would be waste.
            left_leaves = [x for x in left_leaves if not list(x[0])]
            right_leaves = [x for x in right_leaves if not list(x[0])]
        to_left = _absolute(path, right_leaves)
        to_right = _absolute(path, left_leaves)
        if to_left:
            left.repair_leaves(to_left)
            shipped += len(to_left)
        if to_right:
            right.repair_leaves(to_right)
            shipped += len(to_right)
    return shipped


def _absolute(path: tuple, leaves: list) -> list:
    return [
        (tuple(path) + tuple(relative), value, lamport, origin, deleted)
        for relative, value, lamport, origin, deleted in leaves
    ]


@dataclass
class ReadResult:
    """A read served by a possibly-degraded replica group.

    ``degraded`` is True when the preferred (first listed) replica did not
    serve the read; ``lag`` then reports how many updates the serving
    replica is known to be missing relative to the freshest version
    vector the group has seen (0 = fully caught up as far as anyone
    knows, ``None`` = staleness could not be assessed).
    """

    value: object
    served_by: str
    degraded: bool = False
    lag: int | None = 0
    peers_tried: int = 1


@dataclass
class SyncReport:
    """Outcome of one degraded-tolerant anti-entropy round."""

    records_moved: int = 0
    peers_synced: int = 0
    peers_skipped: list[str] = field(default_factory=list)
    peers_failed: list[str] = field(default_factory=list)
    #: pairs whose version vectors agreed but whose tree digests did not
    tree_mismatches: int = 0
    #: bindings force-converged by the Merkle repair walk this round
    leaves_repaired: int = 0


class ResilientReplicaGroup:
    """Drives a replica set that keeps answering while peers fail.

    Where :class:`ReplicaGroup` assumes every replica is reachable (its
    sync raises :class:`PeerUnavailable` on first failure), this wrapper
    assumes failure is normal: each peer sits behind a
    :class:`CircuitBreaker`, reads fail over to live peers with explicit
    staleness reporting (:class:`ReadResult`), updates fail over to the
    first live peer, and anti-entropy skips broken peers instead of
    aborting the round.  Peers may be local :class:`Replica` objects,
    :class:`~repro.nameserver.client.RemoteNameServer` proxies, or any
    mix — all that is required is the replication hook surface.
    """

    def __init__(
        self,
        peers: list[object],
        peer_ids: list[str] | None = None,
        clock: Clock | None = None,
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 30.0,
        success_threshold: int = 2,
        track_staleness: bool = True,
        anti_entropy_repair: bool = True,
        registry: MetricsRegistry | None = None,
        flight=None,
    ) -> None:
        if not peers:
            raise ValueError("a replica group needs at least one peer")
        #: when False, reads skip the extra ``summary()`` round trip and
        #: report ``lag=None`` (cheaper, but staleness is unassessed)
        self.track_staleness = track_staleness
        self.peers = list(peers)
        if peer_ids is None:
            peer_ids = [
                str(getattr(peer, "replica_id", f"peer{i}"))
                for i, peer in enumerate(self.peers)
            ]
        if len(peer_ids) != len(self.peers):
            raise ValueError("one peer_id per peer")
        self.peer_ids = list(peer_ids)
        self.clock = clock if clock is not None else WallClock()
        #: when False, sync rounds skip the Merkle digest comparison (the
        #: version-vector gossip still runs)
        self.anti_entropy_repair = anti_entropy_repair
        self.breakers = {
            peer_id: CircuitBreaker(
                self.clock,
                failure_threshold,
                reset_timeout_seconds,
                success_threshold,
            )
            for peer_id in self.peer_ids
        }
        self.last_errors: dict[str, str | None] = {
            peer_id: None for peer_id in self.peer_ids
        }
        #: freshest version vector observed from any peer (origin → seq)
        self.best_vector: dict[str, int] = {}
        self.registry = registry if registry is not None else MetricsRegistry(
            clock=self.clock
        )
        #: optional :class:`~repro.obs.flight.FlightRecorder`: breaker
        #: flips and failovers join the shared black-box timeline.
        self.flight = flight
        self._failovers = self.registry.counter(
            "replication_failovers_total",
            "Reads or updates served by a non-preferred replica.",
        )
        self._breaker_state = self.registry.gauge(
            "replication_breaker_state",
            "Per-peer circuit state: 0 closed, 1 half-open, 2 open, "
            "3 recovering.",
            labelnames=("peer",),
        )
        self._breaker_opens = self.registry.counter(
            "replication_breaker_opens_total",
            "Circuit-breaker open transitions per peer.",
            labelnames=("peer",),
        )
        self._staleness_lag = self.registry.gauge(
            "replication_staleness_lag",
            "Updates the serving replica is known to be missing.",
            labelnames=("peer",),
        )
        self._degraded_rejections = self.registry.counter(
            "replication_degraded_writes_total",
            "Updates refused by a degraded read-only replica and failed "
            "over to a peer.",
            labelnames=("peer",),
        )
        self._tree_mismatches = self.registry.counter(
            "replication_tree_mismatches_total",
            "Sync pairs whose version vectors agreed but whose Merkle "
            "tree digests did not (silent divergence detected).",
        )
        self._tree_repairs = self.registry.counter(
            "replication_tree_repairs_total",
            "Merkle repair walks that force-converged a diverged pair.",
        )
        self._repair_leaves_shipped = self.registry.counter(
            "replication_repair_leaves_shipped_total",
            "Bindings shipped by anti-entropy tree repair (not whole "
            "snapshots).",
        )
        self._breaker_state_series = {
            peer_id: self._breaker_state.labels(peer_id)
            for peer_id in self.peer_ids
        }
        self._breaker_open_counts = {
            peer_id: self._breaker_opens.labels(peer_id)
            for peer_id in self.peer_ids
        }
        self._breaker_last_state = {
            peer_id: self.breakers[peer_id].state
            for peer_id in self.peer_ids
        }

    @property
    def failovers(self) -> int:
        return int(self._failovers.value)

    # -- plumbing -------------------------------------------------------------

    def _available(self) -> list[tuple[int, str, object]]:
        return [
            (index, peer_id, peer)
            for index, (peer_id, peer) in enumerate(
                zip(self.peer_ids, self.peers)
            )
            if self._allow(peer_id)
        ]

    _STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2, RECOVERING: 3}

    def _allow(self, peer_id: str) -> bool:
        allowed = self.breakers[peer_id].allow()
        self._note_breaker(peer_id)  # allow() may flip open → half-open
        return allowed

    def _note_breaker(self, peer_id: str) -> None:
        state = self.breakers[peer_id].state
        self._breaker_state_series[peer_id].set(self._STATE_CODES[state])
        previous = self._breaker_last_state[peer_id]
        if state != previous:
            self._breaker_last_state[peer_id] = state
            if self.flight is not None:
                self.flight.record(
                    "breaker_transition",
                    peer=peer_id,
                    from_state=previous,
                    to_state=state,
                )

    def _success(self, peer_id: str) -> None:
        self.breakers[peer_id].record_success()
        self.last_errors[peer_id] = None
        self._note_breaker(peer_id)

    def _failure(self, peer_id: str, exc: Exception) -> None:
        breaker = self.breakers[peer_id]
        opened_before = breaker.times_opened
        breaker.record_failure()
        if breaker.times_opened > opened_before:
            self._breaker_open_counts[peer_id].inc(
                breaker.times_opened - opened_before
            )
        self.last_errors[peer_id] = repr(exc)
        self._note_breaker(peer_id)

    def _note_vector(self, vector: dict[str, int]) -> None:
        for origin, seq in vector.items():
            if seq > self.best_vector.get(origin, -1):
                self.best_vector[origin] = seq

    def _lag_of(self, vector: dict[str, int]) -> int:
        return sum(
            best - vector.get(origin, 0)
            for origin, best in self.best_vector.items()
            if best > vector.get(origin, 0)
        )

    # -- degraded reads -------------------------------------------------------

    def read(self, method: str, *args: object) -> ReadResult:
        """Serve one enquiry from the first live peer, reporting staleness.

        Application-level errors (``NameNotFound``…) propagate untouched:
        they are answers, not failures.  Communication failures rotate to
        the next peer — including :class:`CallMaybeExecuted`, which is
        harmless for an enquiry (re-asking elsewhere has no side effect,
        unlike :meth:`update`) — and only when every peer is broken does
        :class:`AllPeersUnavailable` surface.
        """
        candidates = self._available()
        tried = 0
        for index, peer_id, peer in candidates:
            tried += 1
            try:
                value = getattr(peer, method)(*args)
                vector = dict(peer.summary()) if self.track_staleness else None
            except (CallMaybeExecuted, *COMMUNICATION_ERRORS) as exc:
                self._failure(peer_id, exc)
                continue
            self._success(peer_id)
            lag = None
            if vector is not None:
                self._note_vector(vector)
                lag = self._lag_of(vector)
                self._staleness_lag.labels(peer_id).set(lag)
            degraded = index != 0
            if degraded:
                self._failovers.inc()
                if self.flight is not None:
                    self.flight.record(
                        "replica_failover",
                        kind="read",
                        method=method,
                        served_by=peer_id,
                    )
            return ReadResult(
                value=value,
                served_by=peer_id,
                degraded=degraded,
                lag=lag,
                peers_tried=tried,
            )
        raise AllPeersUnavailable(
            f"no replica answered {method!r}: "
            f"{len(candidates)} tried, "
            f"{len(self.peers) - len(candidates)} circuit-broken"
        )

    def lookup(self, path) -> ReadResult:
        return self.read("lookup", path)

    def exists(self, path) -> ReadResult:
        return self.read("exists", path)

    def list_dir(self, path=()) -> ReadResult:
        return self.read("list_dir", path)

    def count(self) -> ReadResult:
        return self.read("count")

    # -- updates with failover ------------------------------------------------

    def update(self, method: str, *args: object) -> str:
        """Apply one update at the first live peer; returns its peer id.

        A :class:`~repro.rpc.errors.CallMaybeExecuted` from a remote peer
        is *not* grounds for failover — blindly reissuing elsewhere could
        apply the update twice under two origins — so it propagates to the
        caller, who can retry through the same client safely.

        A :class:`~repro.core.errors.DatabaseDegraded` answer means the
        peer is alive but its storage refuses writes (degraded
        read-only): the update fails over to the next peer *without*
        opening the circuit breaker, so reads keep flowing to the
        degraded replica while writes route around it.
        """
        candidates = self._available()
        degraded: list[str] = []
        for index, peer_id, peer in candidates:
            try:
                getattr(peer, method)(*args)
            except DatabaseDegraded as exc:
                # Write-unavailable, not dead: the update never executed
                # (it was refused up front), so reissuing elsewhere is
                # safe, and the breaker stays closed for enquiries.
                self.last_errors[peer_id] = repr(exc)
                self._degraded_rejections.labels(peer_id).inc()
                degraded.append(peer_id)
                continue
            except COMMUNICATION_ERRORS as exc:
                # CallMaybeExecuted is RpcError, not TransportError, so it
                # is never swallowed here.
                self._failure(peer_id, exc)
                continue
            self._success(peer_id)
            if index != 0:
                self._failovers.inc()
                if self.flight is not None:
                    self.flight.record(
                        "replica_failover",
                        kind="update",
                        method=method,
                        served_by=peer_id,
                    )
            return peer_id
        raise AllPeersUnavailable(
            f"no replica accepted {method!r}: "
            f"{len(candidates)} tried ({len(degraded)} degraded "
            f"read-only), {len(self.peers) - len(candidates)} "
            f"circuit-broken"
        )

    def bind(self, path, value, exclusive: bool = False) -> str:
        return self.update("bind", path, value, exclusive)

    def unbind(self, path) -> str:
        return self.update("unbind", path)

    # -- degraded anti-entropy ------------------------------------------------

    def sync_round(self) -> SyncReport:
        """One gossip ring pass that tolerates broken peers.

        Each live peer pulls from its nearest live ring successor; broken
        peers are reported in the result instead of aborting the round
        (contrast :meth:`ReplicaGroup.anti_entropy_round`).
        """
        report = SyncReport()
        live = self._available()
        broken = set(self.peer_ids) - {peer_id for _, peer_id, _ in live}
        report.peers_skipped = sorted(broken)
        if len(live) < 2:
            return report
        for position, (_, peer_id, peer) in enumerate(live):
            _, source_id, source = live[(position + 1) % len(live)]
            try:
                records = source.updates_since(peer.summary())
                moved = peer.apply_remote(records) if records else 0
                peer_vector = dict(peer.summary())
                self._note_vector(peer_vector)
                self._tree_repair_pass(
                    peer_id, peer, source_id, source, peer_vector, report
                )
            except (CallMaybeExecuted, *COMMUNICATION_ERRORS) as exc:
                # An ambiguous apply_remote is tolerable here: remote
                # apply is idempotent (version-vector filtered), so the
                # next round converges regardless.
                # Attribute the failure to whichever side broke; opening
                # both is safe (each will be re-probed) but imprecise.
                self._failure(peer_id, exc)
                self._failure(source_id, exc)
                report.peers_failed.append(peer_id)
                continue
            self._success(peer_id)
            self._success(source_id)
            report.peers_synced += 1
            report.records_moved += moved
        return report

    def _tree_repair_pass(
        self,
        peer_id: str,
        peer: object,
        source_id: str,
        source: object,
        peer_vector: dict[str, int],
        report: SyncReport,
    ) -> None:
        """Merkle-compare a synced pair; force-converge silent divergence.

        Only meaningful once the pair's version vectors agree — while
        records are still flowing, differing trees are expected, and the
        next round compares again.  Peers predating the repair surface
        (no ``tree_digest``) are skipped silently: the interface extends
        wire-compatibly.
        """
        if not self.anti_entropy_repair:
            return
        if not hasattr(peer, "tree_digest") or not hasattr(
            source, "tree_digest"
        ):
            return
        if peer_vector != dict(source.summary()):
            return
        if peer.tree_digest()["digest"] == source.tree_digest()["digest"]:
            return
        report.tree_mismatches += 1
        self._tree_mismatches.inc()
        if self.flight is not None:
            self.flight.record(
                "tree_divergence", peer=peer_id, source=source_id
            )
        items, comparisons = diverged_leaf_paths(peer, source)
        shipped = repair_divergence(peer, source, items)
        report.leaves_repaired += shipped
        self._tree_repairs.inc()
        self._repair_leaves_shipped.inc(shipped)
        if self.flight is not None:
            self.flight.record(
                "tree_repair",
                peer=peer_id,
                source=source_id,
                leaves_shipped=shipped,
                comparisons=comparisons,
            )

    # -- replica recovery -----------------------------------------------------

    def mark_recovering(self, peer_id: str) -> None:
        """Quarantine ``peer_id`` while the recoverer rebuilds it.

        Reads, updates and sync rounds all skip a RECOVERING peer; unlike
        OPEN there is no timed re-probe — only :meth:`mark_recovered`
        (recovery completion) re-admits traffic.
        """
        self.breakers[peer_id].mark_recovering()
        self._note_breaker(peer_id)

    def mark_recovered(self, peer_id: str, peer: object = None) -> None:
        """Re-admit a rebuilt peer, optionally swapping in its new handle.

        Cutover produces a *new* replica object (the old one was closed
        with its damaged database); pass it as ``peer`` so subsequent
        reads and syncs reach the rebuilt instance.
        """
        if peer is not None:
            self.peers[self.peer_ids.index(peer_id)] = peer
        self.breakers[peer_id].mark_recovered()
        self.last_errors[peer_id] = None
        self._note_breaker(peer_id)

    # -- observability --------------------------------------------------------

    def status(self) -> dict[str, dict[str, object]]:
        """Per-peer circuit state and last error, for operators."""
        return {
            peer_id: {
                "state": self.breakers[peer_id].state,
                "consecutive_failures": self.breakers[
                    peer_id
                ].consecutive_failures,
                "times_opened": self.breakers[peer_id].times_opened,
                "last_error": self.last_errors[peer_id],
            }
            for peer_id in self.peer_ids
        }
