"""The name server's single-shot transactions.

All updates flow through exactly two registered operations:

* ``ns_local`` — an update originated at this replica.  It assigns the
  update an identity ``(replica_id, seq)`` and a Lamport stamp, performs
  the action, and records the update in the replication history.  Both
  counters live *inside the root*, so a log replay regenerates identical
  ids and stamps — the determinism the replay contract requires.

* ``ns_remote`` — a batch of updates received from a peer replica.
  Idempotent (already-applied ids are skipped) and commutative per name
  (last-writer-wins by ``(lamport, origin)``), which is what lets the
  anti-entropy protocol run in any order and still converge.

Two further operations serve replica repair (they do not originate new
history records):

* ``ns_identity`` — administrative: reclaim this node's own replica id
  after a snapshot import.  A shipped checkpoint carries the *peer's*
  ``replica`` field; the recoverer logs this as the first entry of the
  staged log so the cut-over replica originates updates under its own id
  with a ``next_seq`` past anything the group has seen from it.

* ``ns_repair`` — anti-entropy convergence for *silent* divergence: a
  batch of authoritative leaves (tombstones included) force-written with
  a deterministic tiebreak.  Plain last-writer-wins cannot resolve two
  leaves carrying the *same* stamp but different values (exactly what
  silent corruption produces), so equal stamps fall back to comparing
  value digests — both sides converge to the same winner.

The database root is a dictionary::

    {
        "replica":  str,                  # this replica's id
        "lamport":  int,                  # Lamport clock
        "next_seq": int,                  # local update counter
        "tree":     Node,                 # the tree of hash tables
        "applied":  set[(origin, seq)],   # update ids seen
        "vector":   {origin: max seq},    # version vector (for sync)
        "history":  [(id, lamport, action, params), ...],
    }

Actions (the ``action``/``params`` pairs):

* ``("bind", (path, value, exclusive))`` — bind a value at a path;
* ``("unbind", (path,))`` — tombstone one binding;
* ``("unbind_subtree", (path,))`` — tombstone everything at/below a path;
* ``("write_subtree", (path, entries))`` — replace a whole subtree: every
  existing live leaf below the path is tombstoned unless re-bound by
  ``entries`` (a list of ``(relative path, value)`` pairs).  This is the
  paper's "update operations for any set of sub-trees" as one single-shot
  transaction — one log entry, one disk write.
"""

from __future__ import annotations

from repro.core.transactions import OperationRegistry
from repro.nameserver.errors import BadPath, NameExists, NameNotFound
from repro.nameserver.tree import (
    Leaf,
    Node,
    Path,
    ensure_node,
    find_node,
    iter_leaves,
    leaf_digest,
    live_leaf,
    parse_path,
)

NAMESERVER_OPS = OperationRegistry()

#: A history record: (update id, lamport, action, params)
Record = tuple[tuple[str, int], int, str, tuple]


def new_root(replica_id: str = "primary") -> dict:
    """A fresh name server database root."""
    if not replica_id:
        raise ValueError("replica_id must be non-empty")
    return {
        "replica": replica_id,
        "lamport": 0,
        "next_seq": 1,
        "tree": Node(),
        "applied": set(),
        "vector": {},
        "history": [],
    }


@NAMESERVER_OPS.operation("ns_local")
def ns_local(root: dict, action: str, params: tuple):
    """Apply a locally originated update; returns its update id."""
    seq = root["next_seq"]
    root["next_seq"] = seq + 1
    root["lamport"] += 1
    lamport = root["lamport"]
    origin = root["replica"]
    update_id = (origin, seq)
    _perform(root["tree"], action, params, lamport, origin)
    _record(root, update_id, lamport, action, params)
    return update_id


@ns_local.precondition
def _ns_local_pre(root: dict, action: str, params: tuple) -> None:
    tree = root["tree"]
    if action == "bind":
        path, _value, exclusive = params
        _validate(path)
        if exclusive and live_leaf(tree, path) is not None:
            raise NameExists(path)
    elif action == "unbind":
        (path,) = params
        _validate(path)
        if live_leaf(tree, path) is None:
            raise NameNotFound(path)
    elif action == "unbind_subtree":
        (path,) = params
        _validate(path)
        node = find_node(tree, path)
        if node is None or not any(True for _ in iter_leaves(node)):
            raise NameNotFound(path)
    elif action == "write_subtree":
        path, entries = params
        _validate(path)
        for relative, _value in entries:
            _validate(path + tuple(relative))
    else:
        raise BadPath(f"unknown action {action!r}")


@NAMESERVER_OPS.operation("ns_remote")
def ns_remote(root: dict, records: list[Record]) -> int:
    """Apply a batch of peer updates; returns how many were new."""
    fresh = 0
    for update_id, lamport, action, params in records:
        update_id = tuple(update_id)
        if update_id in root["applied"]:
            continue
        root["lamport"] = max(root["lamport"], lamport)
        origin, seq = update_id
        if origin == root["replica"] and seq >= root["next_seq"]:
            # A restored replica re-learns its own past updates from a
            # peer; later local updates must not reuse those ids.
            root["next_seq"] = seq + 1
        _perform(root["tree"], action, params, lamport, origin)
        _record(root, update_id, lamport, action, params)
        fresh += 1
    return fresh


@NAMESERVER_OPS.operation("ns_identity")
def ns_identity(root: dict, replica_id: str) -> None:
    """Reclaim ``replica_id`` as this root's own identity after a restore.

    Deterministic in root + args (the replay contract): the new
    ``next_seq`` continues from whatever the imported state has already
    seen from this origin, so re-learned own updates are never reissued
    under a reused id.
    """
    if not replica_id:
        raise ValueError("replica_id must be non-empty")
    root["replica"] = replica_id
    root["next_seq"] = max(
        root["next_seq"], root["vector"].get(replica_id, 0) + 1
    )


#: A repair leaf: (path, value, lamport, origin, deleted)
RepairLeaf = tuple[tuple, object, int, str, bool]


@NAMESERVER_OPS.operation("ns_repair")
def ns_repair(root: dict, leaves: list[RepairLeaf]) -> int:
    """Force-converge a batch of leaves; returns how many changed.

    Unlike ``ns_remote`` this ships *state*, not history: the winning
    leaf is written even when the local stamp ties it, using the digest
    tiebreak below.  History, ``applied`` and the version vector are
    untouched — repair fixes silent divergence without inventing update
    records.

    The local Lamport clock *is* advanced past every incoming stamp
    (the standard receive rule, same as ``ns_remote``).  Without it a
    fresh replica bulk-loaded by repair — a shard-migration target, say
    — would issue its own subsequent updates with *lower* stamps than
    the imported state, and last-writer-wins would silently discard
    those acked writes.
    """
    changed = 0
    tree = root["tree"]
    for path, value, lamport, origin, deleted in leaves:
        incoming = Leaf(value, int(lamport), origin, bool(deleted))
        if incoming.lamport > root["lamport"]:
            root["lamport"] = incoming.lamport
        node = ensure_node(tree, tuple(path))
        if _repair_wins(incoming, node.leaf):
            node.leaf = incoming
            changed += 1
    return changed


@ns_repair.precondition
def _ns_repair_pre(root: dict, leaves: list[RepairLeaf]) -> None:
    for path, _value, _lamport, origin, _deleted in leaves:
        _validate(tuple(path))
        if not origin:
            raise BadPath(f"repair leaf at {path!r} has an empty origin")


@NAMESERVER_OPS.operation("ns_purge")
def ns_purge(root: dict, components: list[str]) -> int:
    """Drop whole top-level subtrees structurally; returns leaves removed.

    The donor side of a shard migration: after cutover the donor no
    longer owns these components, and keeping the data (even as
    tombstones) would double-count scatter enquiries and leak memory.
    Like ``ns_repair`` this ships *state*, not history — no tombstones
    are written and no update records are invented, because ownership of
    the keys has moved to another shard entirely; replicas of the donor
    converge by applying the same purge.
    """
    removed = 0
    tree = root["tree"]
    for component in components:
        node = tree.children.pop(str(component), None)
        if node is not None:
            removed += sum(
                1 for _ in iter_leaves(node, include_tombstones=True)
            )
    return removed


@ns_purge.precondition
def _ns_purge_pre(root: dict, components: list[str]) -> None:
    for component in components:
        if not isinstance(component, str) or not component or "/" in component:
            raise BadPath(component)


def _repair_wins(incoming: Leaf, existing: Leaf | None) -> bool:
    """Whether an incoming repair leaf replaces the local one.

    Higher ``(lamport, origin)`` stamp wins as usual; *equal* stamps with
    differing content fall back to comparing full leaf digests, so two
    silently diverged replicas running repair against each other settle
    on one value instead of each keeping its own.
    """
    if existing is None:
        return True
    if incoming.stamp() != existing.stamp():
        return incoming.stamp() > existing.stamp()
    theirs = leaf_digest(incoming)
    ours = leaf_digest(existing)
    return theirs > ours


def _record(
    root: dict, update_id: tuple[str, int], lamport: int, action: str, params: tuple
) -> None:
    root["applied"].add(update_id)
    origin, seq = update_id
    if seq > root["vector"].get(origin, 0):
        root["vector"][origin] = seq
    root["history"].append((update_id, lamport, action, params))


def _validate(path: object) -> Path:
    return parse_path(path)


def _perform(
    tree: Node, action: str, params: tuple, lamport: int, origin: str
) -> None:
    if action == "bind":
        path, value, _exclusive = params
        _set_leaf(tree, tuple(path), value, lamport, origin, deleted=False)
    elif action == "unbind":
        (path,) = params
        _set_leaf(tree, tuple(path), None, lamport, origin, deleted=True)
    elif action == "unbind_subtree":
        (path,) = params
        node = find_node(tree, tuple(path))
        if node is not None:
            for relative, _leaf in list(iter_leaves(node)):
                _set_leaf(
                    tree, tuple(path) + relative, None, lamport, origin, deleted=True
                )
    elif action == "write_subtree":
        path, entries = params
        base = tuple(path)
        kept = {base + tuple(relative) for relative, _value in entries}
        node = find_node(tree, base)
        if node is not None:
            for relative, _leaf in list(iter_leaves(node)):
                absolute = base + relative
                if absolute not in kept:
                    _set_leaf(tree, absolute, None, lamport, origin, deleted=True)
        for relative, value in entries:
            _set_leaf(tree, base + tuple(relative), value, lamport, origin, False)
    else:
        raise ValueError(f"unknown action {action!r}")


def _set_leaf(
    tree: Node,
    path: Path,
    value: object,
    lamport: int,
    origin: str,
    deleted: bool,
) -> None:
    """Write a leaf (or tombstone) if the stamp wins; last writer wins.

    The comparison key is ``(lamport, origin)``: Lamport order first, the
    origin id as a deterministic tiebreak, so every replica resolves a
    conflict identically.
    """
    node = ensure_node(tree, path)
    existing = node.leaf
    if existing is not None and existing.stamp() >= (lamport, origin):
        return
    node.leaf = Leaf(value, lamport, origin, deleted)


def updates_since(root: dict, vector: dict[str, int]) -> list[Record]:
    """History records the holder of ``vector`` has not seen."""
    return [
        record
        for record in root["history"]
        if record[0][1] > vector.get(record[0][0], 0)
    ]
