"""The rival techniques of the paper's section 2, plus ours, comparable.

Four engines behind one key-value interface over the same storage
substrate:

* :class:`TextFileDB` — parse-on-read, rewrite-whole-file-on-update,
  committed by atomic rename (the /etc/passwd technique);
* :class:`AdHocPagedDB` — custom paged records updated in place, one disk
  write per update, no commit protocol (crash-fragile);
* :class:`AtomicCommitDB` — write-ahead redo log plus in-place data
  pages: two disk writes per update, reliable;
* :class:`CheckpointLogDB` — the paper's technique: one disk write per
  update *and* reliable.
"""

from repro.baselines.adhoc import AdHocPagedDB
from repro.baselines.interface import (
    BaselineError,
    CorruptStore,
    KVStore,
    KeyNotFound,
)
from repro.baselines.ours import CheckpointLogDB
from repro.baselines.paged import PagedFile, Span, decode_record, encode_record
from repro.baselines.textfile import TextFileDB
from repro.baselines.twophase import AtomicCommitDB

ALL_ENGINES = (TextFileDB, AdHocPagedDB, AtomicCommitDB, CheckpointLogDB)

__all__ = [
    "ALL_ENGINES",
    "AdHocPagedDB",
    "AtomicCommitDB",
    "BaselineError",
    "CheckpointLogDB",
    "CorruptStore",
    "KVStore",
    "KeyNotFound",
    "PagedFile",
    "Span",
    "TextFileDB",
    "decode_record",
    "encode_record",
]
