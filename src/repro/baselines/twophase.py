"""Baseline 3: atomic commit with a redo log (paper section 2, third).

    More sophisticated database systems overcome these problems by
    implementing update transactions with an atomic commit mechanism. […]
    A naive implementation of atomic commit will require two disk writes:
    one for the commit record (and log entry) and one for updating the
    actual data.  This is somewhat more complicated than a system without
    atomic commit, has much better reliability, and performs about a
    factor of two worse for updates.

This is that naive-but-correct implementation: the same paged data file
as the ad hoc scheme, plus a write-ahead redo log.

* **Update** = append the full intention (span to write, bytes, spans to
  free) to the log and fsync (commit point, disk write #1), then apply
  the in-place page writes and fsync (disk write #2).
* **Recovery** = rescan the data file, then *redo* every logged intention
  in order (idempotent: they carry absolute spans and full contents),
  fsync the data, and clear the log.
* The log is compacted whenever it grows past a threshold, since every
  applied intention is subsumed by the data file once it is fsynced.

The log entry framing reuses the core's checksummed
:class:`~repro.core.log.LogWriter`, which is exactly the reuse the paper
attributes to its own "package for checkpoints and logs".
"""

from __future__ import annotations

from repro.baselines.interface import KVStore, KeyNotFound, check_key, check_value
from repro.baselines.paged import PagedFile, Span, encode_record, pages_needed
from repro.core.log import LogScan, LogWriter
from repro.pickles import pickle_read, pickle_write
from repro.storage.interface import FileSystem

_DATA = "data.dat"
_WAL = "commitlog"
_COMPACT_THRESHOLD = 64 * 1024


class AtomicCommitDB(KVStore):
    """Two disk writes per update: commit record, then data in place."""

    technique = "atomic-commit"

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self.pages = PagedFile(fs, _DATA)
        self._recover()
        self.wal = LogWriter(fs, _WAL, page_size=self.pages.page_size)

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> None:
        """Redo logged intentions over the scanned data file."""
        if not self.fs.exists(_WAL):
            return
        scan = LogScan(self.fs, _WAL)
        replayed = 0
        for entry in scan:
            intention = pickle_read(entry.payload)
            self._apply(intention)
            replayed += 1
        if replayed:
            self.pages.sync()
            self._rebuild_index()
        # The log's content is now subsumed by the data file.
        self.fs.write(_WAL, b"")
        self.fs.fsync(_WAL)

    def _rebuild_index(self) -> None:
        fresh = PagedFile(self.fs, _DATA)
        self.pages.index = fresh.index
        self.pages.free = fresh.free
        self.pages.total_pages = fresh.total_pages

    # -- the two-write update protocol ----------------------------------------------

    def _commit(self, intention: dict) -> None:
        # Disk write #1: the commit record.
        self.wal.append(pickle_write(intention))
        # Disk write #2: the data pages.
        self._apply(intention)
        self.pages.sync()
        if self.wal.size() > _COMPACT_THRESHOLD:
            self._compact()

    def _apply(self, intention: dict) -> None:
        for first_page, npages, record in intention["writes"]:
            self.pages.write_span(Span(first_page, npages), record)
        for first_page, npages in intention["frees"]:
            self.pages.free_span(Span(first_page, npages))

    def _compact(self) -> None:
        """Clear the applied log (its effects are durably in the data)."""
        self.fs.write(_WAL, b"")
        self.fs.fsync(_WAL)
        self.wal = LogWriter(self.fs, _WAL, page_size=self.pages.page_size)

    # -- KV interface ------------------------------------------------------------------

    def get(self, key: str) -> str:
        check_key(key)
        span = self.pages.index.get(key)
        if span is None:
            raise KeyNotFound(key)
        _key, value = self.pages.read_record(span)
        return value

    def keys(self) -> list[str]:
        return sorted(self.pages.index)

    def set(self, key: str, value: str) -> None:
        check_key(key)
        check_value(value)
        record = encode_record(key, value)
        npages = pages_needed(len(record), self.pages.page_size)
        existing = self.pages.index.get(key)
        if existing is not None and existing.npages == npages:
            span = existing
            frees: list[tuple[int, int]] = []
        else:
            span = self.pages.allocate_span(npages)
            frees = (
                [(existing.first_page, existing.npages)]
                if existing is not None
                else []
            )
        self._commit(
            {
                "writes": [(span.first_page, span.npages, record)],
                "frees": frees,
            }
        )
        self.pages.index[key] = span

    def delete(self, key: str) -> None:
        check_key(key)
        span = self.pages.index.get(key)
        if span is None:
            raise KeyNotFound(key)
        self._commit({"writes": [], "frees": [(span.first_page, span.npages)]})
        del self.pages.index[key]
