"""Baseline 1: the flat text file (paper section 2, first technique).

    In relatively simple operating systems such as Unix, almost all
    databases are stored as ordinary text files (for example /etc/passwd
    …).  Whenever a program wishes to access the data it does so by
    reading and parsing the file. […] An update involves rewriting the
    entire file. […] The reliability of updates in the face of transient
    errors can be made quite good, by using an atomic file rename
    operation to install a new version of the file.

Faithfully reproduced properties:

* every enquiry re-reads and re-parses the whole file (there is no
  resident state at all — the "program" runs afresh each time);
* every update rewrites the whole file to a scratch name, fsyncs, then
  atomically renames it over the old version — safe but O(database) disk
  traffic per update;
* hard errors are unrecoverable without a backup copy.

Format: one ``key=value\\n`` line per entry, values escaped so they may
contain newlines and non-ASCII text.
"""

from __future__ import annotations

from repro.baselines.interface import (
    CorruptStore,
    KVStore,
    KeyNotFound,
    check_key,
    check_value,
)
from repro.storage.interface import FileSystem

_DATA = "data.txt"
_SCRATCH = "data.txt.new"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace("=", "\\e")


def _unescape(value: str) -> str:
    out = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\":
            index += 1
            if index >= len(value):
                raise CorruptStore("dangling escape in value")
            code = value[index]
            if code == "n":
                out.append("\n")
            elif code == "e":
                out.append("=")
            elif code == "\\":
                out.append("\\")
            else:
                raise CorruptStore(f"bad escape \\{code}")
        else:
            out.append(ch)
        index += 1
    return "".join(out)


class TextFileDB(KVStore):
    """The /etc/passwd technique: parse on read, rewrite on update."""

    technique = "textfile"

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        if not fs.exists(_DATA):
            fs.write(_DATA, b"")
            fs.fsync(_DATA)
        # A crash may have left a scratch file from an unfinished update;
        # it is simply discarded (the rename never happened).
        fs.delete_if_exists(_SCRATCH)

    # -- reads (parse the file every time) -------------------------------------

    def _parse(self) -> dict[str, str]:
        text = self.fs.read(_DATA).decode("utf-8")
        entries: dict[str, str] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line:
                continue
            key, sep, raw = line.partition("=")
            if not sep:
                raise CorruptStore(f"line {lineno}: no separator")
            entries[key] = _unescape(raw)
        return entries

    def get(self, key: str) -> str:
        check_key(key)
        entries = self._parse()
        if key not in entries:
            raise KeyNotFound(key)
        return entries[key]

    def keys(self) -> list[str]:
        return sorted(self._parse())

    # -- updates (rewrite the whole file, commit by rename) ----------------------

    def _rewrite(self, entries: dict[str, str]) -> None:
        lines = [f"{key}={_escape(entries[key])}\n" for key in sorted(entries)]
        payload = "".join(lines).encode("utf-8")
        self.fs.write(_SCRATCH, payload)
        self.fs.fsync(_SCRATCH)
        self.fs.rename(_SCRATCH, _DATA)
        self.fs.fsync_dir()

    def set(self, key: str, value: str) -> None:
        check_key(key)
        check_value(value)
        entries = self._parse()
        entries[key] = value
        self._rewrite(entries)

    def delete(self, key: str) -> None:
        check_key(key)
        entries = self._parse()
        if key not in entries:
            raise KeyNotFound(key)
        del entries[key]
        self._rewrite(entries)
