"""The common face of the rival techniques (paper section 2).

Every baseline implements the same small key-value contract over the same
:class:`~repro.storage.interface.FileSystem` substrate the real database
uses, so experiment E7's comparison — disk writes per update, update
latency, reliability class — is internally valid.

Keys are non-empty strings without newlines; values are strings.  (The
paper's rivals store text or fixed records; the string restriction is
theirs, not ours — the checkpoint+log engine itself stores arbitrary
typed structures.)
"""

from __future__ import annotations


class BaselineError(Exception):
    """Base class for baseline engine errors."""


class KeyNotFound(BaselineError):
    def __init__(self, key: str) -> None:
        super().__init__(f"no such key: {key!r}")
        self.key = key


class CorruptStore(BaselineError):
    """The on-disk structure failed validation during open or read."""


class KVStore:
    """Minimal key-value database interface shared by all engines."""

    #: short identifier used in benchmark tables
    technique = "abstract"

    def get(self, key: str) -> str:
        raise NotImplementedError

    def set(self, key: str, value: str) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; committed data must already be durable."""

    def __len__(self) -> int:
        return len(self.keys())


def check_key(key: str) -> str:
    if not isinstance(key, str) or not key or "\n" in key or "=" in key:
        raise BaselineError(f"bad key: {key!r}")
    return key


def check_value(value: str) -> str:
    if not isinstance(value, str):
        raise BaselineError(f"bad value (must be str): {value!r}")
    return value
