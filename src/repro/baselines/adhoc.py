"""Baseline 2: the ad hoc paged scheme (paper section 2, second technique).

    The corresponding databases in larger scale operating systems are
    often implemented by ad hoc schemes, involving a custom designed data
    representation in a disk file, and specialized code for accessing and
    modifying the data. […] updates are typically performed by
    overwriting existing data in place.  This leaves the database quite
    vulnerable to transient errors […] particularly true if the update
    modifies multiple pages. […] The performance of these databases is
    generally quite good for updates, requiring typically one disk write
    per update.

Faithfully reproduced properties:

* one fsync per update, overwriting the record's pages in place;
* a record that outgrows its span moves: the new span is written and the
  old span freed under the *same* fsync, so a crash in between leaves
  either a duplicate (resolved at scan time) or a torn record;
* a crash mid-way through a multi-page in-place overwrite leaves a
  half-old half-new record with no way to tell — the scan only notices
  when the bytes fail to decode, and silently returns merged garbage
  when they happen to parse (experiment E11 exhibits both);
* recovery is just re-scanning the file; anything unreadable is lost.
"""

from __future__ import annotations

from repro.baselines.interface import KVStore, KeyNotFound, check_key, check_value
from repro.baselines.paged import PagedFile, encode_record, pages_needed
from repro.storage.interface import FileSystem

_FILE = "records.dat"


class AdHocPagedDB(KVStore):
    """Custom record layout, in-place updates, no commit protocol."""

    technique = "adhoc"

    def __init__(self, fs: FileSystem) -> None:
        self.fs = fs
        self.pages = PagedFile(fs, _FILE)

    @property
    def corrupt_records_detected(self) -> int:
        """Spans found unreadable or undecodable at the last open."""
        return self.pages.corrupt_spans

    def get(self, key: str) -> str:
        check_key(key)
        span = self.pages.index.get(key)
        if span is None:
            raise KeyNotFound(key)
        _key, value = self.pages.read_record(span)
        return value

    def keys(self) -> list[str]:
        return sorted(self.pages.index)

    def set(self, key: str, value: str) -> None:
        check_key(key)
        check_value(value)
        record = encode_record(key, value)
        npages = pages_needed(len(record), self.pages.page_size)
        existing = self.pages.index.get(key)
        if existing is not None and existing.npages == npages:
            # The dangerous fast path: overwrite in place.
            self.pages.write_span(existing, record)
            self.pages.sync()
            return
        span = self.pages.allocate_span(npages)
        self.pages.write_span(span, record)
        if existing is not None:
            self.pages.free_span(existing)
        self.pages.sync()  # new record and old-span free in one flush
        self.pages.index[key] = span

    def delete(self, key: str) -> None:
        check_key(key)
        span = self.pages.index.get(key)
        if span is None:
            raise KeyNotFound(key)
        self.pages.free_span(span)
        self.pages.sync()
        del self.pages.index[key]
