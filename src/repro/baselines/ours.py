"""The paper's technique behind the same KV interface, for comparison.

Experiment E7 runs the identical update stream through all four engines;
this adapter puts the checkpoint+log database behind the baseline
interface so the comparison is engine-for-engine.
"""

from __future__ import annotations

from repro.baselines.interface import KVStore, KeyNotFound, check_key, check_value
from repro.core.database import Database
from repro.core.errors import PreconditionFailed
from repro.core.policy import CheckpointPolicy
from repro.core.transactions import OperationRegistry
from repro.storage.interface import FileSystem

_KV_OPS = OperationRegistry()


@_KV_OPS.operation("set")
def _op_set(root: dict, key: str, value: str) -> None:
    root[key] = value


@_KV_OPS.operation("delete")
def _op_delete(root: dict, key: str) -> None:
    del root[key]


@_op_delete.precondition
def _delete_pre(root: dict, key: str) -> None:
    if key not in root:
        raise PreconditionFailed(f"no such key: {key!r}")


class CheckpointLogDB(KVStore):
    """Main-memory structure + redo log + checkpoints (this paper)."""

    technique = "checkpoint+log"

    def __init__(
        self,
        fs: FileSystem,
        policy: CheckpointPolicy | None = None,
        **db_options: object,
    ) -> None:
        if policy is not None:
            db_options["policy"] = policy
        self.db = Database(fs, initial=dict, operations=_KV_OPS, **db_options)

    def get(self, key: str) -> str:
        check_key(key)

        def read(root: dict) -> str:
            if key not in root:
                raise KeyNotFound(key)
            return root[key]

        return self.db.enquire(read)

    def keys(self) -> list[str]:
        return self.db.enquire(lambda root: sorted(root))

    def set(self, key: str, value: str) -> None:
        check_key(key)
        check_value(value)
        self.db.update("set", key, value)

    def delete(self, key: str) -> None:
        check_key(key)
        try:
            self.db.update("delete", key)
        except PreconditionFailed:
            raise KeyNotFound(key) from None

    def checkpoint(self) -> int:
        return self.db.checkpoint()

    def close(self) -> None:
        self.db.close()
