"""Shared paged-record layout for the ad hoc and atomic-commit baselines.

A record occupies a contiguous *span* of pages in a single data file::

    status   1 byte   0x00 free / 0x01 used
    keylen   varint
    key      utf-8 bytes
    vallen   varint
    value    utf-8 bytes

The remainder of the span's final page is padding.  There are no
checksums — the historical schemes had none, which is exactly why a crash
mid-update leaves silent inconsistency (experiment E11 demonstrates it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.interface import CorruptStore
from repro.pickles.wire import WireReader, encode_varint
from repro.storage.errors import HardError
from repro.storage.interface import FileSystem

STATUS_FREE = 0x00
STATUS_USED = 0x01


def encode_record(key: str, value: str) -> bytes:
    out = bytearray([STATUS_USED])
    raw_key = key.encode("utf-8")
    encode_varint(len(raw_key), out)
    out.extend(raw_key)
    raw_value = value.encode("utf-8")
    encode_varint(len(raw_value), out)
    out.extend(raw_value)
    return bytes(out)


def decode_record(data: bytes) -> tuple[str, str, int]:
    """Returns (key, value, encoded length); raises CorruptStore."""
    reader = WireReader(data)
    try:
        status = reader.read_byte()
        if status != STATUS_USED:
            raise CorruptStore(f"record status {status:#x} is not 'used'")
        key_len = reader.read_varint()
        key = reader.read_bytes(key_len).decode("utf-8")
        value_len = reader.read_varint()
        value = reader.read_bytes(value_len).decode("utf-8")
    except CorruptStore:
        raise
    except Exception as exc:
        raise CorruptStore(f"record does not decode: {exc!r}") from exc
    return key, value, reader.offset


@dataclass
class Span:
    """A record's location: first page index and page count."""

    first_page: int
    npages: int


def pages_needed(record_len: int, page_size: int) -> int:
    return max(1, (record_len + page_size - 1) // page_size)


def pad_to_span(record: bytes, npages: int, page_size: int) -> bytes:
    return record + bytes(npages * page_size - len(record))


class PagedFile:
    """A data file of record spans with a volatile index.

    Scanning at open rebuilds the index from the file alone — the only
    "recovery" the ad hoc technique has.  Unreadable (torn) or
    undecodable spans are counted and treated as free; their records are
    simply gone, which is the data-loss the paper criticises.
    """

    def __init__(self, fs: FileSystem, name: str) -> None:
        self.fs = fs
        self.name = name
        self.page_size: int = getattr(fs, "page_size", 512)
        if not fs.exists(name):
            fs.write(name, b"")
            fs.fsync(name)
        self.index: dict[str, Span] = {}
        self.free: set[int] = set()
        self.total_pages = 0
        self.corrupt_spans = 0
        self._scan()

    def _scan(self) -> None:
        size = self.fs.size(self.name)
        self.total_pages = (size + self.page_size - 1) // self.page_size
        page = 0
        while page < self.total_pages:
            try:
                head = self.fs.read_range(
                    self.name, page * self.page_size, self.page_size
                )
            except HardError:
                self.corrupt_spans += 1
                self.free.add(page)
                page += 1
                continue
            if not head or head[0] == STATUS_FREE:
                self.free.add(page)
                page += 1
                continue
            try:
                key, value, length = self._decode_span(page, head)
            except (CorruptStore, HardError):
                self.corrupt_spans += 1
                self.free.add(page)
                page += 1
                continue
            npages = pages_needed(length, self.page_size)
            if key in self.index:
                # Duplicate key after a crash between "write new" and
                # "free old": keep the later span (higher page number).
                old = self.index[key]
                self.free.update(range(old.first_page, old.first_page + old.npages))
            self.index[key] = Span(page, npages)
            page += npages

    def _decode_span(self, page: int, head: bytes) -> tuple[str, str, int]:
        # Fast path: record fits the first page.
        try:
            return decode_record(head)
        except CorruptStore:
            pass
        # The record may span pages; read a generous window.
        window = self.fs.read_range(
            self.name, page * self.page_size, 64 * self.page_size
        )
        return decode_record(window)

    # -- operations used by the engines --------------------------------------------

    def read_record(self, span: Span) -> tuple[str, str]:
        data = self.fs.read_range(
            self.name,
            span.first_page * self.page_size,
            span.npages * self.page_size,
        )
        key, value, _length = decode_record(data)
        return key, value

    def allocate_span(self, npages: int) -> Span:
        """A contiguous free run, extending the file when necessary."""
        run: list[int] = []
        for page in sorted(self.free):
            if run and page != run[-1] + 1:
                run = []
            run.append(page)
            if len(run) == npages:
                for used in run:
                    self.free.discard(used)
                return Span(run[0], npages)
        first = self.total_pages
        self.total_pages += npages
        return Span(first, npages)

    def write_span(self, span: Span, record: bytes) -> None:
        """Overwrite the span in place (volatile until fsync)."""
        payload = pad_to_span(record, span.npages, self.page_size)
        self.fs.write_at(self.name, span.first_page * self.page_size, payload)

    def free_span(self, span: Span) -> None:
        """Mark every page of a span free by zero-filling it in place.

        Whole-page writes (rather than just the status byte) keep freeing
        well-defined even when a page of the span was torn by a crash.
        """
        zero_page = bytes(self.page_size)
        for page in range(span.first_page, span.first_page + span.npages):
            self.fs.write_at(self.name, page * self.page_size, zero_page)
        self.free.update(range(span.first_page, span.first_page + span.npages))

    def sync(self) -> None:
        self.fs.fsync(self.name)
